"""Tests for the simulated MLLM, sampler, inference model, tokenizers, memory, mobile."""

import numpy as np
import pytest

from repro.mllm import (
    DEFAULT_MAX_PIXELS,
    InferenceConfig,
    LatencyBudget,
    LongTermMemory,
    MOBILE_MLLM,
    ModelCollaboration,
    QWEN2_5_OMNI,
    ReceiverSampler,
    SamplerConfig,
    SimulatedMLLM,
    TokenizerConfig,
    ContinuousTokenizer,
    DiscreteTokenizer,
    compare_token_stream_bitrates,
    default_inference_config,
    drop_and_recover_tokens,
    transmission_budget_ms,
)
from repro.mllm.model import MODE_FREE_RESPONSE, MllmProfile
from repro.video import BlockCodec, VideoFrame, make_sports_scene


@pytest.fixture(scope="module")
def scene():
    return make_sports_scene(1, height=160, width=288)


@pytest.fixture(scope="module")
def codec():
    return BlockCodec()


def _frames(scene, qp, codec, count=2):
    originals, decoded = [], []
    source = scene.to_source()
    for index in range(count):
        frame = source.frame_at(index * 15)
        _, recon = codec.roundtrip(frame.pixels, qp)
        originals.append(frame)
        decoded.append(VideoFrame(frame.frame_id, frame.timestamp, recon))
    return decoded, originals


class TestSimulatedMLLM:
    def test_detail_question_needs_high_quality(self, scene, codec):
        mllm = SimulatedMLLM(seed=0)
        fact = next(f for f in scene.facts if f.key == "score")
        good_decoded, good_orig = _frames(scene, qp=10, codec=codec)
        bad_decoded, bad_orig = _frames(scene, qp=50, codec=codec)
        good = mllm.answer_question(fact, scene, good_decoded, good_orig, apply_frame_sampling=False)
        bad = mllm.answer_question(fact, scene, bad_decoded, bad_orig, apply_frame_sampling=False)
        assert good.knows and good.correct
        assert not bad.knows

    def test_coarse_question_survives_low_quality(self, scene, codec):
        mllm = SimulatedMLLM(seed=0)
        fact = next(f for f in scene.facts if f.key == "present")
        decoded, originals = _frames(scene, qp=48, codec=codec)
        answer = mllm.answer_question(fact, scene, decoded, originals, apply_frame_sampling=False)
        assert answer.knows

    def test_multi_frame_fact_requires_two_frames(self, scene, codec):
        mllm = SimulatedMLLM(seed=0)
        fact = next(f for f in scene.facts if f.multi_frame)
        decoded, originals = _frames(scene, qp=10, codec=codec, count=1)
        single = mllm.answer_question(fact, scene, decoded, originals, apply_frame_sampling=False)
        decoded2, originals2 = _frames(scene, qp=10, codec=codec, count=2)
        double = mllm.answer_question(fact, scene, decoded2, originals2, apply_frame_sampling=False)
        assert not single.knows
        assert double.knows

    def test_guessing_respects_choices(self, scene, codec):
        mllm = SimulatedMLLM(seed=0)
        fact = next(f for f in scene.facts if f.key == "score")
        decoded, originals = _frames(scene, qp=51, codec=codec)
        answer = mllm.answer_question(
            fact, scene, decoded, originals, choices=list(fact.domain), apply_frame_sampling=False
        )
        assert answer.guessed
        assert answer.answer in fact.domain

    def test_free_response_can_say_unclear(self, scene, codec):
        profile = MllmProfile("strict", free_response_guess_rate=0.0)
        mllm = SimulatedMLLM(profile=profile, seed=0)
        fact = next(f for f in scene.facts if f.key == "score")
        decoded, originals = _frames(scene, qp=51, codec=codec)
        answer = mllm.answer_question(
            fact, scene, decoded, originals, mode=MODE_FREE_RESPONSE, apply_frame_sampling=False
        )
        assert answer.answer == "unclear"
        assert not answer.correct

    def test_answers_are_deterministic(self, scene, codec):
        decoded, originals = _frames(scene, qp=40, codec=codec)
        fact = scene.facts[0]
        first = SimulatedMLLM(seed=5).answer_question(fact, scene, decoded, originals)
        second = SimulatedMLLM(seed=5).answer_question(fact, scene, decoded, originals)
        assert first.answer == second.answer

    def test_stronger_profile_reads_more(self, scene, codec):
        fact = next(f for f in scene.facts if f.key == "logo")
        decoded, originals = _frames(scene, qp=38, codec=codec)
        weak = SimulatedMLLM(profile=MOBILE_MLLM, seed=0).evidence_quality(fact, scene, decoded, originals)
        strong = SimulatedMLLM(profile=QWEN2_5_OMNI, seed=0).evidence_quality(fact, scene, decoded, originals)
        assert strong > weak

    def test_empty_frames_mean_no_evidence(self, scene):
        mllm = SimulatedMLLM(seed=0)
        fact = scene.facts[0]
        assert mllm.evidence_quality(fact, scene, [], []) == 0.0

    def test_mismatched_frame_lists_rejected(self, scene, codec):
        mllm = SimulatedMLLM(seed=0)
        decoded, originals = _frames(scene, qp=20, codec=codec)
        with pytest.raises(ValueError):
            mllm.evidence_quality(scene.facts[0], scene, decoded, originals[:1])

    def test_accuracy_over_requires_facts(self, scene, codec):
        mllm = SimulatedMLLM(seed=0)
        decoded, originals = _frames(scene, qp=20, codec=codec)
        with pytest.raises(ValueError):
            mllm.accuracy_over([], scene, decoded, originals)
        accuracy = mllm.accuracy_over(scene.facts, scene, decoded, originals)
        assert 0.0 <= accuracy <= 1.0

    def test_invalid_mode_rejected(self, scene, codec):
        mllm = SimulatedMLLM(seed=0)
        decoded, originals = _frames(scene, qp=20, codec=codec)
        with pytest.raises(ValueError):
            mllm.answer_question(scene.facts[0], scene, decoded, originals, mode="essay")

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            MllmProfile("bad", base_error_rate=1.5)
        with pytest.raises(ValueError):
            MllmProfile("bad", detail_competence=0.0)


class TestReceiverSampler:
    def test_frame_rate_capped_at_two_fps(self):
        sampler = ReceiverSampler()
        frames = [VideoFrame(i, i / 30.0, np.zeros((8, 8))) for i in range(60)]
        selected = sampler.select_frames(frames)
        assert len(selected) <= 5  # 2 seconds of video at <=2 FPS (+ boundary)
        assert len(selected) >= 4

    def test_pixel_cap_enforced(self):
        sampler = ReceiverSampler(SamplerConfig(max_pixels_per_frame=10_000))
        frame = VideoFrame(0, 0.0, np.zeros((300, 300)))
        prepared = sampler.prepare_frame(frame)
        assert prepared.pixel_count <= 10_000

    def test_default_pixel_cap_matches_paper(self):
        assert DEFAULT_MAX_PIXELS == 602_112

    def test_redundancy_report(self):
        sampler = ReceiverSampler()
        frames = [VideoFrame(i, i / 30.0, np.zeros((64, 64))) for i in range(30)]
        _, report = sampler.prepare(frames)
        assert report.frame_redundancy > 0.9
        assert 0.0 <= report.pixel_redundancy <= 1.0

    def test_selection_uses_capture_time_not_arrival_order(self):
        sampler = ReceiverSampler()
        frames = [VideoFrame(i, i / 30.0, np.zeros((8, 8))) for i in range(30)]
        shuffled = list(reversed(frames))
        assert [f.frame_id for f in sampler.select_frames(frames)] == [
            f.frame_id for f in sampler.select_frames(shuffled)
        ]

    def test_token_counts_positive(self):
        sampler = ReceiverSampler()
        frame = VideoFrame(0, 0.0, np.zeros((112, 112)))
        assert sampler.visual_token_count(frame) >= 16

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SamplerConfig(max_fps=0)
        with pytest.raises(ValueError):
            SamplerConfig(max_pixels_per_frame=0)


class TestInferenceModel:
    def test_audio_only_floor_near_232ms(self):
        config = default_inference_config()
        assert config.first_response_latency_ms(visual_tokens=0) == pytest.approx(232, abs=5)

    def test_latency_grows_with_tokens(self):
        config = default_inference_config()
        assert config.first_response_latency_ms(1000) > config.first_response_latency_ms(100)
        assert config.full_response_latency_ms(100, output_tokens=50) > config.full_response_latency_ms(
            100, output_tokens=10
        )

    def test_budget_subtraction(self):
        assert transmission_budget_ms() == pytest.approx(68.0)

    def test_latency_budget_accounting(self):
        budget = LatencyBudget(transmission_ms=40.0, inference_ms=240.0, encode_ms=10.0)
        assert budget.total_ms == pytest.approx(290.0)
        assert budget.meets_target
        assert budget.transmission_budget_ms == pytest.approx(50.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            InferenceConfig(base_latency_ms=-1)
        with pytest.raises(ValueError):
            InferenceConfig(first_chunk_output_tokens=0)


class TestTokenizers:
    def test_continuous_tokens_are_heavy(self, scene):
        frame = scene.render(0)
        comparison = compare_token_stream_bitrates(frame, fps=2.0)
        assert comparison["continuous_bps"] > 10 * comparison["discrete_bps"]

    def test_discrete_tokens_round_trip_keeps_coarse_content(self, scene):
        frame = scene.render(0)
        tokenizer = DiscreteTokenizer(TokenizerConfig())
        tokenized = tokenizer.tokenize(frame)
        reconstructed = tokenizer.reconstruct(tokenized)
        trimmed = frame[: reconstructed.shape[0], : reconstructed.shape[1]]
        assert abs(trimmed.mean() - reconstructed.mean()) < 40

    def test_continuous_reconstruction_better_than_discrete(self, scene):
        frame = scene.render(0)
        config = TokenizerConfig()
        continuous = ContinuousTokenizer(config)
        discrete = DiscreteTokenizer(config)
        cont_recon = continuous.reconstruct(continuous.tokenize(frame))
        disc_recon = discrete.reconstruct(discrete.tokenize(frame))
        trimmed = frame[: cont_recon.shape[0], : cont_recon.shape[1]]
        cont_err = np.mean((trimmed - cont_recon) ** 2)
        disc_err = np.mean((trimmed - disc_recon) ** 2)
        assert cont_err < disc_err

    def test_token_loss_recovery(self, scene):
        frame = scene.render(0)
        tokenizer = DiscreteTokenizer(TokenizerConfig())
        tokenized = tokenizer.tokenize(frame)
        result = drop_and_recover_tokens(tokenized, loss_fraction=0.5, seed=1)
        assert result.dropped_indices.size > 0
        assert result.recovered_tokens.shape == np.asarray(tokenized.tokens).shape

    def test_loss_fraction_validation(self, scene):
        tokenized = DiscreteTokenizer().tokenize(scene.render(0))
        with pytest.raises(ValueError):
            drop_and_recover_tokens(tokenized, 1.0)

    def test_tokenizer_config_validation(self):
        with pytest.raises(ValueError):
            TokenizerConfig(patch_size=0)
        with pytest.raises(ValueError):
            TokenizerConfig(codebook_size=1)


class TestMemoryAndCollaboration:
    def test_memory_recalls_relevant_fact(self, scene):
        memory = LongTermMemory()
        fact = next(f for f in scene.facts if f.key == "score")
        memory.ingest(fact, observed_quality=0.95, observed_at=0.0, scene=scene)
        recalled = memory.recall("what was the score of the game?")
        assert recalled and recalled[0].fact.key == "score"
        assert memory.answer_from_memory(fact, scene.name) == fact.value

    def test_low_quality_memory_is_not_recallable(self, scene):
        memory = LongTermMemory()
        fact = next(f for f in scene.facts if f.key == "score")
        memory.ingest(fact, observed_quality=0.3, observed_at=0.0, scene=scene)
        assert memory.answer_from_memory(fact, scene.name) is None

    def test_memory_keeps_best_observation(self, scene):
        memory = LongTermMemory()
        fact = scene.facts[0]
        memory.ingest(fact, observed_quality=0.4, observed_at=0.0, scene=scene)
        memory.ingest(fact, observed_quality=0.9, observed_at=1.0, scene=scene)
        assert len(memory) == 1
        assert memory.entries[0].observed_quality == pytest.approx(0.9)

    def test_memory_coverage(self, scene):
        memory = LongTermMemory()
        for fact in scene.facts:
            memory.ingest(fact, observed_quality=1.0, observed_at=0.0, scene=scene)
        assert memory.coverage(scene.facts, scene.name) == pytest.approx(1.0)

    def test_collaboration_routes_easy_questions_locally(self, scene, codec):
        collaboration = ModelCollaboration()
        decoded, originals = _frames(scene, qp=5, codec=codec)
        easy = next(f for f in scene.facts if f.detail_scale <= 0.1)
        hard = next(f for f in scene.facts if f.detail_scale >= 0.85)
        easy_routed = collaboration.answer(easy, scene, originals, originals, uplink_frame_bytes=50_000)
        hard_routed = collaboration.answer(hard, scene, originals, originals, uplink_frame_bytes=50_000)
        assert easy_routed.served_by == "local"
        assert easy_routed.uplink_bytes == 0
        assert hard_routed.served_by == "cloud"
        assert hard_routed.uplink_bytes == 50_000

    def test_collaboration_evaluate(self, scene, codec):
        collaboration = ModelCollaboration()
        decoded, originals = _frames(scene, qp=5, codec=codec)
        report = collaboration.evaluate(scene.facts, scene, originals, originals, uplink_frame_bytes=10_000)
        assert 0.0 <= report["accuracy"] <= 1.0
        assert 0.0 <= report["local_fraction"] <= 1.0
