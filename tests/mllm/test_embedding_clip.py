"""Tests for the concept embedding space and the CLIP substitute (Equation 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mllm import ConceptSpace, MobileClip, cosine_similarity
from repro.mllm.clip import ClipConfig
from repro.video import make_park_scene, make_sports_scene


@pytest.fixture(scope="module")
def space():
    return ConceptSpace()


@pytest.fixture(scope="module")
def park():
    return make_park_scene(0, height=160, width=288)


@pytest.fixture(scope="module")
def sports():
    return make_sports_scene(0, height=160, width=288)


class TestConceptSpace:
    def test_vectors_are_unit_norm(self, space):
        for concept in ["dog", "grass", "scoreboard", "unknown-word"]:
            assert np.linalg.norm(space.vector(concept)) == pytest.approx(1.0)

    def test_vectors_are_deterministic(self):
        a = ConceptSpace(seed=3).vector("dog")
        b = ConceptSpace(seed=3).vector("dog")
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_give_different_vectors(self):
        a = ConceptSpace(seed=1).vector("dog")
        b = ConceptSpace(seed=2).vector("dog")
        assert not np.allclose(a, b)

    def test_related_concepts_are_more_similar_than_unrelated(self, space):
        assert space.similarity("season", "grass") > space.similarity("season", "scoreboard")
        assert space.similarity("ears", "dog") > space.similarity("ears", "car")
        assert space.similarity("score", "scoreboard") > space.similarity("score", "grass")

    def test_unrelated_concepts_nearly_orthogonal(self, space):
        assert abs(space.similarity("dog", "equation")) < 0.45

    def test_encode_concepts_empty_is_zero(self, space):
        assert np.allclose(space.encode_concepts([]), 0.0)

    def test_encode_concepts_weighting(self, space):
        heavy_dog = space.encode_concepts(["dog", "car"], weights=[10.0, 0.1])
        assert cosine_similarity(heavy_dog, space.vector("dog")) > cosine_similarity(
            heavy_dog, space.vector("car")
        )

    def test_encode_concepts_invalid_weights(self, space):
        with pytest.raises(ValueError):
            space.encode_concepts(["dog"], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            space.encode_concepts(["dog"], weights=[-1.0])

    def test_extract_concepts_finds_vocabulary_words(self, space):
        concepts = space.extract_concepts("Is the dog in the video erect-eared or floppy-eared?")
        assert "dog" in concepts
        assert "ears" in concepts

    def test_extract_concepts_handles_plurals_and_synonyms(self, space):
        assert "spectators" in space.extract_concepts("How many spectators can be seen?")
        assert "car" in space.extract_concepts("How many cars are visible?")
        assert "action" in space.extract_concepts("What is the player doing?")

    def test_extract_concepts_ignores_unknown_words(self, space):
        assert space.extract_concepts("zzz qqq xyzzy") == []

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            ConceptSpace(dim=4)

    def test_cosine_similarity_zero_vector(self):
        assert cosine_similarity(np.zeros(8), np.ones(8)) == 0.0

    @settings(max_examples=20, deadline=None)
    @given(st.text(alphabet=st.characters(whitelist_categories=("Ll",)), min_size=1, max_size=12))
    def test_property_any_word_gets_unit_vector(self, word):
        space = ConceptSpace()
        assert np.linalg.norm(space.vector(word)) == pytest.approx(1.0)


class TestMobileClip:
    def test_dog_question_highlights_dog_head(self, park):
        clip = MobileClip()
        frame = park.render(0)
        correlation = clip.correlation_map(park, "Is the dog erect-eared or floppy-eared?", frame, frame)
        dog_region = park.object_by_name("dog_head").pixel_region(park.height, park.width)
        sky_region = park.object_by_name("sky").pixel_region(park.height, park.width)
        assert correlation.region_mean(dog_region) > correlation.region_mean(sky_region) + 0.2

    def test_indirect_season_question_highlights_grass(self, park):
        clip = MobileClip()
        frame = park.render(0)
        correlation = clip.correlation_map(park, "Infer what season it might be in the video", frame, frame)
        grass = park.object_by_name("grass").pixel_region(park.height, park.width)
        dog = park.object_by_name("dog_head").pixel_region(park.height, park.width)
        assert correlation.region_mean(grass) > correlation.region_mean(dog)

    def test_score_question_highlights_scoreboard(self, sports):
        clip = MobileClip()
        frame = sports.render(0)
        correlation = clip.correlation_map(
            sports, "Could you tell me the present score of the game?", frame, frame
        )
        scoreboard = sports.object_by_name("scoreboard").pixel_region(sports.height, sports.width)
        court = sports.object_by_name("court").pixel_region(sports.height, sports.width)
        assert correlation.region_mean(scoreboard) > correlation.region_mean(court)

    def test_values_within_cosine_range(self, park):
        clip = MobileClip()
        correlation = clip.correlation_map(park, "Is there a dog?", park.render(0))
        assert (correlation.values >= -1.0).all() and (correlation.values <= 1.0).all()

    def test_empty_query_gives_zero_map(self, park):
        clip = MobileClip()
        correlation = clip.correlation_map(park, "zzz qqq", park.render(0))
        assert np.allclose(correlation.values, 0.0)

    def test_blur_attenuates_fine_regions(self, sports):
        from repro.video import BlockCodec

        clip = MobileClip()
        frame = sports.render(0)
        _, blurred = BlockCodec().roundtrip(frame, qp=50)
        sharp_map = clip.correlation_map(
            sports, "Could you tell me the present score of the game?", frame, frame
        )
        blurred_map = clip.correlation_map(
            sports, "Could you tell me the present score of the game?", blurred, frame
        )
        scoreboard = sports.object_by_name("scoreboard").pixel_region(sports.height, sports.width)
        assert blurred_map.region_mean(scoreboard) < sharp_map.region_mean(scoreboard)

    def test_top_patches_and_block_grid(self, park):
        clip = MobileClip()
        correlation = clip.correlation_map(park, "Is there a dog?", park.render(0))
        top = correlation.top_patches(3)
        assert len(top) == 3
        assert top[0][2] >= top[1][2] >= top[2][2]
        block_grid = correlation.to_block_grid(16)
        assert block_grid.shape == (int(np.ceil(park.height / 16)), int(np.ceil(park.width / 16)))

    def test_compute_latency_scales_with_patch_count(self, park):
        fine = MobileClip(config=ClipConfig(patch_size=16))
        coarse = MobileClip(config=ClipConfig(patch_size=64))
        frame = park.render(0)
        assert (
            fine.correlation_map(park, "dog", frame).compute_latency_ms
            > coarse.correlation_map(park, "dog", frame).compute_latency_ms
        )

    def test_patch_size_validation(self):
        with pytest.raises(ValueError):
            ClipConfig(patch_size=0)
