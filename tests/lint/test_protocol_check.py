"""Tests for the cross-file protocol-exhaustiveness checker."""

from __future__ import annotations

import ast
from pathlib import Path

from conftest import FIXTURES, rules_of

from repro.distrib.protocol import MESSAGE_TYPES
from repro.lint.checkers import FileContext
from repro.lint.engine import lint_root, parse_tree
from repro.lint.protocol_check import (
    collect_handled,
    collect_sent,
    extract_vocabulary,
)

DISTRIB_SRC = Path(__file__).resolve().parents[2] / "src" / "repro" / "distrib"


def ctx_for(relpath: str, source: str) -> FileContext:
    return FileContext(relpath, source, ast.parse(source))


class TestBrokenFixture:
    def test_exactly_six_findings(self):
        result = lint_root(FIXTURES / "broken_protocol")
        assert rules_of(result) == ["protocol-exhaustive"] * 6

    def test_each_failure_leg_is_reported(self):
        result = lint_root(FIXTURES / "broken_protocol")
        messages = [finding.message for finding in result.findings]

        def one(fragment: str) -> None:
            matching = [m for m in messages if fragment in m]
            assert len(matching) == 1, (fragment, messages)

        one("'status' is sent but not declared")
        one("'status' is sent but no dispatch branch")
        one("'ack' has a dispatch branch but nothing")
        one("'ack' is dispatched on but not declared")
        one("'shutdown' is declared in MESSAGE_TYPES but never sent")
        one("'shutdown' is declared in MESSAGE_TYPES but never handled")

    def test_findings_anchor_to_the_offending_files(self):
        result = lint_root(FIXTURES / "broken_protocol")
        by_path = {finding.path for finding in result.findings}
        assert by_path == {
            "distrib/protocol.py",
            "distrib/coordinator.py",
            "distrib/worker.py",
        }


class TestMissingVocabulary:
    def test_protocol_without_message_types_is_one_finding(self, lint_tree):
        result = lint_tree(
            {
                "distrib/protocol.py": "PROTOCOL_VERSION = 1\n",
                "distrib/worker.py": "def pull(channel):\n    channel.send('hello')\n",
            }
        )
        assert rules_of(result) == ["protocol-exhaustive"]
        assert "declares no MESSAGE_TYPES" in result.findings[0].message

    def test_protocol_outside_distrib_is_ignored(self, lint_tree):
        result = lint_tree({"net/protocol.py": "PROTOCOL_VERSION = 1\n"})
        assert rules_of(result) == []


class TestExtraction:
    def test_vocabulary_from_frozenset_literal(self):
        ctx = ctx_for(
            "distrib/protocol.py",
            'MESSAGE_TYPES = frozenset({"a", "b"})\n',
        )
        vocabulary = extract_vocabulary(ctx)
        assert vocabulary is not None
        assert vocabulary[0] == {"a", "b"}

    def test_non_literal_vocabulary_is_rejected(self):
        ctx = ctx_for(
            "distrib/protocol.py",
            'MESSAGE_TYPES = frozenset(x for x in names)\n',
        )
        assert extract_vocabulary(ctx) is None

    def test_collect_sent_sees_send_calls_and_send_message_dicts(self):
        ctx = ctx_for(
            "distrib/worker.py",
            "def go(channel, sock):\n"
            '    channel.send("hello", seed=1)\n'
            '    send_message(sock, {"type": "result", "ok": True})\n',
        )
        assert set(collect_sent(ctx)) == {"hello", "result"}

    def test_collect_handled_sees_direct_var_and_membership_dispatch(self):
        ctx = ctx_for(
            "distrib/coordinator.py",
            "def dispatch(message):\n"
            '    if message.get("type") == "hello":\n'
            "        return 1\n"
            '    kind = message.get("type")\n'
            '    if kind == "result":\n'
            "        return 2\n"
            '    if kind in ("heartbeat", "bye"):\n'
            "        return 3\n"
            '    if message["type"] != "task":\n'
            "        return 4\n",
        )
        assert set(collect_handled(ctx)) == {
            "hello",
            "result",
            "heartbeat",
            "bye",
            "task",
        }


class TestRealDispatcherCoverage:
    """Prove the checker sees every real message type — the acceptance
    criterion that protocol exhaustiveness covers all of distrib/protocol.py."""

    def _contexts(self) -> dict[str, FileContext]:
        contexts, errors = parse_tree(DISTRIB_SRC.parent)
        assert not errors
        return contexts

    def test_static_vocabulary_equals_runtime_vocabulary(self):
        contexts = self._contexts()
        vocabulary = extract_vocabulary(contexts["distrib/protocol.py"])
        assert vocabulary is not None
        assert vocabulary[0] == set(MESSAGE_TYPES)

    def test_every_runtime_type_is_seen_sent_and_handled(self):
        contexts = self._contexts()
        sent: set[str] = set()
        handled: set[str] = set()
        for relpath in ("distrib/coordinator.py", "distrib/worker.py", "distrib/monitor.py"):
            sent |= set(collect_sent(contexts[relpath]))
            handled |= set(collect_handled(contexts[relpath]))
        assert sent == set(MESSAGE_TYPES)
        assert handled == set(MESSAGE_TYPES)

    def test_shipped_distrib_tree_has_no_protocol_findings(self):
        result = lint_root(DISTRIB_SRC.parent)
        assert "protocol-exhaustive" not in rules_of(result)
