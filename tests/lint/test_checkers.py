"""Positive and negative fixture-snippet tests for every reprolint rule."""

from __future__ import annotations

import textwrap

from conftest import rules_of


def snippet(source: str) -> str:
    return textwrap.dedent(source).lstrip()


class TestRngDiscipline:
    def test_stdlib_random_import_flagged(self, lint_tree):
        result = lint_tree({"video/sim.py": "import random\n"})
        assert rules_of(result) == ["rng-discipline"]

    def test_stdlib_random_from_import_flagged(self, lint_tree):
        result = lint_tree({"video/sim.py": "from random import choice\n"})
        assert rules_of(result) == ["rng-discipline"]

    def test_np_random_seed_flagged(self, lint_tree):
        source = snippet(
            """
            import numpy as np
            np.random.seed(3)
            """
        )
        assert rules_of(lint_tree({"mllm/sim.py": source})) == ["rng-discipline"]

    def test_legacy_module_level_draw_flagged(self, lint_tree):
        source = snippet(
            """
            import numpy
            x = numpy.random.normal(0.0, 1.0, size=8)
            """
        )
        assert rules_of(lint_tree({"mllm/sim.py": source})) == ["rng-discipline"]

    def test_argless_default_rng_flagged(self, lint_tree):
        source = snippet(
            """
            import numpy as np
            rng = np.random.default_rng()
            """
        )
        assert rules_of(lint_tree({"devibench/sim.py": source})) == ["rng-discipline"]

    def test_none_seeded_default_rng_flagged_even_via_from_import(self, lint_tree):
        source = snippet(
            """
            from numpy.random import default_rng
            rng = default_rng(None)
            """
        )
        assert rules_of(lint_tree({"devibench/sim.py": source})) == ["rng-discipline"]

    def test_seeded_generator_api_is_clean(self, lint_tree):
        source = snippet(
            """
            import numpy as np

            def draw(rng: np.random.Generator, seed: int):
                local = np.random.default_rng(seed)
                alt = np.random.Generator(np.random.PCG64(seed))
                return rng.random(), local.random(), alt.random()
            """
        )
        assert rules_of(lint_tree({"video/sim.py": source})) == []


class TestWallClock:
    def test_time_time_flagged(self, lint_tree):
        source = snippet(
            """
            import time
            stamp = time.time()
            """
        )
        assert rules_of(lint_tree({"core/sim.py": source})) == ["wall-clock"]

    def test_aliased_and_from_imports_cannot_dodge(self, lint_tree):
        source = snippet(
            """
            import time as t
            from time import monotonic

            def f():
                return t.perf_counter_ns() + monotonic()
            """
        )
        assert rules_of(lint_tree({"analysis/sim.py": source})) == ["wall-clock"] * 2

    def test_datetime_now_flagged(self, lint_tree):
        source = snippet(
            """
            from datetime import datetime
            stamp = datetime.now()
            """
        )
        assert rules_of(lint_tree({"analysis/sim.py": source})) == ["wall-clock"]

    def test_sleep_is_not_a_clock_read(self, lint_tree):
        source = snippet(
            """
            import time
            time.sleep(0.1)
            """
        )
        assert rules_of(lint_tree({"distrib/sim.py": source})) == []

    def test_wallclock_helpers_are_allowlisted(self, lint_tree):
        source = snippet(
            '''
            import time as _time

            def perf_counter() -> float:
                """Allowlisted helper."""
                return _time.perf_counter()

            def monotonic() -> float:
                return _time.monotonic()

            def unix_time() -> int:
                return int(_time.time())
            '''
        )
        assert rules_of(lint_tree({"core/wallclock.py": source})) == []

    def test_allowlist_is_function_granular_not_file_granular(self, lint_tree):
        source = snippet(
            """
            import time as _time

            def perf_counter() -> float:
                return _time.perf_counter()

            def rogue() -> float:
                return _time.time()
            """
        )
        result = lint_tree({"core/wallclock.py": source})
        assert rules_of(result) == ["wall-clock"]
        assert result.findings[0].line == 7


class TestFastpathFlag:
    def test_environ_get_flagged(self, lint_tree):
        source = snippet(
            """
            import os
            enabled = os.environ.get("REPRO_NET_FASTPATH", "1") != "0"
            """
        )
        assert rules_of(lint_tree({"video/sim.py": source})) == ["fastpath-flag"]

    def test_subscript_write_and_getenv_flagged(self, lint_tree):
        source = snippet(
            """
            import os
            FASTPATH_ENV = "REPRO_NET_FASTPATH"
            os.environ["REPRO_NET_FASTPATH"] = "0"
            value = os.getenv(FASTPATH_ENV)
            """
        )
        assert rules_of(lint_tree({"analysis/sim.py": source})) == ["fastpath-flag"] * 2

    def test_single_helper_in_emulator_is_allowlisted(self, lint_tree):
        source = snippet(
            """
            import os

            FASTPATH_ENV = "REPRO_NET_FASTPATH"

            def fastpath_enabled() -> bool:
                return os.environ.get(FASTPATH_ENV, "1") != "0"
            """
        )
        assert rules_of(lint_tree({"net/emulator.py": source})) == []

    def test_other_env_vars_are_fine(self, lint_tree):
        source = snippet(
            """
            import os
            memo = os.environ.get("REPRO_FINGERPRINT_CACHE")
            """
        )
        assert rules_of(lint_tree({"analysis/sim.py": source})) == []


class TestHotSlots:
    def test_dataclass_without_slots_in_hot_module_flagged(self, lint_tree):
        source = snippet(
            """
            from dataclasses import dataclass

            @dataclass
            class Packet:
                sequence: int

            @dataclass(frozen=True)
            class Other:
                x: int
            """
        )
        assert rules_of(lint_tree({"net/packet.py": source})) == ["hot-slots"] * 2

    def test_slotted_dataclass_is_clean(self, lint_tree):
        source = snippet(
            """
            from dataclasses import dataclass

            @dataclass(slots=True)
            class Packet:
                sequence: int
            """
        )
        assert rules_of(lint_tree({"net/transport.py": source})) == []

    def test_cold_modules_are_not_constrained(self, lint_tree):
        source = snippet(
            """
            from dataclasses import dataclass

            @dataclass
            class Report:
                cells: int
            """
        )
        assert rules_of(lint_tree({"analysis/report.py": source})) == []


class TestFloatTimeEq:
    def test_equality_between_time_expressions_flagged(self, lint_tree):
        source = snippet(
            """
            def check(a, b, deadline, t_s):
                if a.send_time == b.complete_time:
                    return True
                return deadline != t_s
            """
        )
        assert rules_of(lint_tree({"net/sim.py": source})) == ["float-time-eq"] * 2

    def test_time_vs_float_literal_flagged(self, lint_tree):
        source = snippet(
            """
            def check(now):
                return now == 1.5
            """
        )
        assert rules_of(lint_tree({"net/sim.py": source})) == ["float-time-eq"]

    def test_orderings_zero_sentinels_and_non_time_names_are_clean(self, lint_tree):
        source = snippet(
            """
            def check(elapsed_s, send_time, rate, other_rate, count):
                if elapsed_s <= 0.0 or send_time == 0.0:
                    return False
                return rate == other_rate and count == 3
            """
        )
        assert rules_of(lint_tree({"net/sim.py": source})) == []


class TestHygiene:
    def test_mutable_defaults_flagged(self, lint_tree):
        source = snippet(
            """
            def f(items=[], *, index={}):
                g = lambda seen=set(): seen
                return items, index, g
            """
        )
        assert rules_of(lint_tree({"core/sim.py": source})) == ["mutable-default"] * 3

    def test_none_and_tuple_defaults_are_clean(self, lint_tree):
        source = snippet(
            """
            def f(items=None, pair=(), name="x"):
                return items, pair, name
            """
        )
        assert rules_of(lint_tree({"core/sim.py": source})) == []

    def test_bare_except_flagged_everywhere(self, lint_tree):
        source = snippet(
            """
            def f():
                try:
                    return 1
                except:
                    return 0
            """
        )
        assert rules_of(lint_tree({"video/sim.py": source})) == ["broad-except"]

    BROAD_EXCEPT = snippet(
        """
        def f():
            try:
                return 1
            except Exception:
                return 0
        """
    )

    def test_broad_except_flagged_in_distrib(self, lint_tree):
        result = lint_tree({"distrib/sim.py": self.BROAD_EXCEPT})
        assert rules_of(result) == ["broad-except"]

    def test_broad_except_tolerated_outside_distrib(self, lint_tree):
        result = lint_tree({"analysis/sim.py": self.BROAD_EXCEPT})
        assert rules_of(result) == []

    def test_specific_exceptions_in_distrib_are_clean(self, lint_tree):
        source = snippet(
            """
            def f():
                try:
                    return 1
                except (OSError, ValueError):
                    return 0
            """
        )
        assert rules_of(lint_tree({"distrib/sim.py": source})) == []


class TestSuppressions:
    def test_inline_disable_suppresses_matching_rule(self, lint_tree):
        source = snippet(
            """
            import time
            stamp = time.time()  # reprolint: disable=wall-clock
            """
        )
        result = lint_tree({"analysis/sim.py": source})
        assert rules_of(result) == []
        assert result.suppressed == 1

    def test_disable_all_suppresses_any_rule(self, lint_tree):
        source = snippet(
            """
            import time
            stamp = time.time()  # reprolint: disable=all
            """
        )
        assert rules_of(lint_tree({"analysis/sim.py": source})) == []

    def test_wrong_rule_disable_does_not_suppress(self, lint_tree):
        source = snippet(
            """
            import time
            stamp = time.time()  # reprolint: disable=hot-slots
            """
        )
        assert rules_of(lint_tree({"analysis/sim.py": source})) == ["wall-clock"]


class TestParseErrors:
    def test_unparseable_file_is_a_finding_not_a_crash(self, lint_tree):
        result = lint_tree({"core/bad.py": "def broken(:\n"})
        assert rules_of(result) == ["parse-error"]


class TestSocketTimeout:
    """distrib/-scoped: no socket may block forever."""

    def test_create_connection_without_timeout_flagged(self, lint_tree):
        source = snippet(
            """
            import socket

            def dial(address):
                return socket.create_connection(address)
            """
        )
        assert rules_of(lint_tree({"distrib/worker.py": source})) == ["socket-timeout"]

    def test_create_connection_with_timeout_keyword_clean(self, lint_tree):
        source = snippet(
            """
            import socket

            def dial(address):
                return socket.create_connection(address, timeout=5.0)
            """
        )
        assert rules_of(lint_tree({"distrib/worker.py": source})) == []

    def test_create_connection_with_positional_timeout_clean(self, lint_tree):
        source = snippet(
            """
            import socket

            def dial(address):
                return socket.create_connection(address, 5.0)
            """
        )
        assert rules_of(lint_tree({"distrib/worker.py": source})) == []

    def test_settimeout_none_flagged(self, lint_tree):
        source = snippet(
            """
            def patient(sock):
                sock.settimeout(None)
            """
        )
        assert rules_of(lint_tree({"distrib/coordinator.py": source})) == ["socket-timeout"]

    def test_socket_without_later_settimeout_flagged(self, lint_tree):
        source = snippet(
            """
            import socket

            def serve():
                server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                server.bind(("127.0.0.1", 0))
                return server
            """
        )
        assert rules_of(lint_tree({"distrib/coordinator.py": source})) == ["socket-timeout"]

    def test_socket_with_later_settimeout_clean(self, lint_tree):
        source = snippet(
            """
            import socket

            def serve():
                server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                server.settimeout(1.0)
                return server
            """
        )
        assert rules_of(lint_tree({"distrib/coordinator.py": source})) == []

    def test_accept_without_settimeout_flagged(self, lint_tree):
        source = snippet(
            """
            def accept_loop(server):
                conn, peer = server.accept()
                return conn
            """
        )
        assert rules_of(lint_tree({"distrib/coordinator.py": source})) == ["socket-timeout"]

    def test_accepted_socket_given_timeout_clean(self, lint_tree):
        source = snippet(
            """
            def accept_loop(server):
                conn, peer = server.accept()
                conn.settimeout(2.0)
                return conn
            """
        )
        assert rules_of(lint_tree({"distrib/coordinator.py": source})) == []

    def test_rule_is_scoped_to_distrib(self, lint_tree):
        source = snippet(
            """
            import socket

            def dial(address):
                sock = socket.create_connection(address)
                sock.settimeout(None)
                return sock
            """
        )
        assert rules_of(lint_tree({"analysis/fetch.py": source})) == []


class TestPrintDiscipline:
    """Bare print() is banned outside CLI entry modules."""

    def test_bare_print_in_library_module_flagged(self, lint_tree):
        source = snippet(
            """
            def summarize(report):
                print(report)
            """
        )
        assert rules_of(lint_tree({"analysis/report.py": source})) == ["print-discipline"]

    def test_module_level_print_flagged_too(self, lint_tree):
        assert rules_of(lint_tree({"net/debug.py": 'print("loaded")\n'})) == [
            "print-discipline"
        ]

    def test_dunder_main_module_is_exempt(self, lint_tree):
        source = snippet(
            """
            def main():
                print("results written")
            """
        )
        assert rules_of(lint_tree({"analysis/__main__.py": source})) == []

    def test_module_with_main_guard_is_exempt(self, lint_tree):
        source = snippet(
            """
            import sys

            def main():
                print("worker done")
                return 0

            if __name__ == "__main__":
                sys.exit(main())
            """
        )
        assert rules_of(lint_tree({"distrib/worker.py": source})) == []

    def test_reversed_main_guard_is_exempt(self, lint_tree):
        source = snippet(
            """
            def main():
                print("ok")

            if "__main__" == __name__:
                main()
            """
        )
        assert rules_of(lint_tree({"distrib/tool.py": source})) == []

    def test_explicit_file_destination_is_clean(self, lint_tree):
        source = snippet(
            """
            import sys

            def warn(message):
                print(message, file=sys.stderr)

            def dump(profile, out):
                print(profile, file=out)
            """
        )
        assert rules_of(lint_tree({"analysis/perfbench.py": source})) == []

    def test_inline_disable_suppresses(self, lint_tree):
        source = snippet(
            """
            def trace(event):
                print(event)  # reprolint: disable=print-discipline
            """
        )
        result = lint_tree({"net/debug.py": source})
        assert rules_of(result) == []
        assert result.suppressed == 1
