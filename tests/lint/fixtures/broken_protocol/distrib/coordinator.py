"""Broken-fixture coordinator: sends an undeclared, unhandled ``status``."""


def serve(channel, message):
    channel.send("hello")
    if message.get("type") == "hello":
        channel.send("task", payload={})
    kind = message.get("type")
    if kind == "result":
        channel.send("status", detail="sent-but-undeclared-and-unhandled")
