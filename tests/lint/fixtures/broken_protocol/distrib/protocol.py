"""Deliberately broken protocol fixture: ``shutdown`` is declared but
never sent or handled anywhere."""

MESSAGE_TYPES = frozenset({"hello", "task", "result", "shutdown"})


class Channel:
    def send(self, type, **fields):
        return {"type": type, **fields}
