"""Broken-fixture worker: dispatches on ``ack``, which nothing sends."""


def pull(channel, message):
    channel.send("hello")
    kind = message.get("type")
    if kind == "task":
        channel.send("result", record={})
    elif kind == "ack":
        return "handled-but-never-sent-and-undeclared"
    return None
