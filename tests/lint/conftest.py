"""Shared helpers for the reprolint tests."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.engine import LintResult, lint_root

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture
def lint_tree(tmp_path):
    """Write ``{relpath: source}`` under a temp root and lint it."""

    def run(files: dict[str, str], baseline: Path | None = None) -> LintResult:
        for relpath, source in files.items():
            path = tmp_path / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source, encoding="utf-8")
        return lint_root(tmp_path, baseline_path=baseline)

    return run


def rules_of(result: LintResult) -> list[str]:
    return [finding.rule for finding in result.findings]
