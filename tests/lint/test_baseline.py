"""Baseline round-trip, staleness, and forbidden-prefix policy tests."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from conftest import rules_of

from repro.lint.baseline import (
    BaselineError,
    forbidden_entries,
    load_baseline,
    render_baseline,
)
from repro.lint.engine import lint_root, source_lines_map

REPO_ROOT = Path(__file__).resolve().parents[2]

DIRTY = "import time\nstamp = time.time()\n"


class TestRoundTrip:
    def test_written_baseline_makes_the_tree_clean(self, tmp_path, lint_tree):
        lint_tree({"analysis/sim.py": DIRTY})
        unbaselined = lint_root(tmp_path)
        assert rules_of(unbaselined) == ["wall-clock"]

        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text(
            render_baseline(unbaselined.findings, source_lines_map(tmp_path)),
            encoding="utf-8",
        )

        result = lint_root(tmp_path, baseline_path=baseline_file)
        assert result.clean
        assert rules_of(result) == []
        assert len(result.baselined) == 1

    def test_entries_are_keyed_by_content_not_line_number(self, tmp_path, lint_tree):
        lint_tree({"analysis/sim.py": DIRTY})
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text(
            render_baseline(lint_root(tmp_path).findings, source_lines_map(tmp_path)),
            encoding="utf-8",
        )

        # Shift the offending line down; the baseline must still match.
        shifted = "# a new comment\n" + DIRTY
        (tmp_path / "analysis" / "sim.py").write_text(shifted, encoding="utf-8")
        result = lint_root(tmp_path, baseline_path=baseline_file)
        assert result.clean
        assert len(result.baselined) == 1

    def test_editing_the_offending_line_invalidates_the_entry(self, tmp_path, lint_tree):
        lint_tree({"analysis/sim.py": DIRTY})
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text(
            render_baseline(lint_root(tmp_path).findings, source_lines_map(tmp_path)),
            encoding="utf-8",
        )

        edited = "import time\nstamp = time.time() + 1.0\n"
        (tmp_path / "analysis" / "sim.py").write_text(edited, encoding="utf-8")
        result = lint_root(tmp_path, baseline_path=baseline_file)
        assert not result.clean
        assert rules_of(result) == ["wall-clock"]
        assert len(result.stale_baseline) == 1


class TestStaleness:
    def test_stale_entries_fail_the_run_even_with_no_findings(self, tmp_path, lint_tree):
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "rule": "wall-clock",
                            "path": "analysis/gone.py",
                            "line": "stamp = time.time()",
                        }
                    ],
                }
            ),
            encoding="utf-8",
        )
        result = lint_tree({"analysis/sim.py": "x = 1\n"}, baseline=baseline_file)
        assert rules_of(result) == []
        assert result.stale_baseline == [
            ("wall-clock", "analysis/gone.py", "stamp = time.time()")
        ]
        assert not result.clean


class TestForbiddenPrefixes:
    @pytest.mark.parametrize("prefix", ["net/", "distrib/"])
    def test_hot_layer_entries_are_rejected(self, prefix, tmp_path, lint_tree):
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "rule": "wall-clock",
                            "path": f"{prefix}sim.py",
                            "line": "stamp = time.time()",
                        }
                    ],
                }
            ),
            encoding="utf-8",
        )
        result = lint_tree({f"{prefix}sim.py": DIRTY}, baseline=baseline_file)
        assert result.forbidden_baseline == [
            ("wall-clock", f"{prefix}sim.py", "stamp = time.time()")
        ]
        assert not result.clean

    def test_forbidden_entries_helper(self, tmp_path):
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {"rule": "wall-clock", "path": "net/sim.py", "line": "x"},
                        {"rule": "wall-clock", "path": "analysis/sim.py", "line": "y"},
                    ],
                }
            ),
            encoding="utf-8",
        )
        baseline = load_baseline(baseline_file)
        assert forbidden_entries(baseline) == [("wall-clock", "net/sim.py", "x")]


class TestMalformed:
    def test_unreadable_baseline_raises(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(BaselineError):
            load_baseline(missing)

    def test_non_object_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(BaselineError):
            load_baseline(bad)

    def test_entry_missing_keys_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(
            json.dumps({"version": 1, "entries": [{"rule": "wall-clock"}]}),
            encoding="utf-8",
        )
        with pytest.raises(BaselineError):
            load_baseline(bad)


class TestCommittedBaseline:
    def test_committed_baseline_is_empty_and_well_formed(self):
        baseline = load_baseline(REPO_ROOT / "lint_baseline.json")
        assert sum(baseline.values()) == 0

    def test_shipped_tree_is_clean_under_committed_baseline(self):
        result = lint_root(
            REPO_ROOT / "src" / "repro",
            baseline_path=REPO_ROOT / "lint_baseline.json",
        )
        assert result.clean, [finding.render() for finding in result.findings]
