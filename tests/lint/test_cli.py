"""End-to-end CLI tests: exit codes, output formats, baseline writing."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from conftest import FIXTURES

from repro.lint.__main__ import main

REPO_ROOT = Path(__file__).resolve().parents[2]

#: One minimal dirty snippet per rule, each tripping exactly that rule.
RULE_FIXTURES = {
    "rng-discipline": {"video/sim.py": "import random\n"},
    "wall-clock": {"analysis/sim.py": "import time\nstamp = time.time()\n"},
    "fastpath-flag": {
        "analysis/sim.py": 'import os\nflag = os.getenv("REPRO_NET_FASTPATH")\n'
    },
    "hot-slots": {
        "net/packet.py": (
            "from dataclasses import dataclass\n\n"
            "@dataclass\n"
            "class Packet:\n"
            "    sequence: int\n"
        )
    },
    "float-time-eq": {
        "net/sim.py": "def check(send_time, recv_time):\n"
        "    return send_time == recv_time\n"
    },
    "mutable-default": {"core/sim.py": "def f(items=[]):\n    return items\n"},
    "broad-except": {
        "distrib/sim.py": "def f():\n"
        "    try:\n"
        "        return 1\n"
        "    except Exception:\n"
        "        return 0\n"
    },
    "protocol-exhaustive": {
        "distrib/protocol.py": "PROTOCOL_VERSION = 1\n",
    },
}


def write_tree(root: Path, files: dict[str, str]) -> None:
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")


class TestExitCodes:
    def test_shipped_tree_exits_zero(self, capsys):
        assert main(["--root", str(REPO_ROOT / "src" / "repro")]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    @pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
    def test_each_rule_fixture_exits_nonzero(self, rule, tmp_path, capsys):
        write_tree(tmp_path, RULE_FIXTURES[rule])
        assert main(["--root", str(tmp_path)]) == 1
        assert rule in capsys.readouterr().out

    def test_broken_protocol_fixture_exits_nonzero(self, capsys):
        assert main(["--root", str(FIXTURES / "broken_protocol")]) == 1
        assert "protocol-exhaustive" in capsys.readouterr().out

    def test_unreadable_baseline_exits_two(self, tmp_path, capsys):
        assert main(
            [
                "--root",
                str(tmp_path),
                "--baseline",
                str(tmp_path / "missing-baseline.json"),
            ]
        ) == 2
        assert "cannot read baseline" in capsys.readouterr().err


class TestJsonFormat:
    def test_json_report_is_parseable_and_clean(self, capsys):
        assert (
            main(["--root", str(REPO_ROOT / "src" / "repro"), "--format", "json"]) == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] is True
        assert report["findings"] == []
        assert report["files_checked"] > 50

    def test_json_report_carries_findings(self, tmp_path, capsys):
        write_tree(tmp_path, RULE_FIXTURES["wall-clock"])
        assert main(["--root", str(tmp_path), "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] is False
        assert [f["rule"] for f in report["findings"]] == ["wall-clock"]
        finding = report["findings"][0]
        assert finding["path"] == "analysis/sim.py"
        assert finding["line"] == 2


class TestBaselineFlags:
    def test_write_baseline_then_lint_clean(self, tmp_path, capsys):
        write_tree(tmp_path, RULE_FIXTURES["wall-clock"])
        baseline = tmp_path / "baseline.json"
        assert (
            main(["--root", str(tmp_path), "--write-baseline", str(baseline)]) == 0
        )
        assert (
            main(["--root", str(tmp_path), "--baseline", str(baseline)]) == 0
        )
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_write_baseline_refuses_hot_layer_findings(self, tmp_path, capsys):
        write_tree(tmp_path, RULE_FIXTURES["hot-slots"])
        baseline = tmp_path / "baseline.json"
        assert (
            main(["--root", str(tmp_path), "--write-baseline", str(baseline)]) == 1
        )
        assert not baseline.exists()
        assert "refusing to baseline" in capsys.readouterr().err

    def test_no_baseline_flag_reports_everything(self, tmp_path, capsys):
        write_tree(tmp_path, RULE_FIXTURES["wall-clock"])
        baseline = tmp_path / "baseline.json"
        assert (
            main(["--root", str(tmp_path), "--write-baseline", str(baseline)]) == 0
        )
        assert (
            main(
                [
                    "--root",
                    str(tmp_path),
                    "--baseline",
                    str(baseline),
                    "--no-baseline",
                ]
            )
            == 1
        )


class TestListRules:
    def test_list_rules_names_every_rule(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULE_FIXTURES:
            assert rule in out
