"""Tests for the sweep reporting subsystem (repro.analysis.report)."""

import json
import math
import os

import pytest

from repro.analysis.report import (
    MetricAggregate,
    SweepDigest,
    build_digest,
    digest_results_dir,
    digest_sweep_report,
    flatten_numeric,
    load_records,
    main,
    t_critical_95,
    write_report,
)
from repro.analysis.sweeps import (
    SweepGrid,
    SweepRunner,
    bernoulli_scenario,
    gilbert_elliott_scenario,
)


def _record(experiment, scenario, seed, result):
    return {
        "experiment": experiment,
        "scenario": {"name": scenario},
        "seed": seed,
        "result": result,
    }


class TestFlattenNumeric:
    def test_nested_dicts_and_lists(self):
        flat = flatten_numeric(
            {
                "a": 1,
                "b": {"c": 2.5, "d": [3, {"e": 4}]},
                "skip_str": "x",
                "skip_none": None,
                "skip_bool": True,
            }
        )
        assert flat == {"a": 1.0, "b.c": 2.5, "b.d[0]": 3.0, "b.d[1].e": 4.0}

    def test_top_level_list_of_rows(self):
        flat = flatten_numeric([{"x": 1.0}, {"x": 2.0}])
        assert flat == {"[0].x": 1.0, "[1].x": 2.0}

    def test_bare_scalar(self):
        assert flatten_numeric(7) == {"value": 7.0}

    def test_non_finite_floats_kept(self):
        flat = flatten_numeric({"nan": float("nan")})
        assert math.isnan(flat["nan"])


class TestMetricAggregate:
    def test_two_values_student_t_interval(self):
        agg = MetricAggregate.from_values("m", [1.0, 3.0])
        assert agg.count == 2
        assert agg.mean == pytest.approx(2.0)
        assert agg.std == pytest.approx(math.sqrt(2.0))
        # t(df=1) * std / sqrt(2) = 12.706 * sqrt(2)/sqrt(2)
        assert agg.ci95 == pytest.approx(12.706, rel=1e-6)
        assert (agg.minimum, agg.maximum) == (1.0, 3.0)

    def test_single_value_has_zero_spread(self):
        agg = MetricAggregate.from_values("m", [5.0])
        assert agg.std == 0.0 and agg.ci95 == 0.0
        assert agg.format() == "5"

    def test_format_includes_ci(self):
        assert "±" in MetricAggregate.from_values("m", [1.0, 2.0]).format()

    def test_t_table_monotone_and_bounded(self):
        values = [t_critical_95(df) for df in range(1, 40)]
        assert values == sorted(values, reverse=True)
        assert values[-1] == pytest.approx(1.96, abs=0.01)


class TestBuildDigest:
    RECORDS = [
        _record("exp", "iid", 0, {"latency_ms": 10.0, "nested": {"ratio": 0.5}, "iid_only": 1.0}),
        _record("exp", "iid", 1, {"latency_ms": 14.0, "nested": {"ratio": 0.7}, "iid_only": 2.0}),
        _record("exp", "bursty", 0, {"latency_ms": 30.0, "nested": {"ratio": 0.2}}),
        _record("other", "iid", 0, {"score": 1.0}),
    ]

    def test_groups_by_experiment_and_scenario(self):
        digest = build_digest(self.RECORDS)
        assert digest.cell_count == 4
        assert [d.experiment for d in digest.experiments] == ["exp", "other"]
        exp = digest.experiments[0]
        assert [s.scenario for s in exp.scenarios] == ["bursty", "iid"]
        iid = exp.scenarios[1]
        assert iid.seeds == (0, 1)
        assert iid.metrics["latency_ms"].mean == pytest.approx(12.0)
        assert iid.metrics["nested.ratio"].count == 2

    def test_heterogeneous_metrics_aggregate_present_seeds(self):
        records = [
            _record("exp", "s", 0, {"a": 1.0, "b": 2.0}),
            _record("exp", "s", 1, {"a": 3.0}),
        ]
        digest = build_digest(records)
        metrics = digest.experiments[0].scenarios[0].metrics
        assert metrics["a"].count == 2
        assert metrics["b"].count == 1

    def test_markdown_is_a_cross_scenario_table(self):
        md = build_digest(self.RECORDS).render_markdown()
        assert "## exp" in md and "## other" in md
        assert "| metric | bursty (n=1) | iid (n=2) |" in md
        assert "±" in md
        # every numeric metric appears as a row
        for metric in ("latency_ms", "nested.ratio", "iid_only", "score"):
            assert f"`{metric}`" in md
        # a metric one scenario never reported renders as a dash in its column
        assert "| `iid_only` | — | 1.5 ± " in md

    def test_text_render_mentions_every_scenario(self):
        text = build_digest(self.RECORDS).render_text()
        for token in ("exp", "bursty (n=1)", "iid (n=2)", "latency_ms"):
            assert token in text


class TestLoadRecords:
    def _write(self, path, record, mtime=None):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(record))
        if mtime is not None:
            os.utime(path, (mtime, mtime))

    def test_loads_cells_and_skips_junk(self, tmp_path):
        self._write(tmp_path / "exp" / "a-seed0-abc.json", _record("exp", "a", 0, {"x": 1}))
        (tmp_path / "exp" / "corrupt.json").write_text("{nope")
        (tmp_path / "report.json").write_text(json.dumps({"cells": 99}))
        (tmp_path / "exp" / "not-a-cell.json").write_text(json.dumps({"foo": 1}))
        records = load_records(tmp_path)
        assert len(records) == 1
        assert records[0]["scenario"]["name"] == "a"

    def test_newest_duplicate_wins(self, tmp_path):
        stale = _record("exp", "a", 0, {"x": 1.0})
        fresh = _record("exp", "a", 0, {"x": 2.0})
        self._write(tmp_path / "exp" / "a-seed0-old.json", stale, mtime=1_000)
        self._write(tmp_path / "exp" / "a-seed0-new.json", fresh, mtime=2_000)
        records = load_records(tmp_path)
        assert len(records) == 1
        assert records[0]["result"]["x"] == 2.0


class TestEndToEnd:
    GRID = SweepGrid(
        experiments=("section1_latency_budget",),
        scenarios=(
            bernoulli_scenario(0.02, name="iid"),
            gilbert_elliott_scenario(p_good_to_bad=0.05, name="bursty"),
        ),
        seeds=(0, 1),
    )

    def test_digest_results_dir_counts_every_seed(self, tmp_path):
        SweepRunner(results_dir=tmp_path, processes=1).run(self.GRID)
        digest = digest_results_dir(tmp_path)
        assert digest.cell_count == 4
        for experiment in digest.experiments:
            for scenario in experiment.scenarios:
                assert scenario.seeds == (0, 1)
                assert scenario.metrics  # every numeric leaf aggregated
                for aggregate in scenario.metrics.values():
                    assert aggregate.count == 2

    def test_digest_sweep_report_matches_dir(self, tmp_path):
        report = SweepRunner(results_dir=tmp_path, processes=1).run(self.GRID)
        from_dir = digest_results_dir(tmp_path)
        from_memory = digest_sweep_report(report)
        assert from_memory.to_jsonable() == from_dir.to_jsonable()

    def test_write_report_and_cli(self, tmp_path, capsys):
        SweepRunner(results_dir=tmp_path, processes=1).run(self.GRID)
        digest = digest_results_dir(tmp_path)
        paths = write_report(digest, tmp_path)
        data = json.loads(paths["json"].read_text())
        assert data["cells"] == 4
        assert paths["markdown"].read_text().startswith("# Sweep report")

        assert main([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "sweep report" in out and "report.md" in out
        # the written report.json must not be swallowed back in as a cell
        assert digest_results_dir(tmp_path).cell_count == 4

    def test_cli_empty_dir_fails_cleanly(self, tmp_path, capsys):
        assert main([str(tmp_path)]) == 1
        assert "no sweep cells" in capsys.readouterr().out


class TestMarkdownEscaping:
    def test_pipe_in_scenario_and_metric_names_escaped(self):
        records = [
            _record("exp", "bursty|2pct", 0, {"a|b": 1.0}),
            _record("exp", "bursty|2pct", 1, {"a|b": 2.0}),
        ]
        md = build_digest(records).render_markdown()
        assert "bursty\\|2pct (n=2)" in md
        assert "`a\\|b`" in md
        # every table row keeps the same column count
        rows = [line for line in md.splitlines() if line.startswith("|")]
        widths = {row.count("|") - row.count("\\|") for row in rows}
        assert len(widths) == 1


class TestFailedCells:
    """Error records are flagged and excluded from aggregation."""

    def _records(self):
        ok = {
            "experiment": "exp",
            "scenario": {"name": "s1"},
            "seed": 0,
            "result": {"metric": 1.0},
        }
        ok2 = dict(ok, seed=1, result={"metric": 3.0})
        bad = {
            "experiment": "exp",
            "scenario": {"name": "s1"},
            "seed": 2,
            "result": None,
            "error": {"type": "ValueError", "message": "x" * 200, "traceback": "tb"},
        }
        return [ok, ok2, bad]

    def test_build_digest_splits_failures(self):
        from repro.analysis.report import build_digest

        digest = build_digest(self._records())
        assert digest.cell_count == 3
        assert len(digest.failed_cells) == 1
        failed = digest.failed_cells[0]
        assert (failed.experiment, failed.scenario, failed.seed) == ("exp", "s1", 2)
        # The failed seed contributes nothing to the aggregate.
        scenario = digest.experiments[0].scenarios[0]
        assert scenario.seeds == (0, 1)
        assert scenario.metrics["metric"].mean == 2.0

    def test_renderers_and_json_flag_failures(self):
        from repro.analysis.report import build_digest

        digest = build_digest(self._records())
        text = digest.render_text()
        assert "FAILED CELLS (1" in text and "ValueError" in text
        markdown = digest.render_markdown()
        assert "Failed cells" in markdown
        assert "..." in markdown  # long messages truncate in listings
        payload = digest.to_jsonable()
        assert payload["failed"] == 1
        assert payload["failed_cells"][0]["error_type"] == "ValueError"

    def test_clean_digest_has_no_failure_sections(self):
        from repro.analysis.report import build_digest

        digest = build_digest(self._records()[:2])
        assert digest.failed_cells == []
        assert "FAILED" not in digest.render_text()
        assert "Failed cells" not in digest.render_markdown()


class TestFailureHotspots:
    """Failures localize along error-type / cell / worker axes."""

    def _records(self):
        def bad(seed, error_type, worker=None, scenario="s1"):
            error = {"type": error_type, "message": "boom", "traceback": "tb"}
            if worker is not None:
                error["worker"] = worker
            return {
                "experiment": "exp",
                "scenario": {"name": scenario},
                "seed": seed,
                "result": None,
                "error": error,
            }

        ok = {
            "experiment": "exp",
            "scenario": {"name": "s1"},
            "seed": 0,
            "result": {"metric": 1.0},
        }
        return [
            ok,
            bad(1, "WorkerLost", worker="w0"),
            bad(2, "WorkerLost", worker="w0", scenario="s2"),
            bad(3, "ValueError"),
        ]

    def test_ranked_along_all_three_axes(self):
        from repro.analysis.report import build_digest

        hotspots = build_digest(self._records()).failure_hotspots()
        assert hotspots["error_type"] == [("WorkerLost", 2), ("ValueError", 1)]
        assert hotspots["cell"] == [("exp / s1", 2), ("exp / s2", 1)]
        # Worker attribution comes from the coordinator's error record;
        # local failures pool under "(local)".
        assert hotspots["worker"] == [("w0", 2), ("(local)", 1)]

    def test_renderers_and_json_carry_hotspots(self):
        from repro.analysis.report import build_digest

        digest = build_digest(self._records())
        markdown = digest.render_markdown()
        assert "### Failure hotspots" in markdown
        assert "| fault class | WorkerLost | 2 |" in markdown
        assert "[worker w0]" in markdown  # listing names the worker too
        text = digest.render_text()
        assert "failure hotspots:" in text
        assert "WorkerLost (2)" in text
        payload = digest.to_jsonable()
        assert payload["failure_hotspots"]["worker"][0] == {"label": "w0", "count": 2}
        attributions = {cell["worker"] for cell in payload["failed_cells"]}
        assert attributions == {"w0", None}

    def test_clean_digest_has_no_hotspot_sections(self):
        from repro.analysis.report import build_digest

        digest = build_digest(self._records()[:1])
        assert digest.failure_hotspots() == {"error_type": [], "cell": [], "worker": []}
        assert "hotspot" not in digest.render_markdown().lower()
        assert "hotspot" not in digest.render_text().lower()
