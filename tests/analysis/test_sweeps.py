"""Tests for the experiment registry and the scenario sweep engine."""

import dataclasses
import json

import numpy as np
import pytest

from repro.analysis import (
    Scenario,
    SweepGrid,
    SweepRunner,
    bernoulli_scenario,
    default_scenarios,
    get_experiment,
    gilbert_elliott_scenario,
    list_experiments,
    run_experiment,
    trace_scenario,
)
from repro.analysis import sweeps
from repro.analysis.sweeps import (
    cell_cache_key,
    derive_cell_seed,
    scenario_slug,
    to_jsonable,
)
from repro.net.emulator import BandwidthTrace, BernoulliLoss, GilbertElliottLoss


class TestRegistry:
    def test_core_experiments_registered(self):
        names = list_experiments()
        for expected in (
            "figure2_redundancy",
            "figure3_latency",
            "figure9_accuracy",
            "end_to_end_turn",
            "section1_latency_budget",
        ):
            assert expected in names
        assert len(names) >= 15

    def test_unknown_experiment_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="figure3_latency"):
            get_experiment("figure99_nope")

    def test_kwargs_filtered_to_signature(self):
        spec = get_experiment("section1_latency_budget")
        assert spec.supported({"seed": 1, "loss_model": BernoulliLoss(0.1)}) == {}
        spec = get_experiment("figure3_latency")
        supported = spec.supported({"seed": 1, "nonsense": True})
        assert supported == {"seed": 1}

    def test_run_experiment_drops_unsupported_kwargs(self):
        result = run_experiment(
            "section21_jitter_invariance", seed=0, bandwidth_trace="ignored"
        )
        assert result["mllm_input_identical"] == 1.0

    def test_registered_fn_unchanged_by_decoration(self):
        from repro.analysis.experiments import run_figure3_latency

        assert get_experiment("figure3_latency").fn is run_figure3_latency


class TestScenario:
    def test_jsonable_roundtrip(self):
        scenario = gilbert_elliott_scenario(
            p_good_to_bad=0.05, loss_in_bad=0.6, duration_s=2.0
        )
        rebuilt = Scenario.from_jsonable(json.loads(json.dumps(scenario.to_jsonable())))
        assert rebuilt == scenario

    def test_runner_kwargs_builds_live_objects(self):
        scenario = trace_scenario(
            times=[0.0, 1.0], rates_bps=[1e6, 2e6], loss_rate=0.03, duration_s=2.0
        )
        kwargs = scenario.runner_kwargs(seed=7)
        assert isinstance(kwargs["loss_model"], BernoulliLoss)
        assert isinstance(kwargs["bandwidth_trace"], BandwidthTrace)
        assert kwargs["seed"] == 7
        assert kwargs["duration_s"] == 2.0

    def test_pinned_override_seed_wins_over_cell_seed(self):
        scenario = bernoulli_scenario(0.02, seed=42)
        assert scenario.runner_kwargs(seed=7)["seed"] == 42

    def test_gilbert_elliott_scenario_builds_chain(self):
        kwargs = gilbert_elliott_scenario(p_good_to_bad=0.02).runner_kwargs(seed=0)
        assert isinstance(kwargs["loss_model"], GilbertElliottLoss)

    def test_default_scenarios_cover_three_regimes(self):
        scenarios = default_scenarios()
        assert len(scenarios) >= 3
        kinds = {s.loss_model["kind"] for s in scenarios}
        assert "bernoulli" in kinds and "gilbert_elliott" in kinds
        assert any(s.bandwidth_trace is not None for s in scenarios)


class TestSeedingAndHashing:
    def test_cell_seed_deterministic_and_distinct(self):
        a = derive_cell_seed("figure3_latency", "bursty", 0)
        assert a == derive_cell_seed("figure3_latency", "bursty", 0)
        assert a != derive_cell_seed("figure3_latency", "bursty", 1)
        assert a != derive_cell_seed("figure2_redundancy", "bursty", 0)

    def test_cache_key_sensitive_to_scenario_and_seed(self):
        spec = get_experiment("section1_latency_budget")
        a = bernoulli_scenario(0.02)
        b = bernoulli_scenario(0.05)
        assert cell_cache_key(spec, a, 0) == cell_cache_key(spec, a, 0)
        assert cell_cache_key(spec, a, 0) != cell_cache_key(spec, b, 0)
        assert cell_cache_key(spec, a, 0) != cell_cache_key(spec, a, 1)

    def test_cache_key_sensitive_to_package_source(self, monkeypatch):
        """Editing shared simulator code must invalidate cached cells."""
        spec = get_experiment("section1_latency_budget")
        scenario = bernoulli_scenario(0.02)
        before = cell_cache_key(spec, scenario, 0)
        monkeypatch.setattr(sweeps, "_package_fingerprint", lambda: "edited-tree")
        assert cell_cache_key(spec, scenario, 0) != before

    def test_package_fingerprint_stable(self):
        assert sweeps._package_fingerprint() == sweeps._package_fingerprint()
        assert len(sweeps._package_fingerprint()) == 64


class TestFingerprintMemo:
    def _fresh(self, monkeypatch, tmp_path, name="memo.json"):
        memo = tmp_path / name
        monkeypatch.setenv(sweeps.FINGERPRINT_MEMO_ENV, str(memo))
        monkeypatch.setattr(sweeps, "_package_fingerprint_cache", None)
        return memo

    def test_memo_written_and_reused(self, monkeypatch, tmp_path):
        memo = self._fresh(monkeypatch, tmp_path)
        first = sweeps._package_fingerprint()
        assert memo.exists()
        stored = json.loads(memo.read_text())
        assert stored["fingerprint"] == first

        # A fresh process (cleared in-memory cache) with an untouched tree
        # must reuse the memo instead of re-hashing file contents.
        monkeypatch.setattr(sweeps, "_package_fingerprint_cache", None)
        monkeypatch.setattr(
            sweeps, "_compute_package_fingerprint", lambda: pytest.fail("re-hashed tree")
        )
        assert sweeps._package_fingerprint() == first

    def test_stale_memo_recomputed(self, monkeypatch, tmp_path):
        memo = self._fresh(monkeypatch, tmp_path)
        memo.write_text(json.dumps({"state": "stale", "fingerprint": "bogus"}))
        assert sweeps._package_fingerprint() != "bogus"
        assert json.loads(memo.read_text())["fingerprint"] != "bogus"

    def test_corrupt_memo_tolerated(self, monkeypatch, tmp_path):
        memo = self._fresh(monkeypatch, tmp_path)
        memo.write_text("{not json")
        assert len(sweeps._package_fingerprint()) == 64

    def test_memo_disabled_by_empty_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(sweeps.FINGERPRINT_MEMO_ENV, "")
        monkeypatch.setattr(sweeps, "_package_fingerprint_cache", None)
        assert len(sweeps._package_fingerprint()) == 64
        assert not list(tmp_path.iterdir())


class TestScenarioSlug:
    def test_safe_names_unchanged(self):
        assert scenario_slug("bernoulli-0.02") == "bernoulli-0.02"
        assert scenario_slug("trace_droop.v2") == "trace_droop.v2"

    def test_path_separators_and_dots_neutralised(self):
        assert "/" not in scenario_slug("a/b")
        assert scenario_slug("../../etc/passwd") == "etc-passwd"
        assert scenario_slug("..") == "scenario"
        assert scenario_slug("") == "scenario"

    def test_long_names_truncated(self):
        assert len(scenario_slug("a" * 300)) <= 100

    def test_cell_path_stays_inside_results_dir(self, tmp_path):
        runner = SweepRunner(results_dir=tmp_path)
        hostile = Scenario(name="../../escape")
        path = runner.cell_path("exp", hostile, 0, "deadbeefdeadbeef")
        assert path.resolve().is_relative_to(tmp_path.resolve())


class TestToJsonable:
    def test_dataclass_numpy_and_float_keys(self):
        @dataclasses.dataclass
        class Row:
            value: float
            ratio: np.float64

        data = {
            0.5: Row(value=1.0, ratio=np.float64(0.25)),
            "arr": np.arange(3),
            "tup": (1, 2),
        }
        converted = to_jsonable(data)
        json.dumps(converted)  # must not raise
        assert converted["0.5"]["ratio"] == 0.25
        assert converted["arr"] == [0, 1, 2]


class TestSweepRunner:
    GRID = SweepGrid(
        experiments=("section1_latency_budget", "section21_jitter_invariance"),
        scenarios=(bernoulli_scenario(0.02), gilbert_elliott_scenario(p_good_to_bad=0.05)),
        seeds=(0, 1),
    )

    def test_serial_run_persists_json(self, tmp_path):
        runner = SweepRunner(results_dir=tmp_path, processes=1)
        report = runner.run(self.GRID)
        assert len(report.cells) == self.GRID.cell_count == 8
        assert report.executed == 8 and report.cached == 0
        for cell in report.cells:
            assert cell.path.exists()
            record = json.loads(cell.path.read_text())
            assert record["cache_key"] == cell.cache_key
            assert record["result"] == cell.result

    def test_second_run_hits_cache(self, tmp_path):
        runner = SweepRunner(results_dir=tmp_path, processes=1)
        first = runner.run(self.GRID)
        second = runner.run(self.GRID)
        assert second.cached == self.GRID.cell_count
        assert second.executed == 0
        by_key = {cell.cache_key: cell.result for cell in first.cells}
        for cell in second.cells:
            assert cell.result == by_key[cell.cache_key]

    def test_changed_scenario_misses_cache(self, tmp_path):
        runner = SweepRunner(results_dir=tmp_path, processes=1)
        grid = SweepGrid(
            experiments=("section1_latency_budget",),
            scenarios=(bernoulli_scenario(0.02),),
            seeds=(0,),
        )
        runner.run(grid)
        changed = SweepGrid(
            experiments=("section1_latency_budget",),
            scenarios=(bernoulli_scenario(0.05),),
            seeds=(0,),
        )
        report = runner.run(changed)
        assert report.executed == 1 and report.cached == 0

    def test_corrupt_cache_file_reruns(self, tmp_path):
        runner = SweepRunner(results_dir=tmp_path, processes=1)
        grid = SweepGrid(
            experiments=("section1_latency_budget",),
            scenarios=(bernoulli_scenario(0.02),),
            seeds=(0,),
        )
        first = runner.run(grid)
        first.cells[0].path.write_text("{not json")
        report = runner.run(grid)
        assert report.executed == 1

    def test_use_cache_false_forces_reruns(self, tmp_path):
        grid = SweepGrid(
            experiments=("section1_latency_budget",),
            scenarios=(bernoulli_scenario(0.02),),
            seeds=(0,),
        )
        SweepRunner(results_dir=tmp_path, processes=1).run(grid)
        report = SweepRunner(results_dir=tmp_path, processes=1, use_cache=False).run(grid)
        assert report.executed == 1 and report.cached == 0

    def test_multiprocessing_pool_path(self, tmp_path):
        """The grid really goes through a process pool (processes=2)."""
        runner = SweepRunner(results_dir=tmp_path, processes=2)
        grid = SweepGrid(
            experiments=("section1_latency_budget",),
            scenarios=(bernoulli_scenario(0.02), gilbert_elliott_scenario(p_good_to_bad=0.05)),
            seeds=(0, 1),
        )
        report = runner.run(grid)
        assert report.executed == 4
        again = runner.run(grid)
        assert again.cached == 4

    def test_cell_seeds_recorded_and_deterministic(self, tmp_path):
        runner = SweepRunner(results_dir=tmp_path, processes=1)
        report = runner.run(self.GRID)
        for cell in report.cells:
            assert cell.cell_seed == derive_cell_seed(
                cell.experiment, cell.scenario.name, cell.seed
            )

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            SweepGrid(experiments=(), scenarios=(bernoulli_scenario(0.0),), seeds=(0,))


class TestScenarioPluggableRunners:
    def test_figure3_with_gilbert_elliott_model(self):
        rows = run_experiment(
            "figure3_latency",
            bitrates_bps=(200_000,),
            duration_s=2.0,
            loss_model=GilbertElliottLoss(p_good_to_bad=0.05, p_bad_to_good=0.4, loss_in_bad=0.5),
        )
        assert len(rows) == 1
        model_loss = GilbertElliottLoss(
            p_good_to_bad=0.05, p_bad_to_good=0.4, loss_in_bad=0.5
        ).steady_state_loss
        assert rows[0].loss_rate == pytest.approx(model_loss)
        assert rows[0].mean_latency_ms > 0

    def test_figure3_with_bandwidth_trace_slows_delivery(self):
        fast = run_experiment(
            "figure3_latency", bitrates_bps=(4_000_000,), loss_rates=(0.0,), duration_s=3.0
        )
        constrained = run_experiment(
            "figure3_latency",
            bitrates_bps=(4_000_000,),
            loss_rates=(0.0,),
            duration_s=3.0,
            bandwidth_trace=BandwidthTrace(times=[0.0, 1.0], rates_bps=[10e6, 1e6]),
        )
        assert constrained[0].mean_latency_ms > fast[0].mean_latency_ms

    def test_figure2_dead_link_reports_zero_not_lossless(self):
        result = run_experiment(
            "figure2_redundancy",
            capture_fps=30.0,
            duration_s=1.0,
            height=120,
            width=160,
            loss_model=GilbertElliottLoss(
                p_good_to_bad=1.0, p_bad_to_good=0.0, loss_in_bad=1.0, loss_in_good=1.0
            ),
        )
        assert result["delivered_frame_fraction"] == 0.0
        assert result["perceived_throughput_bps"] == 0.0

    def test_figure2_loss_reduces_delivered_frames(self):
        clean = run_experiment(
            "figure2_redundancy", capture_fps=30.0, duration_s=1.0, height=120, width=160
        )
        lossy = run_experiment(
            "figure2_redundancy",
            capture_fps=30.0,
            duration_s=1.0,
            height=120,
            width=160,
            loss_model=BernoulliLoss(0.4),
        )
        assert clean["delivered_frame_fraction"] == pytest.approx(1.0)
        assert lossy["delivered_frame_fraction"] < 1.0


def _register_probe_experiments():
    """Register tiny deterministic runners used by the fault-isolation tests.

    The registry is process-global and rejects duplicates, so registration
    is guarded for repeated imports within one pytest session.
    """
    from repro.analysis.registry import _REGISTRY, experiment

    if "_test_faulty_probe" in _REGISTRY:
        return

    @experiment("_test_faulty_probe", description="raises when told to (tests only)")
    def _faulty_probe(seed: int = 0, boom: bool = False):
        if boom:
            raise ValueError(f"probe exploded (seed {seed})")
        return {"ok": 1.0}


class TestFaultIsolation:
    """A raising runner yields an error record instead of crashing the pool."""

    def _grid(self):
        _register_probe_experiments()
        return SweepGrid(
            experiments=("_test_faulty_probe",),
            scenarios=(
                bernoulli_scenario(0.02, name="healthy"),
                bernoulli_scenario(0.02, name="explosive", boom=True),
            ),
            seeds=(0, 1),
        )

    def test_failures_become_error_records(self, tmp_path):
        report = SweepRunner(results_dir=tmp_path, processes=1).run(self._grid())
        assert len(report.cells) == 4
        failed = report.failed_cells
        assert sorted((cell.scenario.name, cell.seed) for cell in failed) == [
            ("explosive", 0),
            ("explosive", 1),
        ]
        for cell in failed:
            assert cell.result is None and cell.failed
            assert cell.error["type"] == "ValueError"
            assert "probe exploded" in cell.error["message"]
            assert "ValueError" in cell.error["traceback"]
        assert report.summary()["failed"] == 2

    def test_completed_cells_persist_alongside_failures(self, tmp_path):
        report = SweepRunner(results_dir=tmp_path, processes=1).run(self._grid())
        for cell in report.cells:
            record = json.loads(cell.path.read_text())
            if cell.failed:
                assert record["error"]["type"] == "ValueError"
                assert record["result"] is None
            else:
                assert record["result"] == {"ok": 1.0}
                assert "error" not in record

    def test_error_records_not_served_from_cache(self, tmp_path):
        runner = SweepRunner(results_dir=tmp_path, processes=1)
        runner.run(self._grid())
        again = runner.run(self._grid())
        # Successes load from cache; failures re-execute (and fail again).
        assert again.cached == 2 and again.executed == 2
        assert len(again.failed_cells) == 2

    def test_failures_survive_the_process_pool(self, tmp_path):
        """The error record must pickle back from a real pool worker."""
        report = SweepRunner(results_dir=tmp_path, processes=2).run(self._grid())
        assert len(report.failed_cells) == 2

    def test_report_flags_failures(self, tmp_path):
        from repro.analysis import digest_results_dir, digest_sweep_report

        report = SweepRunner(results_dir=tmp_path, processes=1).run(self._grid())
        for digest in (digest_sweep_report(report), digest_results_dir(tmp_path)):
            assert digest.cell_count == 4
            assert sorted((cell.scenario, cell.seed) for cell in digest.failed_cells) == [
                ("explosive", 0),
                ("explosive", 1),
            ]
            assert digest.failed_cells[0].error_type == "ValueError"
            # Failures are flagged, never aggregated: the explosive scenario
            # contributes no aggregate group at all.
            for experiment in digest.experiments:
                assert [s.scenario for s in experiment.scenarios] == ["healthy"]
                for scenario in experiment.scenarios:
                    assert set(scenario.seeds) == {0, 1}
            assert "FAILED CELLS (2" in digest.render_text()
            assert "Failed cells" in digest.render_markdown()
            assert digest.to_jsonable()["failed"] == 2


class TestBackendPlumbing:
    def test_default_backend_is_local_pool(self, tmp_path):
        from repro.analysis import LocalPoolBackend

        backend = LocalPoolBackend(processes=1)
        runner = SweepRunner(results_dir=tmp_path, backend=backend)
        grid = SweepGrid(
            experiments=("section1_latency_budget",),
            scenarios=(bernoulli_scenario(0.02),),
            seeds=(0,),
        )
        report = runner.run(grid)
        assert report.executed == 1
        assert "local pool" in backend.describe()

    def test_backend_never_sees_cached_cells(self, tmp_path):
        from repro.analysis import CellBackend

        class CountingBackend(CellBackend):
            def __init__(self):
                self.seen = 0

            def execute(self, items):
                self.seen += len(items)
                for item in items:
                    yield sweeps._execute_cell_indexed(item)

        grid = SweepGrid(
            experiments=("section1_latency_budget",),
            scenarios=(bernoulli_scenario(0.02),),
            seeds=(0, 1),
        )
        first = CountingBackend()
        SweepRunner(results_dir=tmp_path, backend=first).run(grid)
        assert first.seen == 2
        second = CountingBackend()
        SweepRunner(results_dir=tmp_path, backend=second).run(grid)
        assert second.seen == 0
