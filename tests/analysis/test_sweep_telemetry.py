"""Sweep-layer telemetry: per-cell spans, cache disposition, clean records.

The runner's telemetry is strictly runner-side: wall-clock spans and
counters describe *this run's* scheduling (queue wait, execute time, cache
hits), and none of it may leak into the persisted cell records — those are
byte-compared across local/distributed/chaos runs by CI.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import SweepGrid, SweepRunner, bernoulli_scenario
from repro.obs import Telemetry

GRID = SweepGrid(
    experiments=("section1_latency_budget",),
    scenarios=(bernoulli_scenario(0.02),),
    seeds=(0, 1),
)


class TestSweepTelemetry:
    def test_executed_cells_get_spans_and_counters(self, tmp_path):
        telemetry = Telemetry()
        runner = SweepRunner(results_dir=tmp_path, processes=1, telemetry=telemetry)
        report = runner.run(GRID)
        assert report.executed == 2

        snapshot = telemetry.metrics.snapshot()
        assert snapshot["sweep.cells.executed"]["value"] == 2
        assert snapshot["sweep.cells.cached"]["value"] == 0
        assert snapshot["sweep.cells.failed"]["value"] == 0

        spans = telemetry.trace.spans(clock="wall")
        run_spans = [span for span in spans if span.name == "sweep.run"]
        cell_spans = [span for span in spans if span.name == "sweep.cell"]
        assert len(run_spans) == 1
        assert run_spans[0].attrs == {"cells": 2}
        assert len(cell_spans) == 2
        for span in cell_spans:
            assert span.parent_id == run_spans[0].span_id
            assert span.attrs["disposition"] == "executed"
            assert span.attrs["experiment"] == "section1_latency_budget"
            assert span.attrs["queue_wait_s"] >= 0.0
            assert span.attrs["execute_s"] > 0.0

    def test_cached_rerun_records_cached_disposition(self, tmp_path):
        runner = SweepRunner(results_dir=tmp_path, processes=1)
        runner.run(GRID)

        telemetry = Telemetry()
        rerun = SweepRunner(results_dir=tmp_path, processes=1, telemetry=telemetry)
        report = rerun.run(GRID)
        assert report.cached == 2

        snapshot = telemetry.metrics.snapshot()
        assert snapshot["sweep.cells.cached"]["value"] == 2
        assert snapshot["sweep.cells.executed"]["value"] == 0
        cell_spans = [
            span for span in telemetry.trace.spans(clock="wall") if span.name == "sweep.cell"
        ]
        assert len(cell_spans) == 2
        for span in cell_spans:
            assert span.attrs["disposition"] == "cached"
            assert span.attrs["queue_wait_s"] == 0.0
            assert span.attrs["execute_s"] == 0.0

    def test_telemetry_never_touches_persisted_records(self, tmp_path):
        """Byte-identity invariant: an instrumented run persists exactly the
        same records as a plain run (modulo elapsed_s wall time)."""

        def record_tree(results_dir):
            out = {}
            for path in sorted(Path(results_dir).glob("*/*.json")):
                record = json.loads(path.read_text())
                record.pop("elapsed_s")
                out[str(path.relative_to(results_dir))] = record
            return out

        plain_dir = tmp_path / "plain"
        instrumented_dir = tmp_path / "instrumented"
        SweepRunner(results_dir=plain_dir, processes=1).run(GRID)
        SweepRunner(
            results_dir=instrumented_dir, processes=1, telemetry=Telemetry()
        ).run(GRID)
        plain = record_tree(plain_dir)
        instrumented = record_tree(instrumented_dir)
        assert plain == instrumented

    def test_disabled_telemetry_is_default_and_inert(self, tmp_path):
        runner = SweepRunner(results_dir=tmp_path, processes=1)
        assert not runner.telemetry.enabled
        runner.run(GRID)
        assert runner.telemetry.metrics.snapshot() == {}
        assert runner.telemetry.trace.spans() == []
