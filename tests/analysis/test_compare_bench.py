"""Tests for the CI benchmark-regression comparator."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "compare_bench",
    Path(__file__).resolve().parents[2] / "benchmarks" / "compare_bench.py",
)
compare_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_bench)


def _snapshot(entries):
    return {
        "schema": "repro-perfbench-v2",
        "benchmarks": [
            {"name": name, "units": units, "after_s": after}
            for name, units, after in entries
        ],
    }


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


class TestExtractMetric:
    def test_throughput_is_units_over_after(self):
        payload = _snapshot([("w", 10.0, 2.0)])
        assert compare_bench.extract_metric(payload, "throughput") == {"w": pytest.approx(5.0)}

    def test_entries_without_units_are_skipped(self):
        payload = _snapshot([("w", 10.0, 2.0)])
        payload["benchmarks"].append({"name": "old", "after_s": 1.0})
        assert set(compare_bench.extract_metric(payload, "throughput")) == {"w"}

    def test_speedup_metric(self):
        payload = {"benchmarks": [{"name": "w", "speedup": 2.5}, {"name": "z"}]}
        assert compare_bench.extract_metric(payload, "speedup") == {"w": pytest.approx(2.5)}


class TestCompare:
    def test_within_tolerance_passes(self):
        lines, failures = compare_bench.compare(
            {"w": 8.0}, {"w": 10.0}, tolerance=0.25
        )
        assert not failures
        assert any("w" in line for line in lines)

    def test_regression_beyond_tolerance_fails(self):
        _, failures = compare_bench.compare({"w": 7.0}, {"w": 10.0}, tolerance=0.25)
        assert len(failures) == 1
        assert "w" in failures[0]

    def test_improvement_passes(self):
        _, failures = compare_bench.compare({"w": 30.0}, {"w": 10.0}, tolerance=0.25)
        assert not failures

    def test_missing_workload_reported_but_not_failed(self):
        lines, failures = compare_bench.compare({}, {"w": 10.0}, tolerance=0.25)
        assert not failures
        assert any("absent" in line for line in lines)

    def test_fresh_only_workload_listed(self):
        lines, failures = compare_bench.compare(
            {"new": 5.0, "w": 10.0}, {"w": 10.0}, tolerance=0.25
        )
        assert not failures
        assert any("fresh-only" in line for line in lines)


class TestMain:
    def test_exit_codes(self, tmp_path, monkeypatch, capsys):
        baseline = _write(tmp_path, "base.json", _snapshot([("w", 10.0, 1.0)]))
        good = _write(tmp_path, "good.json", _snapshot([("w", 10.0, 1.1)]))
        bad = _write(tmp_path, "bad.json", _snapshot([("w", 10.0, 2.0)]))
        monkeypatch.setattr(
            "sys.argv", ["compare_bench.py", str(good), str(baseline)]
        )
        assert compare_bench.main() == 0
        monkeypatch.setattr(
            "sys.argv", ["compare_bench.py", str(bad), str(baseline)]
        )
        assert compare_bench.main() == 1
        assert "regression" in capsys.readouterr().err

    def test_old_schema_baseline_skips(self, tmp_path, monkeypatch, capsys):
        baseline = _write(
            tmp_path, "base.json", {"benchmarks": [{"name": "w", "after_s": 1.0}]}
        )
        fresh = _write(tmp_path, "fresh.json", _snapshot([("w", 10.0, 1.0)]))
        monkeypatch.setattr(
            "sys.argv", ["compare_bench.py", str(fresh), str(baseline)]
        )
        assert compare_bench.main() == 0
        assert "skipping" in capsys.readouterr().out

    def test_host_mismatch_compares_speedups(self, tmp_path, monkeypatch, capsys):
        """A CI runner differing from the baseline host must not be judged
        on absolute wall seconds: speedups are compared instead."""
        baseline = _snapshot([("w", 10.0, 1.0)])
        baseline["host"] = {"cpu_count": 1, "platform": "baseline-box"}
        baseline["benchmarks"][0]["speedup"] = 3.0
        # Same speedup but 4x slower wall clock: passes on a foreign host...
        fresh = _snapshot([("w", 10.0, 4.0)])
        fresh["host"] = {"cpu_count": 8, "platform": "ci-runner"}
        fresh["benchmarks"][0]["speedup"] = 2.9
        base_path = _write(tmp_path, "base.json", baseline)
        fresh_path = _write(tmp_path, "fresh.json", fresh)
        monkeypatch.setattr("sys.argv", ["compare_bench.py", str(fresh_path), str(base_path)])
        assert compare_bench.main() == 0
        assert "speedup" in capsys.readouterr().out
        # ...but a collapsed speedup still fails there.
        fresh["benchmarks"][0]["speedup"] = 1.2
        fresh_path = _write(tmp_path, "fresh2.json", fresh)
        monkeypatch.setattr("sys.argv", ["compare_bench.py", str(fresh_path), str(base_path)])
        assert compare_bench.main() == 1
