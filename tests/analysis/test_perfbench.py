"""Tests for the persistent performance benchmark harness."""

from __future__ import annotations

import json

import pytest

from repro.analysis import perfbench
from repro.analysis.perfbench import (
    BenchTiming,
    dense_trace,
    equivalence_report,
    fastpath_mode,
    render_table,
    write_bench_json,
)
from repro.net.emulator import FASTPATH_ENV, fastpath_enabled


class TestFastpathMode:
    def test_toggles_and_restores(self, monkeypatch):
        monkeypatch.delenv(FASTPATH_ENV, raising=False)
        assert fastpath_enabled()
        with fastpath_mode(False):
            assert not fastpath_enabled()
            with fastpath_mode(True):
                assert fastpath_enabled()
            assert not fastpath_enabled()
        assert fastpath_enabled()

    def test_restores_explicit_previous_value(self, monkeypatch):
        monkeypatch.setenv(FASTPATH_ENV, "0")
        with fastpath_mode(True):
            assert fastpath_enabled()
        assert not fastpath_enabled()


class TestDenseTrace:
    def test_breakpoint_density(self):
        trace = dense_trace(2.0, granularity_s=0.01)
        assert len(trace.times) == 200
        assert all(rate > 0 for rate in trace.rates_bps)

    def test_minimum_two_breakpoints(self):
        assert len(dense_trace(0.0001).times) == 2


class TestEquivalenceReport:
    def test_all_checks_pass(self):
        checks = equivalence_report(session_duration_s=0.5)
        assert checks, "report must contain named checks"
        failed = [name for name, ok in checks.items() if not ok]
        assert not failed

    def test_telemetry_stream_gates_present(self):
        """PR 10 extends the gates to the telemetry stream, same discipline
        as the report-parity checks: scalar == fast == repeat, byte-wise."""
        checks = equivalence_report(session_duration_s=0.5)
        for name in (
            "telemetry_stream_identical",
            "telemetry_stream_identical_fec",
            "telemetry_stream_identical_closed_loop",
        ):
            assert name in checks
            assert checks[name] is True


class TestBenchTiming:
    def test_speedup(self):
        timing = BenchTiming(name="x", before_s=2.0, after_s=0.5)
        assert timing.speedup == pytest.approx(4.0)

    def test_zero_after_is_infinite(self):
        assert BenchTiming(name="x", before_s=1.0, after_s=0.0).speedup == float("inf")

    def test_jsonable_rounding(self):
        payload = BenchTiming(name="x", before_s=1.23456789, after_s=1.0).to_jsonable()
        assert payload["before_s"] == pytest.approx(1.234568)
        assert payload["speedup"] == pytest.approx(1.235, abs=1e-3)

    def test_throughput_from_units(self):
        timing = BenchTiming(name="x", before_s=2.0, after_s=0.5, units=10.0)
        assert timing.throughput == pytest.approx(20.0)
        assert BenchTiming(name="x", before_s=1.0, after_s=0.5).throughput == 0.0
        assert timing.to_jsonable()["throughput"] == pytest.approx(20.0)


class TestTimeWorkload:
    def test_reports_median_and_samples(self):
        values = iter([0.0, 0.5, 0.5, 0.9, 1.0, 1.1])
        original = perfbench.wallclock.perf_counter
        perfbench.wallclock.perf_counter = lambda: next(values)
        try:
            median, samples = perfbench._time_workload(lambda: None, repeats=3)
        finally:
            perfbench.wallclock.perf_counter = original
        # Deltas are 0.5, 0.4, 0.1 -> median 0.4, samples in run order.
        assert median == pytest.approx(0.4)
        assert samples == pytest.approx([0.5, 0.4, 0.1])


class TestPayloadWriting:
    def _payload(self):
        return {
            "schema": perfbench.BENCH_SCHEMA,
            "mode": "smoke",
            "equivalence": {"check": True},
            "benchmarks": [
                BenchTiming(name="w", before_s=3.0, after_s=1.0).to_jsonable()
            ],
            "targets": {"w": 2.0},
            "targets_met": {"w": True},
        }

    def test_write_is_atomic_and_parsable(self, tmp_path):
        destination = tmp_path / "BENCH_sweep.json"
        written = write_bench_json(self._payload(), destination)
        assert written == destination
        data = json.loads(destination.read_text())
        assert data["schema"] == perfbench.BENCH_SCHEMA
        assert not list(tmp_path.glob("*.tmp"))

    def test_render_table_mentions_targets(self):
        table = render_table(self._payload())
        assert "w" in table
        assert "met" in table
        assert "equivalence checks: all passed" in table
