"""Tests for the experiment runners and reporting (small, fast configurations)."""

import pytest

from repro.analysis import (
    CLOSED_LOOP_CONTROLLERS,
    closed_loop_grid,
    format_figure3,
    format_figure5,
    format_figure9,
    format_mapping,
    headline_subtraction,
    run_ablation_patch_size,
    run_ablation_token_pruning,
    run_closed_loop_session,
    run_end_to_end_turn,
    run_figure10_qp_allocation,
    run_figure2_redundancy,
    run_figure3_latency,
    run_figure4_context_dependence,
    run_figure5_correlation_maps,
    run_section1_latency_budget,
    run_section21_jitter_invariance,
    run_section21_throughput_asymmetry,
    run_token_streaming_feasibility,
    transmission_latency_table,
)
from repro.analysis.latency import BudgetScenario, budget_for_scenario
from repro.net.control import preset_controller_spec


class TestFigureRunners:
    def test_figure2_redundancy_shape(self):
        result = run_figure2_redundancy(capture_fps=30.0, duration_s=0.5, height=120, width=160)
        assert 0.9 <= result["frame_redundancy"] <= 1.0
        assert result["perceived_throughput_bps"] < result["sender_throughput_bps"]

    def test_figure3_rows_cover_grid(self):
        rows = run_figure3_latency(
            bitrates_bps=(200_000, 2_000_000), loss_rates=(0.0, 0.05), duration_s=4.0
        )
        assert len(rows) == 4
        assert all(row.mean_latency_ms > 0 for row in rows)
        assert "loss" in format_figure3(rows)

    def test_figure4_low_bitrate_breaks_detail_question(self):
        # The low-bitrate operating point is scaled down with the reduced test
        # resolution so it sits in the same perceptual regime as 200 Kbps at
        # the full 360x640 resolution.
        result = run_figure4_context_dependence(height=180, width=320, low_bitrate_bps=60_000.0)
        assert result["high_bitrate"]["detail_question_correct"]
        assert not result["low_bitrate"]["detail_question_correct"]
        assert result["low_bitrate"]["coarse_question_correct"]

    def test_figure5_targets_win(self):
        cases = run_figure5_correlation_maps(height=160, width=288)
        assert len(cases) == 3
        assert all(case.target_is_most_relevant for case in cases)
        assert "→" in format_figure5(cases)

    def test_figure10_allocation_direction(self):
        result = run_figure10_qp_allocation(target_bitrate_bps=200_000.0, height=176, width=320)
        assert (
            result["context_aware"]["important_region_bits"]
            > result["baseline"]["important_region_bits"]
        )
        assert (
            result["context_aware"]["irrelevant_region_bits"]
            < result["baseline"]["irrelevant_region_bits"]
        )


class TestSectionRunners:
    def test_section21_jitter(self):
        result = run_section21_jitter_invariance()
        assert result["mllm_input_identical"] == 1.0
        assert result["jitter_buffer_added_latency_ms"] > 0

    def test_section21_asymmetry(self):
        result = run_section21_throughput_asymmetry()
        assert result["uplink_to_downlink_ratio"] > 10

    def test_section1_budget(self):
        result = run_section1_latency_budget()
        assert result["headline"]["transmission_budget_ms"] == pytest.approx(68.0)
        assert all("total_ms" in value for key, value in result.items() if key != "headline")

    def test_end_to_end_turn_fields(self):
        result = run_end_to_end_turn(height=160, width=288, target_bitrate_bps=250_000.0)
        assert result["inference_ms"] > 0
        assert result["response_latency_ms"] >= result["inference_ms"]


class TestAblations:
    def test_patch_size_compute_monotone(self):
        result = run_ablation_patch_size(patch_sizes=(16, 64), height=160, width=288)
        assert result[16] > result[64]

    def test_token_pruning_keeps_important_region(self):
        result = run_ablation_token_pruning(keep_ratios=(0.3,), height=176, width=320)
        assert result[0.3]["important_region_kept"] > 0.5

    def test_token_streaming_bitrate_gap(self):
        result = run_token_streaming_feasibility(loss_fractions=(0.0, 0.828), height=176, width=320)
        assert result["bitrates"]["continuous_bps"] > result["bitrates"]["discrete_bps"]
        assert 0.0 <= result["recovery_quality"][0.828] <= 1.0


class TestLatencyHelpers:
    def test_headline_subtraction(self):
        result = headline_subtraction()
        assert result["transmission_budget_ms"] == pytest.approx(68.0)

    def test_budget_for_scenario_overload_is_worse(self):
        calm = budget_for_scenario(BudgetScenario(name="calm", bitrate_bps=400_000, loss_rate=0.0))
        overload = budget_for_scenario(
            BudgetScenario(name="overload", bitrate_bps=14_000_000, loss_rate=0.05)
        )
        assert overload.total_ms > calm.total_ms

    def test_transmission_latency_table_monotone(self):
        table = transmission_latency_table(
            bitrates_bps=(200_000, 4_000_000, 12_000_000), loss_rates=(0.05,)
        )
        assert table[(200_000.0, 0.05)] < table[(4_000_000.0, 0.05)] < table[(12_000_000.0, 0.05)]

    def test_format_mapping_nested(self):
        text = format_mapping("title", {"a": 1.0, "nested": {"b": 2.0}})
        assert "title" in text and "nested" in text


class TestClosedLoopExperiment:
    def test_runner_result_is_jsonable_and_closed_loop(self):
        import json

        result = run_closed_loop_session(duration_s=2.0)
        json.dumps(result)  # must not raise: sweep cells persist this verbatim
        assert result["reports_received"] > 0
        assert result["actions_applied"] == result["reports_received"] + 1
        assert result["frames_delivered"] > 0
        assert result["controller"]["kind"] == "closed_loop"
        assert 0 < result["delivered_rate_bps"] <= result["offered_rate_bps"] * 1.01

    def test_action_digest_is_deterministic(self):
        first = run_closed_loop_session(duration_s=1.5)
        second = run_closed_loop_session(duration_s=1.5)
        assert first["action_digest"] == second["action_digest"]

    def test_controller_spec_changes_the_digest(self):
        gcc = run_closed_loop_session(duration_s=1.5)
        fixed = run_closed_loop_session(
            controller={"kind": "fixed", "bitrate_bps": 2_000_000.0}, duration_s=1.5
        )
        assert gcc["action_digest"] != fixed["action_digest"]
        assert fixed["controller"]["kind"] == "fixed"

    def test_grid_crosses_corpus_and_controllers(self):
        grid = closed_loop_grid(families=["congestion_sawtooth"], seeds=(0,))
        assert grid.experiments == ("closed_loop_session",)
        assert len(grid.scenarios) == 2 * len(CLOSED_LOOP_CONTROLLERS)
        assert grid.cell_count == len(grid.scenarios)
        names = {scenario.name for scenario in grid.scenarios}
        assert "sawtooth-0+gcc" in names and "sawtooth-0+fixed" in names
        for scenario in grid.scenarios:
            assert "controller" in scenario.overrides
            # Round-trips through JSON (the distributed dispatcher wire format).
            rebuilt = type(scenario).from_jsonable(scenario.to_jsonable())
            assert rebuilt == scenario

    def test_closed_loop_cells_sweep_and_cache(self, tmp_path):
        from repro.analysis import Scenario, SweepGrid, SweepRunner

        grid = SweepGrid(
            experiments=("closed_loop_session",),
            scenarios=(
                Scenario(
                    name="cl-smoke",
                    loss_model={"kind": "bernoulli", "loss_rate": 0.02},
                    overrides={
                        "controller": preset_controller_spec("aimd"),
                        "duration_s": 1.5,
                    },
                ),
            ),
            seeds=(0,),
        )
        runner = SweepRunner(results_dir=tmp_path, processes=1)
        first = runner.run(grid)
        assert first.executed == 1 and not first.failed_cells
        result = first.cells[0].result
        assert result["reports_received"] > 0
        assert result["controller"]["kind"] == "closed_loop"
        second = runner.run(grid)
        assert second.cached == 1 and second.executed == 0
        assert second.cells[0].result == result
