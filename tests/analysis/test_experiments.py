"""Tests for the experiment runners and reporting (small, fast configurations)."""

import pytest

from repro.analysis import (
    format_figure3,
    format_figure5,
    format_figure9,
    format_mapping,
    headline_subtraction,
    run_ablation_patch_size,
    run_ablation_token_pruning,
    run_end_to_end_turn,
    run_figure10_qp_allocation,
    run_figure2_redundancy,
    run_figure3_latency,
    run_figure4_context_dependence,
    run_figure5_correlation_maps,
    run_section1_latency_budget,
    run_section21_jitter_invariance,
    run_section21_throughput_asymmetry,
    run_token_streaming_feasibility,
    transmission_latency_table,
)
from repro.analysis.latency import BudgetScenario, budget_for_scenario


class TestFigureRunners:
    def test_figure2_redundancy_shape(self):
        result = run_figure2_redundancy(capture_fps=30.0, duration_s=0.5, height=120, width=160)
        assert 0.9 <= result["frame_redundancy"] <= 1.0
        assert result["perceived_throughput_bps"] < result["sender_throughput_bps"]

    def test_figure3_rows_cover_grid(self):
        rows = run_figure3_latency(
            bitrates_bps=(200_000, 2_000_000), loss_rates=(0.0, 0.05), duration_s=4.0
        )
        assert len(rows) == 4
        assert all(row.mean_latency_ms > 0 for row in rows)
        assert "loss" in format_figure3(rows)

    def test_figure4_low_bitrate_breaks_detail_question(self):
        # The low-bitrate operating point is scaled down with the reduced test
        # resolution so it sits in the same perceptual regime as 200 Kbps at
        # the full 360x640 resolution.
        result = run_figure4_context_dependence(height=180, width=320, low_bitrate_bps=60_000.0)
        assert result["high_bitrate"]["detail_question_correct"]
        assert not result["low_bitrate"]["detail_question_correct"]
        assert result["low_bitrate"]["coarse_question_correct"]

    def test_figure5_targets_win(self):
        cases = run_figure5_correlation_maps(height=160, width=288)
        assert len(cases) == 3
        assert all(case.target_is_most_relevant for case in cases)
        assert "→" in format_figure5(cases)

    def test_figure10_allocation_direction(self):
        result = run_figure10_qp_allocation(target_bitrate_bps=200_000.0, height=176, width=320)
        assert (
            result["context_aware"]["important_region_bits"]
            > result["baseline"]["important_region_bits"]
        )
        assert (
            result["context_aware"]["irrelevant_region_bits"]
            < result["baseline"]["irrelevant_region_bits"]
        )


class TestSectionRunners:
    def test_section21_jitter(self):
        result = run_section21_jitter_invariance()
        assert result["mllm_input_identical"] == 1.0
        assert result["jitter_buffer_added_latency_ms"] > 0

    def test_section21_asymmetry(self):
        result = run_section21_throughput_asymmetry()
        assert result["uplink_to_downlink_ratio"] > 10

    def test_section1_budget(self):
        result = run_section1_latency_budget()
        assert result["headline"]["transmission_budget_ms"] == pytest.approx(68.0)
        assert all("total_ms" in value for key, value in result.items() if key != "headline")

    def test_end_to_end_turn_fields(self):
        result = run_end_to_end_turn(height=160, width=288, target_bitrate_bps=250_000.0)
        assert result["inference_ms"] > 0
        assert result["response_latency_ms"] >= result["inference_ms"]


class TestAblations:
    def test_patch_size_compute_monotone(self):
        result = run_ablation_patch_size(patch_sizes=(16, 64), height=160, width=288)
        assert result[16] > result[64]

    def test_token_pruning_keeps_important_region(self):
        result = run_ablation_token_pruning(keep_ratios=(0.3,), height=176, width=320)
        assert result[0.3]["important_region_kept"] > 0.5

    def test_token_streaming_bitrate_gap(self):
        result = run_token_streaming_feasibility(loss_fractions=(0.0, 0.828), height=176, width=320)
        assert result["bitrates"]["continuous_bps"] > result["bitrates"]["discrete_bps"]
        assert 0.0 <= result["recovery_quality"][0.828] <= 1.0


class TestLatencyHelpers:
    def test_headline_subtraction(self):
        result = headline_subtraction()
        assert result["transmission_budget_ms"] == pytest.approx(68.0)

    def test_budget_for_scenario_overload_is_worse(self):
        calm = budget_for_scenario(BudgetScenario(name="calm", bitrate_bps=400_000, loss_rate=0.0))
        overload = budget_for_scenario(
            BudgetScenario(name="overload", bitrate_bps=14_000_000, loss_rate=0.05)
        )
        assert overload.total_ms > calm.total_ms

    def test_transmission_latency_table_monotone(self):
        table = transmission_latency_table(
            bitrates_bps=(200_000, 4_000_000, 12_000_000), loss_rates=(0.05,)
        )
        assert table[(200_000.0, 0.05)] < table[(4_000_000.0, 0.05)] < table[(12_000_000.0, 0.05)]

    def test_format_mapping_nested(self):
        text = format_mapping("title", {"a": 1.0, "nested": {"b": 2.0}})
        assert "title" in text and "nested" in text
