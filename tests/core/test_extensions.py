"""Tests for the Section 4 extensions: proactive, semantic layers, token pruning."""

import numpy as np
import pytest

from repro.core import (
    ContextAwareStreamer,
    ContextAwareTokenPruner,
    HistoryProactivePolicy,
    HybridProactivePolicy,
    LayerConfig,
    PruningConfig,
    SaliencyProactivePolicy,
    SemanticLayeredEncoder,
)
from repro.video import VideoFrame, make_park_scene, make_sports_scene, region_quality


@pytest.fixture(scope="module")
def scene():
    return make_sports_scene(3, height=176, width=320)


@pytest.fixture(scope="module")
def frame(scene):
    return scene.to_source().frame_at(0)


@pytest.fixture(scope="module")
def correlation(scene, frame):
    streamer = ContextAwareStreamer()
    fact = next(f for f in scene.facts if f.key == "score")
    return streamer.correlation_for(scene, fact.question, frame)


class TestProactivePolicies:
    def test_saliency_prefers_detailed_regions(self, scene, frame):
        policy = SaliencyProactivePolicy(patch_size=32)
        importance = policy.importance_map(frame)
        scoreboard = scene.object_by_name("scoreboard").pixel_region(scene.height, scene.width)
        court = scene.object_by_name("court").pixel_region(scene.height, scene.width)
        assert importance.region_mean(scoreboard) > importance.region_mean(court)
        assert (importance.values >= -1).all() and (importance.values <= 1).all()

    def test_history_policy_reuses_past_correlation(self, frame, correlation):
        policy = HistoryProactivePolicy(patch_size=correlation.patch_size)
        empty = policy.importance_map(frame)
        assert np.allclose(empty.values, 0.0)
        policy.observe(correlation)
        primed = policy.importance_map(frame)
        assert np.corrcoef(primed.values.ravel(), correlation.values.ravel())[0, 1] > 0.9

    def test_history_decay_prefers_recent_turns(self, frame, correlation):
        policy = HistoryProactivePolicy(patch_size=correlation.patch_size, decay=0.3)
        old = correlation
        new_values = -correlation.values
        new = type(correlation)(
            values=new_values,
            patch_size=correlation.patch_size,
            frame_shape=correlation.frame_shape,
            query="other",
            query_concepts=(),
        )
        policy.observe(old)
        policy.observe(new)
        blended = policy.importance_map(frame)
        # The most recent turn dominates the blend.
        assert np.corrcoef(blended.values.ravel(), new_values.ravel())[0, 1] > 0.5

    def test_history_rejects_mismatched_patch_size(self, correlation):
        policy = HistoryProactivePolicy(patch_size=correlation.patch_size * 2)
        with pytest.raises(ValueError):
            policy.observe(correlation)

    def test_hybrid_falls_back_to_saliency(self, frame):
        policy = HybridProactivePolicy(patch_size=32)
        importance = policy.importance_map(frame)
        saliency = SaliencyProactivePolicy(patch_size=32).importance_map(frame)
        np.testing.assert_allclose(importance.values, saliency.values)

    def test_hybrid_blends_history(self, frame, correlation):
        policy = HybridProactivePolicy(patch_size=correlation.patch_size, history_weight=0.9)
        policy.observe(correlation)
        blended = policy.importance_map(frame)
        assert np.corrcoef(blended.values.ravel(), correlation.values.ravel())[0, 1] > 0.6

    def test_hybrid_weight_validation(self):
        with pytest.raises(ValueError):
            HybridProactivePolicy(history_weight=1.5)


class TestSemanticLayers:
    def test_layer_config_validation(self):
        with pytest.raises(ValueError):
            LayerConfig(thresholds=(0.5,), layer_qps=(10.0,))
        with pytest.raises(ValueError):
            LayerConfig(thresholds=(0.1, 0.5), layer_qps=(10.0, 20.0, 30.0))

    def test_base_layer_owns_most_correlated_blocks(self, frame, correlation):
        encoder = SemanticLayeredEncoder()
        result = encoder.encode(frame.pixels, correlation)
        assert result.base_layer.latency_sensitive
        assert not result.enhancement_layers[0].latency_sensitive
        # The base layer owns the blocks with the highest correlation.
        blocks = correlation.to_block_grid(encoder.codec.config.block_size, frame.pixels.shape)
        base_mean = blocks[result.base_layer.block_mask].mean()
        rest_mean = blocks[~result.base_layer.block_mask].mean()
        assert base_mean > rest_mean

    def test_base_only_reconstruction_keeps_important_region(self, scene, frame, correlation):
        encoder = SemanticLayeredEncoder()
        result = encoder.encode(frame.pixels, correlation)
        base_only = encoder.reconstruct(result, received_layers=[0])
        everything = encoder.reconstruct(result, received_layers=[0, 1, 2])
        region = scene.object_by_name("scoreboard").pixel_region(scene.height, scene.width)
        court = scene.object_by_name("court").pixel_region(scene.height, scene.width)
        base_important = region_quality(frame.pixels, base_only, region).readable_score
        base_court = region_quality(frame.pixels, base_only, court).readable_score
        full_important = region_quality(frame.pixels, everything, region).readable_score
        full_court = region_quality(frame.pixels, everything, court).readable_score
        # The base layer alone already favours the chat-important region by a
        # wide margin (it only loses the blocks at the region boundary).
        assert base_important > base_court + 0.2
        assert base_important >= full_important - 0.25
        # The rest of the frame improves once enhancement layers arrive.
        assert full_court >= base_court

    def test_base_layer_is_cheaper_than_total(self, frame, correlation):
        encoder = SemanticLayeredEncoder()
        result = encoder.encode(frame.pixels, correlation)
        bitrates = encoder.layer_bitrates_bps(result, fps=2.0)
        assert bitrates["base"] < sum(bitrates.values())

    def test_reconstruct_validation(self, frame, correlation):
        encoder = SemanticLayeredEncoder()
        result = encoder.encode(frame.pixels, correlation)
        with pytest.raises(ValueError):
            encoder.reconstruct(result, received_layers=[])
        with pytest.raises(ValueError):
            encoder.reconstruct(result, received_layers=[9])


class TestTokenPruning:
    def test_keep_ratio_respected(self, frame, correlation):
        pruner = ContextAwareTokenPruner(PruningConfig(keep_ratio=0.25, uniform_floor_ratio=0.0))
        result = pruner.prune(frame, correlation)
        assert result.kept_ratio == pytest.approx(0.25, abs=0.05)
        assert result.kept_tokens < result.total_tokens

    def test_important_region_tokens_survive(self, scene, frame, correlation):
        pruner = ContextAwareTokenPruner(PruningConfig(keep_ratio=0.3))
        result = pruner.prune(frame, correlation)
        region = scene.object_by_name("scoreboard").pixel_region(scene.height, scene.width)
        court = scene.object_by_name("court").pixel_region(scene.height, scene.width)
        assert result.region_kept_fraction(region, pruner.config.token_patch_size) > 0.8
        assert result.region_kept_fraction(region, pruner.config.token_patch_size) > result.region_kept_fraction(
            court, pruner.config.token_patch_size
        )

    def test_pruning_reduces_inference_latency(self, frame, correlation):
        pruner = ContextAwareTokenPruner(PruningConfig(keep_ratio=0.2))
        result = pruner.prune(frame, correlation)
        assert result.latency_after_ms < result.latency_before_ms
        assert result.latency_saving_ms > 0

    def test_uniform_floor_keeps_some_background(self, frame, correlation):
        with_floor = ContextAwareTokenPruner(
            PruningConfig(keep_ratio=0.2, uniform_floor_ratio=0.2)
        ).prune(frame, correlation)
        without_floor = ContextAwareTokenPruner(
            PruningConfig(keep_ratio=0.2, uniform_floor_ratio=0.0)
        ).prune(frame, correlation)
        assert with_floor.kept_tokens > without_floor.kept_tokens

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PruningConfig(keep_ratio=0.0)
        with pytest.raises(ValueError):
            PruningConfig(uniform_floor_ratio=1.0)
        with pytest.raises(ValueError):
            PruningConfig(token_patch_size=0)
