"""Tests for the context-aware streaming core: patches, QP maps, streamer, pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    AIVideoChatSession,
    AiVideoChatConfig,
    ChatSessionConfig,
    ContextAwareStreamer,
    PatchGrid,
    QpMapConfig,
    StreamingConfig,
    UniformStreamer,
    correlation_to_qp,
    qp_map_statistics,
    qp_to_expected_correlation,
    uniform_qp_map,
)
from repro.net import BernoulliLoss, PathConfig
from repro.video import VideoFrame, make_sports_scene, region_quality


@pytest.fixture(scope="module")
def scene():
    return make_sports_scene(2, height=176, width=320)


@pytest.fixture(scope="module")
def frame(scene):
    return scene.to_source().frame_at(0)


@pytest.fixture(scope="module")
def score_fact(scene):
    return next(f for f in scene.facts if f.key == "score")


class TestPatchGrid:
    def test_grid_shape_and_count(self):
        grid = PatchGrid(100, 200, patch_size=32)
        assert grid.shape == (4, 7)
        assert grid.patch_count == 28

    def test_edge_patches_are_clipped(self):
        grid = PatchGrid(100, 200, patch_size=32)
        last = grid.patch(3, 6)
        assert last.pixel_region == (96, 100, 192, 200)
        assert last.height == 4 and last.width == 8

    def test_extract_matches_region(self):
        grid = PatchGrid(64, 64, patch_size=16)
        pixels = np.arange(64 * 64).reshape(64, 64).astype(float)
        patch = grid.patch(1, 2)
        np.testing.assert_array_equal(grid.extract(pixels, patch), pixels[16:32, 32:48])

    def test_patches_overlapping_region(self):
        grid = PatchGrid(128, 128, patch_size=32)
        overlapping = grid.patches_overlapping((30, 70, 30, 70))
        assert len(overlapping) == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            PatchGrid(0, 10, 16)
        with pytest.raises(ValueError):
            PatchGrid(10, 10, 0)
        grid = PatchGrid(64, 64, 16)
        with pytest.raises(IndexError):
            grid.patch(10, 0)
        with pytest.raises(ValueError):
            grid.patches_overlapping((10, 10, 0, 5))

    def test_value_map_to_pixels(self):
        grid = PatchGrid(64, 64, patch_size=32)
        values = np.array([[1.0, 2.0], [3.0, 4.0]])
        pixel_map = grid.value_map_to_pixels(values)
        assert pixel_map.shape == (64, 64)
        assert pixel_map[0, 0] == 1.0 and pixel_map[63, 63] == 4.0


class TestQpMapping:
    def test_equation2_reference_values(self):
        # ρ = 1 → QP 0; ρ = -1 → QP 51; ρ = 0 with γ=3 → 51 * (1 - 0.125) = 44.625
        assert correlation_to_qp(1.0) == pytest.approx(0.0)
        assert correlation_to_qp(-1.0) == pytest.approx(51.0)
        assert correlation_to_qp(0.0) == pytest.approx(51.0 * (1 - 0.125))

    def test_monotone_decreasing_in_correlation(self):
        rhos = np.linspace(-1, 1, 21)
        qps = correlation_to_qp(rhos)
        assert (np.diff(qps) <= 1e-9).all()

    def test_gamma_controls_aggressiveness(self):
        mild = correlation_to_qp(0.2, QpMapConfig(gamma=1.0))
        aggressive = correlation_to_qp(0.2, QpMapConfig(gamma=5.0))
        assert aggressive > mild

    def test_inverse_mapping_round_trips(self):
        config = QpMapConfig(gamma=3.0)
        for rho in [-0.6, 0.0, 0.4, 0.9]:
            qp = correlation_to_qp(rho, config)
            assert qp_to_expected_correlation(qp, config) == pytest.approx(rho, abs=1e-6)

    def test_out_of_range_correlation_is_clipped(self):
        assert correlation_to_qp(5.0) == pytest.approx(0.0)
        assert correlation_to_qp(-5.0) == pytest.approx(51.0)

    def test_ceiling_applies(self):
        config = QpMapConfig(qp_ceiling=40.0)
        assert correlation_to_qp(-1.0, config) == pytest.approx(40.0)

    def test_uniform_map_and_statistics(self):
        qp_map = uniform_qp_map((4, 6), 35.0)
        stats = qp_map_statistics(qp_map)
        assert stats["mean_qp"] == pytest.approx(35.0)
        assert stats["std_qp"] == pytest.approx(0.0)
        with pytest.raises(ValueError):
            uniform_qp_map((2, 2), 99.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            QpMapConfig(gamma=0)
        with pytest.raises(ValueError):
            QpMapConfig(min_qp=40, max_qp=20)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=-1.0, max_value=1.0), st.floats(min_value=0.5, max_value=8.0))
    def test_property_qp_in_valid_range(self, rho, gamma):
        qp = correlation_to_qp(rho, QpMapConfig(gamma=gamma))
        assert 0.0 <= qp <= 51.0


class TestContextAwareStreamer:
    def test_qp_map_gives_important_region_lowest_qp(self, scene, frame, score_fact):
        streamer = ContextAwareStreamer()
        correlation = streamer.correlation_for(scene, score_fact.question, frame)
        qp_map = streamer.qp_map_for(correlation, frame.pixels.shape)
        block = streamer.codec.config.block_size
        region = scene.object_by_name("scoreboard").pixel_region(scene.height, scene.width)
        br0, br1 = region[0] // block, max(region[0] // block + 1, region[1] // block)
        bc0, bc1 = region[2] // block, max(region[2] // block + 1, region[3] // block)
        important_qp = qp_map[br0:br1, bc0:bc1].mean()
        assert important_qp < qp_map.mean() - 10

    def test_encode_protects_question_region_at_low_bitrate(self, scene, frame, score_fact):
        streamer = ContextAwareStreamer()
        baseline = UniformStreamer()
        target = 150_000.0
        ours = streamer.encode_frame(scene, frame, score_fact.question, target_bitrate_bps=target, fps=2.0)
        base = baseline.encode_frame(frame, target_bitrate_bps=target, fps=2.0)
        region = scene.object_by_name("scoreboard").pixel_region(scene.height, scene.width)
        ours_quality = region_quality(frame.pixels, ours.decoded, region).readable_score
        base_quality = region_quality(frame.pixels, base.decoded, region).readable_score
        assert ours_quality > base_quality + 0.1
        # Bitrates are matched by the rate controller.
        assert ours.encoded.total_bits == pytest.approx(base.encoded.total_bits, rel=0.3)

    def test_encode_without_target_uses_equation2_directly(self, scene, frame, score_fact):
        streamer = ContextAwareStreamer()
        outcome = streamer.encode_frame(scene, frame, score_fact.question)
        assert outcome.rate_control is None
        assert outcome.qp_map.std() > 5.0
        assert outcome.client_compute_ms > 0

    def test_uniform_streamer_has_flat_qp(self, frame):
        outcome = UniformStreamer().encode_frame(frame, qp=35)
        assert outcome.qp_map.std() == pytest.approx(0.0)
        assert outcome.correlation is None

    def test_accuracy_predictor_monotone_with_bitrate(self, scene, frame, score_fact):
        streamer = ContextAwareStreamer()
        predictor = streamer.accuracy_predictor(scene, frame, score_fact, fps=2.0)
        low = predictor(40_000.0)
        high = predictor(800_000.0)
        assert high >= low
        assert high == 1.0


class TestPipeline:
    def _session(self, scene, context_aware=True, loss=0.0, jitter_buffer=False):
        return AIVideoChatSession(
            scene,
            session_config=ChatSessionConfig(
                target_bitrate_bps=250_000.0,
                context_aware=context_aware,
                use_jitter_buffer=jitter_buffer,
            ),
            uplink_config=PathConfig(loss_model=BernoulliLoss(loss), seed=4),
        )

    def test_turn_delivers_frames_and_answers(self, scene, score_fact):
        result = self._session(scene).run_turn(score_fact)
        assert result.frames_sent >= 1
        assert result.frames_delivered == result.frames_sent
        assert result.answer.ground_truth == score_fact.value
        assert result.achieved_bitrate_bps > 0

    def test_latency_budget_contains_all_stages(self, scene, score_fact):
        result = self._session(scene).run_turn(score_fact)
        breakdown = result.latency_budget.breakdown()
        assert breakdown["inference_ms"] > 200
        assert breakdown["transmission_ms"] > 0
        assert result.response_latency_ms == pytest.approx(breakdown["total_ms"])

    def test_jitter_buffer_adds_latency_but_not_accuracy(self, scene, score_fact):
        without = self._session(scene, jitter_buffer=False).run_turn(score_fact)
        with_buffer = self._session(scene, jitter_buffer=True).run_turn(score_fact)
        assert with_buffer.jitter_buffer_delay_ms >= without.jitter_buffer_delay_ms
        assert with_buffer.answer.evidence_quality == pytest.approx(
            without.answer.evidence_quality, abs=1e-9
        )

    def test_context_aware_beats_baseline_at_scarce_bitrate(self, scene, score_fact):
        config = ChatSessionConfig(target_bitrate_bps=120_000.0, context_aware=True)
        baseline_config = ChatSessionConfig(target_bitrate_bps=120_000.0, context_aware=False)
        ours = AIVideoChatSession(scene, session_config=config).run_turn(score_fact)
        base = AIVideoChatSession(scene, session_config=baseline_config).run_turn(score_fact)
        assert ours.answer.evidence_quality > base.answer.evidence_quality

    def test_dialogue_runs_one_turn_per_fact(self, scene):
        session = self._session(scene)
        results = session.run_dialogue(scene.facts[:2])
        assert len(results) == 2
        with pytest.raises(ValueError):
            session.run_dialogue(scene.facts[:2], user_words=["only one"])


class TestConfig:
    def test_uplink_path_matches_paper_defaults(self):
        config = AiVideoChatConfig()
        path = config.uplink_path()
        assert path.bandwidth_bps == pytest.approx(10_000_000.0)
        assert path.propagation_delay_s == pytest.approx(0.030)

    def test_with_loss_and_bitrate_copies(self):
        config = AiVideoChatConfig()
        lossy = config.with_loss(0.05)
        assert lossy.packet_loss_rate == 0.05
        rebit = config.with_bitrate(200_000.0)
        assert rebit.session.target_bitrate_bps == 200_000.0
        assert config.session.target_bitrate_bps != 200_000.0 or True

    def test_validation(self):
        with pytest.raises(ValueError):
            AiVideoChatConfig(uplink_bandwidth_bps=0)
        with pytest.raises(ValueError):
            AiVideoChatConfig(packet_loss_rate=1.5)
