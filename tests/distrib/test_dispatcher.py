"""Loopback integration tests for the distributed sweep dispatcher.

A real coordinator socket plus in-process workers on localhost: full-grid
equivalence with the local pool (identical persisted records), requeue of a
killed worker's cells, bounded retries ending in an error record,
fingerprint-mismatch rejection, and cache-aware scheduling (cached cells
are never dispatched).
"""

from __future__ import annotations

import json
import socket
import threading
import time
from pathlib import Path

import pytest

from repro.analysis import SweepGrid, SweepRunner, bernoulli_scenario, gilbert_elliott_scenario
from repro.analysis.sweeps import execute_cell_record
from repro.distrib import DistribTimeouts, DistributedBackend, run_worker
from repro.distrib.protocol import PROTOCOL_VERSION, MessageChannel
from repro.distrib.worker import WorkerOutcome

GRID = SweepGrid(
    experiments=("section1_latency_budget", "section21_jitter_invariance"),
    scenarios=(bernoulli_scenario(0.02), gilbert_elliott_scenario(p_good_to_bad=0.05)),
    seeds=(0, 1),
)

SMALL_GRID = SweepGrid(
    experiments=("section1_latency_budget",),
    scenarios=(bernoulli_scenario(0.02),),
    seeds=(0,),
)


def start_worker(address, **kwargs) -> tuple[threading.Thread, list[WorkerOutcome]]:
    """Run a worker session on a thread; outcome lands in the returned list."""
    kwargs.setdefault("heartbeat_interval_s", 0.1)
    kwargs.setdefault("connect_timeout_s", 10.0)
    outcomes: list[WorkerOutcome] = []
    thread = threading.Thread(
        target=lambda: outcomes.append(run_worker(connect=address, **kwargs)), daemon=True
    )
    thread.start()
    return thread, outcomes


def load_records(results_dir) -> dict[tuple, tuple]:
    """Persisted cell records keyed by coordinates, timing stripped.

    ``elapsed_s`` is wall time and necessarily differs between runs; every
    other byte of the record — including its relative path, which encodes
    the experiment, slug, seed and cache-key prefix — must match exactly.
    """
    out = {}
    for path in sorted(Path(results_dir).glob("*/*.json")):
        record = json.loads(path.read_text())
        record.pop("elapsed_s")
        key = (record["experiment"], record["scenario"]["name"], record["seed"])
        out[key] = (str(path.relative_to(results_dir)), record)
    return out


class TestFullGridEquivalence:
    def test_distributed_matches_local_pool_byte_for_byte(self, tmp_path):
        backend = DistributedBackend(listen=("127.0.0.1", 0), startup_timeout_s=30)
        workers = [start_worker(backend.address) for _ in range(2)]
        report = SweepRunner(results_dir=tmp_path / "dist", backend=backend).run(GRID)
        for thread, _ in workers:
            thread.join(timeout=10)

        assert len(report.cells) == GRID.cell_count == 8
        assert report.executed == 8 and report.failed_cells == []
        assert backend.stats.dispatched == 8 and backend.stats.completed == 8
        assert backend.stats.workers_connected == 2

        local = SweepRunner(results_dir=tmp_path / "local", processes=1).run(GRID)
        assert local.executed == 8
        distributed_records = load_records(tmp_path / "dist")
        local_records = load_records(tmp_path / "local")
        assert distributed_records == local_records

        # Both workers ended cleanly and between them executed the grid.
        outcomes = [outcomes[0] for _, outcomes in workers]
        assert all(outcome.status == "done" for outcome in outcomes)
        assert sum(outcome.completed for outcome in outcomes) == 8

    def test_in_memory_report_matches_local(self, tmp_path):
        backend = DistributedBackend(listen=("127.0.0.1", 0), startup_timeout_s=30)
        workers = [start_worker(backend.address) for _ in range(2)]
        distributed = SweepRunner(results_dir=tmp_path / "dist", backend=backend).run(GRID)
        for thread, _ in workers:
            thread.join(timeout=10)
        local = SweepRunner(results_dir=tmp_path / "local", processes=1).run(GRID)
        by_key = {cell.cache_key: cell.result for cell in local.cells}
        for cell in distributed.cells:
            assert cell.result == by_key[cell.cache_key]


class TestWorkerLoss:
    def test_killed_worker_cells_requeued(self, tmp_path):
        """A worker dying mid-sweep loses its in-flight cell to the queue;
        the surviving worker finishes the whole grid."""
        calls = {"n": 0}

        def dies_on_second_cell(payload):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise RuntimeError("simulated worker crash")
            return execute_cell_record(payload)

        backend = DistributedBackend(listen=("127.0.0.1", 0), startup_timeout_s=30)
        crasher_thread, crasher_outcomes = start_worker(
            backend.address, executor=dies_on_second_cell
        )
        healthy_thread, healthy_outcomes = start_worker(backend.address)
        report = SweepRunner(results_dir=tmp_path, backend=backend).run(GRID)
        crasher_thread.join(timeout=10)
        healthy_thread.join(timeout=10)

        assert crasher_outcomes[0].status == "crashed"
        assert healthy_outcomes[0].status == "done"
        assert backend.stats.workers_lost == 1
        assert backend.stats.requeued >= 1
        # Every cell is accounted for with a real result (the crash was in
        # the harness, not the runner, so retries succeed elsewhere).
        assert len(report.cells) == 8 and report.failed_cells == []
        local = SweepRunner(results_dir=tmp_path / "local", processes=1).run(GRID)
        assert load_records(tmp_path / "local") == {
            key: value
            for key, value in load_records(tmp_path).items()
            if key in load_records(tmp_path / "local")
        }

    def test_silent_worker_times_out_and_cell_is_rescued(self, tmp_path):
        """A worker that stops heartbeating (hung, not disconnected) trips
        the heartbeat timeout; its cell reruns on the healthy worker and the
        stale duplicate result is dropped."""
        release = threading.Event()

        def hangs(payload):
            release.wait(timeout=20)
            return execute_cell_record(payload)

        backend = DistributedBackend(
            listen=("127.0.0.1", 0),
            startup_timeout_s=30,
            timeouts=DistribTimeouts(heartbeat_interval_s=0.2, heartbeat_timeout_s=0.4),
        )
        hung_thread, hung_outcomes = start_worker(
            backend.address,
            executor=hangs,
            heartbeat_interval_s=60.0,  # never heartbeats within the timeout
        )
        runner = SweepRunner(results_dir=tmp_path, backend=backend)
        result_holder: list = []
        run_thread = threading.Thread(
            target=lambda: result_holder.append(runner.run(SMALL_GRID)), daemon=True
        )
        run_thread.start()
        # Let the hung worker own the (only) cell before a rescuer exists.
        deadline = time.monotonic() + 5.0
        while backend.stats.dispatched == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert backend.stats.dispatched == 1
        healthy_thread, _ = start_worker(backend.address)
        run_thread.join(timeout=15)
        assert result_holder, "sweep did not complete"
        report = result_holder[0]
        release.set()
        hung_thread.join(timeout=10)
        healthy_thread.join(timeout=10)

        assert backend.stats.workers_lost == 1
        assert backend.stats.requeued == 1
        assert len(report.cells) == 1 and report.failed_cells == []
        # The hung worker eventually reported its duplicate into a dead
        # connection (or found it closed) — either way it did not corrupt
        # the sweep and completed nothing coordinator-visible.
        assert hung_outcomes[0].status in ("disconnected", "done")

    def test_retries_exhausted_produce_error_record(self, tmp_path):
        """When every attempt loses its worker, the cell resolves to an
        error record instead of stalling the sweep forever."""

        def always_dies(payload):
            raise RuntimeError("boom")

        backend = DistributedBackend(
            listen=("127.0.0.1", 0), startup_timeout_s=30, max_requeues=1
        )
        first_thread, _ = start_worker(backend.address, executor=always_dies)
        runner = SweepRunner(results_dir=tmp_path, backend=backend)
        result_holder: list = []
        run_thread = threading.Thread(
            target=lambda: result_holder.append(runner.run(SMALL_GRID)), daemon=True
        )
        run_thread.start()
        first_thread.join(timeout=10)
        # Second (and last allowed) attempt also dies.
        second_thread, _ = start_worker(backend.address, executor=always_dies)
        second_thread.join(timeout=10)
        run_thread.join(timeout=15)
        assert result_holder, "sweep did not complete"
        report = result_holder[0]

        assert len(report.failed_cells) == 1
        cell = report.failed_cells[0]
        assert cell.error["type"] == "WorkerLost"
        assert "requeues" in cell.error["message"]
        assert backend.stats.failed == 1
        # The failure is persisted (every cell accounted for on disk) ...
        record = json.loads(cell.path.read_text())
        assert record["error"]["type"] == "WorkerLost" and record["result"] is None
        # ... but never served from cache: a re-run retries the cell.
        retry_backend = DistributedBackend(listen=("127.0.0.1", 0), startup_timeout_s=30)
        retry_thread, retry_outcomes = start_worker(retry_backend.address)
        retry = SweepRunner(results_dir=tmp_path, backend=retry_backend).run(SMALL_GRID)
        retry_thread.join(timeout=10)
        assert retry.cached == 0 and retry.executed == 1
        assert retry.failed_cells == [] and retry_outcomes[0].completed == 1


class TestFingerprintVerification:
    def test_mismatched_worker_rejected_by_coordinator(self, tmp_path):
        """A worker announcing a different source tree is refused work; the
        sweep completes on the matching worker."""
        backend = DistributedBackend(listen=("127.0.0.1", 0), startup_timeout_s=30)
        bad_thread, bad_outcomes = start_worker(backend.address, fingerprint="bogus-tree")
        good_thread, good_outcomes = start_worker(backend.address)
        report = SweepRunner(results_dir=tmp_path, backend=backend).run(SMALL_GRID)
        bad_thread.join(timeout=10)
        good_thread.join(timeout=10)

        assert bad_outcomes[0].status == "fingerprint_mismatch"
        assert bad_outcomes[0].completed == 0
        assert good_outcomes[0].status == "done" and good_outcomes[0].completed == 1
        assert backend.stats.workers_connected == 1
        assert report.failed_cells == []

    def test_worker_lying_about_fingerprint_rejected_server_side(self, tmp_path):
        """Even a worker that skips its own check is refused by the
        coordinator when its announced fingerprint differs."""
        backend = DistributedBackend(listen=("127.0.0.1", 0), startup_timeout_s=30)
        good_thread, _ = start_worker(backend.address)
        runner_thread = threading.Thread(
            target=lambda: SweepRunner(results_dir=tmp_path, backend=backend).run(SMALL_GRID),
            daemon=True,
        )
        runner_thread.start()

        sock = socket.create_connection(backend.address, timeout=5)
        sock.settimeout(5)
        channel = MessageChannel(sock)
        hello = channel.recv()
        assert hello["type"] == "hello" and hello["role"] == "coordinator"
        assert hello["fingerprint"]  # the coordinator advertises its tree
        channel.send(
            "hello",
            role="worker",
            protocol=PROTOCOL_VERSION,
            fingerprint="not-the-same-tree",
            worker="liar",
        )
        reply = channel.recv()
        assert reply["type"] == "reject"
        assert "fingerprint" in reply["reason"]
        channel.close()

        runner_thread.join(timeout=15)
        good_thread.join(timeout=10)
        assert backend.stats.workers_rejected == 1


class TestCacheAwareScheduling:
    def test_cached_cells_never_dispatched(self, tmp_path):
        """A fully cached grid produces zero dispatches (no worker needed)."""
        SweepRunner(results_dir=tmp_path, processes=1).run(GRID)
        backend = DistributedBackend(listen=("127.0.0.1", 0), startup_timeout_s=5)
        report = SweepRunner(results_dir=tmp_path, backend=backend).run(GRID)
        assert report.cached == 8 and report.executed == 0
        assert backend.stats.dispatched == 0

    def test_only_stale_cells_dispatched(self, tmp_path):
        """Deleting one cell file leaves exactly one cell to distribute."""
        local = SweepRunner(results_dir=tmp_path, processes=1).run(GRID)
        local.cells[0].path.unlink()
        backend = DistributedBackend(listen=("127.0.0.1", 0), startup_timeout_s=30)
        worker_thread, outcomes = start_worker(backend.address)
        report = SweepRunner(results_dir=tmp_path, backend=backend).run(GRID)
        worker_thread.join(timeout=10)
        assert report.cached == 7 and report.executed == 1
        assert backend.stats.dispatched == 1
        assert outcomes[0].completed == 1


class TestBackendContract:
    def test_requires_a_destination(self):
        with pytest.raises(ValueError, match="listen"):
            DistributedBackend()

    def test_single_use(self, tmp_path):
        backend = DistributedBackend(listen=("127.0.0.1", 0), startup_timeout_s=5)
        worker_thread, _ = start_worker(backend.address)
        SweepRunner(results_dir=tmp_path, backend=backend).run(SMALL_GRID)
        worker_thread.join(timeout=10)
        with pytest.raises(RuntimeError, match="one sweep"):
            list(backend.execute([(0, {})]))

    def test_startup_timeout_without_workers(self, tmp_path):
        backend = DistributedBackend(
            listen=("127.0.0.1", 0), startup_timeout_s=0.3, local_fallback=False
        )
        with pytest.raises(RuntimeError, match="no worker connected"):
            SweepRunner(results_dir=tmp_path, backend=backend).run(SMALL_GRID)

    def test_dial_out_to_listening_worker_agent(self, tmp_path):
        """The coordinator can also dial persistent worker agents
        (``worker --listen`` / ``--workers host:port``)."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        address = probe.getsockname()[:2]
        probe.close()

        outcomes: list[WorkerOutcome] = []
        agent = threading.Thread(
            target=lambda: outcomes.append(
                run_worker(listen=address, heartbeat_interval_s=0.1, connect_timeout_s=10)
            ),
            daemon=True,
        )
        agent.start()
        time.sleep(0.1)  # let the agent bind before the coordinator dials
        backend = DistributedBackend(
            workers=[f"{address[0]}:{address[1]}"], startup_timeout_s=30
        )
        report = SweepRunner(results_dir=tmp_path, backend=backend).run(SMALL_GRID)
        agent.join(timeout=10)
        assert report.executed == 1 and report.failed_cells == []
        assert outcomes and outcomes[0].status == "done" and outcomes[0].completed == 1

    def test_describe_mentions_address(self):
        backend = DistributedBackend(listen=("127.0.0.1", 0), startup_timeout_s=5)
        host, port = backend.address
        assert f"{host}:{port}" in backend.describe()
        backend.coordinator.close()

    def test_fully_cached_sweep_releases_connected_workers(self, tmp_path):
        """With every cell cached nothing is dispatched, yet a worker that
        already connected must be told the sweep is over, not left polling
        a zombie coordinator forever."""
        SweepRunner(results_dir=tmp_path, processes=1).run(SMALL_GRID)
        backend = DistributedBackend(listen=("127.0.0.1", 0), startup_timeout_s=5)
        worker_thread, outcomes = start_worker(backend.address)
        time.sleep(0.3)  # let the worker connect and start polling
        report = SweepRunner(results_dir=tmp_path, backend=backend).run(SMALL_GRID)
        worker_thread.join(timeout=10)
        assert not worker_thread.is_alive(), "worker left polling after a cached sweep"
        assert report.cached == 1 and backend.stats.dispatched == 0
        assert outcomes and outcomes[0].ok and outcomes[0].completed == 0

    def test_last_worker_departing_gracefully_trips_timeout(self, tmp_path):
        """A --max-cells worker that leaves with cells still pending must
        not hang the sweep forever: the no-workers window aborts it (and a
        reconnecting worker would have reset the window)."""
        backend = DistributedBackend(
            listen=("127.0.0.1", 0), startup_timeout_s=0.6, local_fallback=False
        )
        worker_thread, outcomes = start_worker(backend.address, max_cells=1)
        grid = SweepGrid(
            experiments=("section1_latency_budget", "section21_jitter_invariance"),
            scenarios=(bernoulli_scenario(0.02),),
            seeds=(0,),
        )
        with pytest.raises(RuntimeError, match="no worker connected"):
            SweepRunner(results_dir=tmp_path, backend=backend).run(grid)
        worker_thread.join(timeout=10)
        assert outcomes[0].status == "done" and outcomes[0].completed == 1
        assert backend.stats.completed == 1
        # The completed cell was streamed to disk before the abort.
        assert len(load_records(tmp_path)) == 1

    def test_backend_closed_when_run_fails_before_execute(self, tmp_path):
        """A sweep that dies before any cell is dispatched (unknown
        experiment during cache resolution) must still shut the
        eagerly-bound coordinator down, releasing port and workers."""
        backend = DistributedBackend(listen=("127.0.0.1", 0), startup_timeout_s=5)
        worker_thread, outcomes = start_worker(backend.address)
        deadline = time.monotonic() + 5.0
        while backend.stats.workers_connected == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert backend.stats.workers_connected == 1
        grid = SweepGrid(
            experiments=("no_such_experiment",),
            scenarios=(bernoulli_scenario(0.02),),
            seeds=(0,),
        )
        with pytest.raises(KeyError, match="no_such_experiment"):
            SweepRunner(results_dir=tmp_path, backend=backend).run(grid)
        worker_thread.join(timeout=10)
        assert not worker_thread.is_alive(), "worker left polling a zombie coordinator"
        assert outcomes and outcomes[0].ok and outcomes[0].completed == 0
        with pytest.raises(OSError):
            socket.create_connection(backend.address, timeout=1)
