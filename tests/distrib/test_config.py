"""Tests for the unified dispatcher timing/retry configuration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distrib.config import (
    DEFAULT_RETRY,
    DEFAULT_TIMEOUTS,
    ConfigError,
    DistribTimeouts,
    RetryPolicy,
    backoff_seed,
)


class TestDistribTimeouts:
    def test_defaults_are_self_consistent(self):
        timeouts = DistribTimeouts()
        assert timeouts == DEFAULT_TIMEOUTS
        assert (
            timeouts.heartbeat_interval_s * DistribTimeouts.MIN_HEARTBEAT_RATIO
            <= timeouts.heartbeat_timeout_s
        )

    def test_heartbeat_interval_too_close_to_timeout_rejected(self):
        with pytest.raises(ConfigError, match="too close"):
            DistribTimeouts(heartbeat_interval_s=6.0, heartbeat_timeout_s=10.0)

    def test_wait_poll_must_stay_below_liveness_timeout(self):
        with pytest.raises(ConfigError, match="wait poll"):
            DistribTimeouts(wait_poll_s=10.0, heartbeat_timeout_s=10.0)

    @pytest.mark.parametrize(
        "field", ["wait_poll_s", "heartbeat_interval_s", "connect_timeout_s", "io_timeout_s"]
    )
    def test_nonpositive_values_rejected(self, field):
        with pytest.raises(ConfigError, match="positive"):
            DistribTimeouts(**{field: 0.0})

    def test_linger_may_be_zero_but_not_negative(self):
        assert DistribTimeouts(linger_s=0.0).linger_s == 0.0
        with pytest.raises(ConfigError, match="linger_s"):
            DistribTimeouts(linger_s=-0.1)

    def test_spec_round_trip(self):
        timeouts = DistribTimeouts(heartbeat_interval_s=0.5, heartbeat_timeout_s=2.0)
        assert DistribTimeouts.from_spec(timeouts.to_jsonable()) == timeouts

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown timeout field"):
            DistribTimeouts.from_spec({"hartbeat_timeout_s": 5.0})

    def test_override_revalidates(self):
        quick = DEFAULT_TIMEOUTS.override(
            heartbeat_interval_s=0.1, heartbeat_timeout_s=0.5
        )
        assert quick.heartbeat_timeout_s == 0.5
        assert quick.io_timeout_s == DEFAULT_TIMEOUTS.io_timeout_s
        # Overriding one side of the invariant alone must not slip through.
        with pytest.raises(ConfigError, match="too close"):
            DEFAULT_TIMEOUTS.override(heartbeat_timeout_s=1.0)

    def test_override_ignores_none(self):
        assert DEFAULT_TIMEOUTS.override(heartbeat_timeout_s=None) is DEFAULT_TIMEOUTS


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError, match="max_requeues"):
            RetryPolicy(max_requeues=-1)
        with pytest.raises(ConfigError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigError, match="backoff_max_s"):
            RetryPolicy(backoff_base_s=1.0, backoff_max_s=0.5)
        with pytest.raises(ConfigError, match="jitter"):
            RetryPolicy(jitter=1.0)

    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(backoff_base_s=0.2, backoff_factor=2.0, backoff_max_s=1.0, jitter=0.0)
        rng = np.random.default_rng(0)
        delays = [policy.delay_s(attempt, rng) for attempt in range(5)]
        assert delays == [0.2, 0.4, 0.8, 1.0, 1.0]

    def test_jittered_delays_replay_from_the_same_seed(self):
        policy = DEFAULT_RETRY
        first = [policy.delay_s(n, np.random.default_rng(9)) for n in range(4)][0:4]
        second = [policy.delay_s(n, np.random.default_rng(9)) for n in range(4)][0:4]
        assert first == second
        base = policy.backoff_base_s
        low, high = base * (1 - policy.jitter), base * (1 + policy.jitter)
        assert low <= first[0] <= high

    def test_spec_round_trip(self):
        policy = RetryPolicy(max_requeues=7, jitter=0.25)
        assert RetryPolicy.from_spec(policy.to_jsonable()) == policy

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown retry field"):
            RetryPolicy.from_spec({"retries": 3})


class TestBackoffSeed:
    def test_stable_and_decorrelated(self):
        assert backoff_seed("w0") == backoff_seed("w0")
        assert backoff_seed("w0") != backoff_seed("w1")
        assert 0 <= backoff_seed("any-worker") < 2**32
