"""Status stream + live monitor: loopback integration tests.

A real coordinator socket, in-process workers, and a monitor attached over
the same port: the ``status`` stream must carry schema-valid fleet
snapshots, the ``--status-json`` sink must capture the same frames, and a
read-only monitor must never count as a worker.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.distrib import DistributedBackend
from repro.distrib.coordinator import SweepCoordinator
from repro.distrib.monitor import MonitorError, attach, frames, main as monitor_main
from repro.distrib.protocol import STATUS_SCHEMA
from repro.distrib.worker import run_worker
from repro.obs import WORKER_COUNTER_FIELDS

FINGERPRINT = "test-tree"


def _executor(payload):
    time.sleep(0.02)
    if payload.get("explode"):
        return {
            "payload": payload,
            "elapsed_s": 0.02,
            "error": {"type": "BoomError", "message": "boom", "traceback": ""},
        }
    return {"payload": payload, "elapsed_s": 0.02, "error": None}


def _start_worker(address, name="w0"):
    thread = threading.Thread(
        target=run_worker,
        kwargs=dict(
            connect=address,
            fingerprint=FINGERPRINT,
            worker_name=name,
            executor=_executor,
            heartbeat_interval_s=0.1,
            connect_timeout_s=10.0,
        ),
        daemon=True,
    )
    thread.start()
    return thread


def _items(count, explode=()):
    return [
        (index, {"cache_key": f"k{index}", "explode": index in explode})
        for index in range(count)
    ]


class TestStatusAccessors:
    def test_queue_depth_and_inflight_before_any_worker(self):
        coordinator = SweepCoordinator(fingerprint=FINGERPRINT)
        try:
            coordinator.submit([(str(index), {"cache_key": f"k{index}"}) for index in range(3)])
            assert coordinator.queue_depth == 3
            assert coordinator.inflight_by_worker() == {}
        finally:
            coordinator.close()

    def test_snapshot_schema_and_shape(self):
        coordinator = SweepCoordinator(fingerprint=FINGERPRINT)
        try:
            coordinator.submit([(str(index), {"cache_key": f"k{index}"}) for index in range(2)])
            snapshot = coordinator.status_snapshot()
            assert snapshot["schema"] == STATUS_SCHEMA
            assert snapshot["total"] == 2
            assert snapshot["queue_depth"] == 2
            assert snapshot["inflight"] == 0
            assert snapshot["done"] is False
            assert snapshot["workers"] == {}
            assert snapshot["fault_classes"] == {}
            # JSON-serializable as-is: it doubles as the wire payload.
            json.dumps(snapshot)
        finally:
            coordinator.close()

    def test_snapshot_sequence_numbers_increase(self):
        coordinator = SweepCoordinator(fingerprint=FINGERPRINT)
        try:
            first = coordinator.status_snapshot()["seq"]
            second = coordinator.status_snapshot()["seq"]
            assert second == first + 1
        finally:
            coordinator.close()

    def test_invalid_status_interval_rejected(self):
        with pytest.raises(ValueError):
            SweepCoordinator(fingerprint=FINGERPRINT, status_interval_s=0.0)


class TestStatusJsonSink:
    def test_sink_captures_schema_valid_frames_and_terminal_state(self, tmp_path):
        sink = tmp_path / "status.jsonl"
        backend = DistributedBackend(
            listen=("127.0.0.1", 0),
            fingerprint=FINGERPRINT,
            startup_timeout_s=30,
            status_json=sink,
            status_interval_s=0.1,
        )
        _start_worker(backend.address)
        records = list(backend.execute(_items(6, explode={2})))
        backend.close()
        assert len(records) == 6
        lines = [json.loads(line) for line in sink.read_text().splitlines()]
        assert lines, "status sink stayed empty"
        assert all(line["schema"] == STATUS_SCHEMA for line in lines)
        final = lines[-1]
        assert final["done"] is True
        assert final["completed"] == 6
        assert final["failed"] == 1
        assert final["fault_classes"] == {"BoomError": 1}
        assert final["queue_depth"] == 0
        worker_row = final["workers"]["w0"]
        # Per-worker blocks speak the shared vocabulary, plus inflight.
        assert set(worker_row) == set(WORKER_COUNTER_FIELDS) | {"inflight"}
        assert worker_row["completed"] == 6
        assert worker_row["failed"] == 1

    def test_sequence_numbers_monotonic_in_sink(self, tmp_path):
        sink = tmp_path / "status.jsonl"
        backend = DistributedBackend(
            listen=("127.0.0.1", 0),
            fingerprint=FINGERPRINT,
            startup_timeout_s=30,
            status_json=sink,
            status_interval_s=0.05,
        )
        _start_worker(backend.address)
        list(backend.execute(_items(4)))
        backend.close()
        seqs = [json.loads(line)["seq"] for line in sink.read_text().splitlines()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)


class TestMonitorAttach:
    def test_monitor_receives_frames_and_does_not_count_as_worker(self, tmp_path):
        backend = DistributedBackend(
            listen=("127.0.0.1", 0),
            fingerprint=FINGERPRINT,
            startup_timeout_s=30,
            status_interval_s=0.05,
        )
        seen: list[dict] = []

        def watch():
            channel = attach(backend.address, connect_timeout_s=5.0, io_timeout_s=5.0)
            try:
                for frame in frames(channel):
                    seen.append(frame)
            finally:
                channel.close()

        watcher = threading.Thread(target=watch, daemon=True)
        watcher.start()
        _start_worker(backend.address)
        records = list(backend.execute(_items(5)))
        backend.close()
        watcher.join(timeout=5.0)
        assert len(records) == 5
        assert seen, "monitor never received a status frame"
        assert all(frame["schema"] == STATUS_SCHEMA for frame in seen)
        assert seen[-1]["done"] is True
        # The monitor session registered as a monitor, not a worker.
        assert backend.stats.monitors_connected == 1
        assert "monitor" not in backend.stats.per_worker

    def test_monitor_alone_does_not_prevent_no_workers_timeout(self, tmp_path):
        """An attached monitor must not read as fleet liveness: with zero
        workers the sweep still falls back to local execution."""
        backend = DistributedBackend(
            listen=("127.0.0.1", 0),
            fingerprint=FINGERPRINT,
            startup_timeout_s=0.5,
            status_interval_s=0.05,
            fallback_processes=1,
        )
        channel = attach(backend.address, connect_timeout_s=5.0, io_timeout_s=5.0)
        try:
            items = [
                (0, {"cache_key": "k0", "experiment": "section1_latency_budget"})
            ]
            # The real fallback executes through the sweep machinery; here we
            # only need the NoWorkersError path to trigger, so patch the
            # local pool out of the way.
            records = {}

            class _FakeLocal:
                def __init__(self, processes=None):
                    pass

                def execute(self, pending):
                    for position, payload in pending:
                        records[position] = payload
                        yield position, {"payload": payload, "elapsed_s": 0.0, "error": None}

                def close(self):
                    pass

            import repro.distrib.backend as backend_module

            original = backend_module.LocalPoolBackend
            backend_module.LocalPoolBackend = _FakeLocal
            try:
                out = list(backend.execute(items))
            finally:
                backend_module.LocalPoolBackend = original
            assert len(out) == 1
            assert backend.stats.fallback_cells == 1
        finally:
            channel.close()
            backend.close()

    def test_monitor_with_wrong_protocol_version_rejected(self):
        coordinator = SweepCoordinator(fingerprint=FINGERPRINT)
        address = coordinator.bind("127.0.0.1", 0)
        try:
            import socket as socket_module

            from repro.distrib.protocol import MessageChannel

            sock = socket_module.create_connection(address, timeout=5.0)
            sock.settimeout(5.0)
            channel = MessageChannel(sock)
            try:
                hello = channel.recv()
                assert hello["type"] == "hello"
                channel.send("hello", role="monitor", protocol=-1)
                reply = channel.recv()
                assert reply["type"] == "reject"
                assert "protocol version" in reply["reason"]
            finally:
                channel.close()
        finally:
            coordinator.close()

    def test_monitor_skips_fingerprint_check(self):
        """Monitors never execute cells, so any checkout may observe."""
        coordinator = SweepCoordinator(fingerprint="coordinator-tree")
        address = coordinator.bind("127.0.0.1", 0)
        try:
            channel = attach(address, connect_timeout_s=5.0, io_timeout_s=5.0)
            # The immediate attach frame proves registration completed.
            first = next(frames(channel))
            channel.close()
            assert first["schema"] == STATUS_SCHEMA
            assert coordinator.stats.monitors_connected == 1
        finally:
            coordinator.close()


class TestMonitorCli:
    def test_json_once_mode(self, tmp_path, capsys):
        backend = DistributedBackend(
            listen=("127.0.0.1", 0),
            fingerprint=FINGERPRINT,
            startup_timeout_s=30,
            status_interval_s=0.05,
        )
        host, port = backend.address
        try:
            exit_code = monitor_main(["--connect", f"{host}:{port}", "--json", "--once"])
            out = capsys.readouterr().out
            frame = json.loads(out.strip().splitlines()[-1])
            assert exit_code == 0
            assert frame["schema"] == STATUS_SCHEMA
        finally:
            backend.close()

    def test_dashboard_once_mode_renders(self, tmp_path, capsys):
        backend = DistributedBackend(
            listen=("127.0.0.1", 0),
            fingerprint=FINGERPRINT,
            startup_timeout_s=30,
            status_interval_s=0.05,
        )
        host, port = backend.address
        try:
            exit_code = monitor_main(["--connect", f"{host}:{port}", "--once"])
            out = capsys.readouterr().out
            assert exit_code == 0
            assert "fleet status" in out
            assert "queue" in out
        finally:
            backend.close()

    def test_connect_failure_exits_nonzero(self, capsys):
        exit_code = monitor_main(["--connect", "127.0.0.1:1", "--connect-timeout", "0.2"])
        assert exit_code == 2
        assert "monitor:" in capsys.readouterr().err

    def test_unknown_schema_frame_raises(self):
        class _FakeChannel:
            def __init__(self):
                self._sent = False

            def recv(self):
                if self._sent:
                    return None
                self._sent = True
                return {"type": "status", "schema": "repro-status-v999"}

        with pytest.raises(MonitorError):
            list(frames(_FakeChannel()))
