"""Tests for the length-prefixed JSON framing."""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.distrib.protocol import (
    MAX_MESSAGE_BYTES,
    FrameTooLargeError,
    MessageChannel,
    ProtocolError,
    parse_address,
    recv_message,
    send_message,
)


def pair():
    return socket.socketpair()


class TestFraming:
    def test_roundtrip(self):
        a, b = pair()
        try:
            send_message(a, {"type": "task", "task_id": "7", "payload": {"seed": 3}})
            message = recv_message(b)
            assert message == {"type": "task", "task_id": "7", "payload": {"seed": 3}}
        finally:
            a.close(), b.close()

    def test_multiple_messages_in_order(self):
        a, b = pair()
        try:
            for index in range(5):
                send_message(a, {"type": "heartbeat", "n": index})
            for index in range(5):
                assert recv_message(b) == {"type": "heartbeat", "n": index}
        finally:
            a.close(), b.close()

    def test_large_message(self):
        a, b = pair()
        try:
            payload = {"type": "result", "blob": "x" * 300_000}

            # socketpair buffers are finite: send from a thread.
            sender = threading.Thread(target=send_message, args=(a, payload))
            sender.start()
            assert recv_message(b) == payload
            sender.join()
        finally:
            a.close(), b.close()

    def test_eof_returns_none(self):
        a, b = pair()
        a.close()
        try:
            assert recv_message(b) is None
        finally:
            b.close()

    def test_eof_mid_frame_raises(self):
        a, b = pair()
        try:
            a.sendall(struct.pack(">I", 100) + b"only-some-bytes")
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_message(b)
        finally:
            b.close()

    def test_garbage_length_rejected(self):
        a, b = pair()
        try:
            a.sendall(struct.pack(">I", MAX_MESSAGE_BYTES + 1))
            with pytest.raises(ProtocolError, match="frame"):
                recv_message(b)
        finally:
            a.close(), b.close()

    def test_oversized_announced_frame_is_typed_and_reads_no_body(self):
        """The bound trips on the header alone — before any body byte is
        read, so a hostile length prefix costs no allocation."""
        a, b = pair()
        try:
            a.sendall(struct.pack(">I", 0xFFFF_FFFF))
            with pytest.raises(FrameTooLargeError, match="announced"):
                recv_message(b)
            assert issubclass(FrameTooLargeError, ProtocolError)
        finally:
            a.close(), b.close()

    def test_custom_max_bytes_bounds_recv(self):
        a, b = pair()
        try:
            send_message(a, {"type": "result", "blob": "x" * 2_000})
            with pytest.raises(FrameTooLargeError, match="limit 1024"):
                recv_message(b, max_bytes=1024)
        finally:
            a.close(), b.close()

    def test_oversized_outgoing_message_rejected_before_send(self):
        a, b = pair()
        try:
            with pytest.raises(FrameTooLargeError, match="outgoing"):
                send_message(a, {"type": "result", "blob": "x" * 2_000}, max_bytes=1024)
            # Nothing went on the wire: the peer sees a clean EOF, not junk.
            a.close()
            assert recv_message(b) is None
        finally:
            b.close()

    def test_eof_mid_header_raises(self):
        """EOF inside the 4-byte length prefix is mid-frame, not clean."""
        a, b = pair()
        try:
            a.sendall(b"\x00\x00")  # half a header
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_message(b)
        finally:
            b.close()

    def test_non_json_frame_rejected(self):
        a, b = pair()
        try:
            a.sendall(struct.pack(">I", 4) + b"{not")
            with pytest.raises(ProtocolError, match="JSON"):
                recv_message(b)
        finally:
            a.close(), b.close()

    def test_untyped_message_rejected(self):
        a, b = pair()
        try:
            body = b'{"k":1}'
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(ProtocolError, match="typed"):
                recv_message(b)
        finally:
            a.close(), b.close()


class TestMessageChannel:
    def test_send_recv_and_close(self):
        a, b = pair()
        channel_a, channel_b = MessageChannel(a), MessageChannel(b)
        channel_a.send("hello", role="worker")
        assert channel_b.recv() == {"type": "hello", "role": "worker"}
        channel_a.close()
        assert channel_b.recv() is None
        channel_b.close()
        assert channel_a.closed and channel_b.closed
        channel_a.close()  # idempotent

    def test_unknown_outgoing_type_rejected(self):
        a, b = pair()
        channel = MessageChannel(a)
        try:
            with pytest.raises(ProtocolError, match="unknown outgoing message type"):
                channel.send("mystery", x=1)
        finally:
            a.close(), b.close()

    def test_vocabulary_covers_handshake_and_session(self):
        from repro.distrib.protocol import MESSAGE_TYPES

        assert MESSAGE_TYPES == {
            "hello",
            "welcome",
            "reject",
            "next",
            "task",
            "wait",
            "done",
            "result",
            "heartbeat",
            "status",
            "bye",
        }

    def test_concurrent_senders_interleave_whole_frames(self):
        a, b = pair()
        channel = MessageChannel(a)
        received = []

        def reader():
            while True:
                message = recv_message(b)
                if message is None:
                    return
                received.append(message)

        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        threads = [
            threading.Thread(
                target=lambda tag=tag: [channel.send("heartbeat", tag=tag, i=i) for i in range(50)]
            )
            for tag in ("a", "b", "c")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        channel.close()
        reader_thread.join()
        assert len(received) == 150
        for tag in ("a", "b", "c"):
            assert [m["i"] for m in received if m["tag"] == tag] == list(range(50))
        b.close()


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("example.org:7071") == ("example.org", 7071)

    def test_bare_port_defaults_host(self):
        assert parse_address("7071") == ("127.0.0.1", 7071)

    def test_empty_host_defaults(self):
        assert parse_address(":7071") == ("127.0.0.1", 7071)

    def test_invalid_port_raises(self):
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_address("host:notaport")
