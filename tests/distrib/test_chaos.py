"""Tests for the deterministic chaos harness (repro.distrib.chaos)."""

from __future__ import annotations

import socket

import numpy as np
import pytest

from repro.analysis.sweeps import (
    SweepGrid,
    SweepRunner,
    bernoulli_scenario,
    gilbert_elliott_scenario,
)
from repro.distrib.chaos import (
    PRESET_PLANS,
    ChaosChannel,
    ChaosInjected,
    FaultPlan,
    fault_plan_from_spec,
    load_stripped_records,
    run_plan,
    sample_plans,
)
from repro.distrib.config import ConfigError
from repro.distrib.protocol import ProtocolError, recv_message


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ConfigError, match="name"):
            FaultPlan(name="", seed=0)
        with pytest.raises(ConfigError, match="seed"):
            FaultPlan(name="p", seed=-1)
        with pytest.raises(ConfigError, match="drop_prob"):
            FaultPlan(name="p", seed=0, drop_prob=1.5)
        with pytest.raises(ConfigError, match="stall_s"):
            FaultPlan(name="p", seed=0, stall_s=-0.1)
        with pytest.raises(ConfigError, match="crash_after"):
            FaultPlan(name="p", seed=0, crash_after=0)
        with pytest.raises(ConfigError, match="max_reconnects"):
            FaultPlan(name="p", seed=0, max_reconnects=-1)

    def test_spec_round_trip(self):
        plan = FaultPlan(name="p", seed=7, corrupt_prob=0.1, crash_after=3)
        assert fault_plan_from_spec(plan.to_jsonable()) == plan

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault plan field"):
            fault_plan_from_spec({"name": "p", "seed": 0, "chaos_level": 11})

    def test_presets_cover_the_ci_trio(self):
        assert {"crash", "partition", "corrupt-frame"} <= set(PRESET_PLANS)
        for name, plan in PRESET_PLANS.items():
            assert plan.name == name  # a preset names one exact schedule

    def test_sample_plans_replay_from_the_same_seed(self):
        assert sample_plans(6, seed=3) == sample_plans(6, seed=3)
        assert sample_plans(6, seed=3) != sample_plans(6, seed=4)
        assert [plan.name for plan in sample_plans(3, seed=3)] == [
            "sampled-3-0",
            "sampled-3-1",
            "sampled-3-2",
        ]


def chaos_pair(plan, worker_index=0, attempt=0):
    a, b = socket.socketpair()
    return ChaosChannel(a, plan, worker_index, attempt), b


class TestChaosChannel:
    """Unit-level fault injection over a socketpair — no coordinator."""

    def test_drop_severs_session_messages(self):
        channel, peer = chaos_pair(FaultPlan(name="p", seed=0, drop_prob=1.0))
        try:
            with pytest.raises(ChaosInjected, match="lost"):
                channel.send("next")
        finally:
            channel.close(), peer.close()

    def test_dropped_heartbeats_are_silent(self):
        channel, peer = chaos_pair(FaultPlan(name="p", seed=0, drop_prob=1.0))
        try:
            channel.send("heartbeat")  # swallowed, no exception, no bytes
            channel.close()
            assert recv_message(peer) is None  # peer saw a clean EOF only
        finally:
            peer.close()

    def test_crash_after_preempts_exactly_at_the_nth_op(self):
        channel, peer = chaos_pair(FaultPlan(name="p", seed=0, crash_after=2))
        try:
            channel.send("next")  # op 0
            channel.send("next")  # op 1
            with pytest.raises(ChaosInjected, match="crash point"):
                channel.send("next")  # op 2 — the crash point
            assert recv_message(peer)["type"] == "next"
            assert recv_message(peer)["type"] == "next"
        finally:
            channel.close(), peer.close()

    def test_corrupt_send_puts_real_bad_bytes_on_the_wire(self):
        channel, peer = chaos_pair(FaultPlan(name="p", seed=1, corrupt_prob=1.0))
        try:
            with pytest.raises(ChaosInjected, match="corrupted"):
                channel.send("result", task_id="t")
            channel.close()
            # Whatever corruption mode fired, the peer must reject the frame
            # with a typed ProtocolError — never parse it as a message.
            with pytest.raises(ProtocolError):
                recv_message(peer)
        finally:
            peer.close()

    def test_result_loss_targets_only_result_messages(self):
        plan = FaultPlan(name="p", seed=0, result_loss_prob=1.0)
        channel, peer = chaos_pair(plan)
        try:
            channel.send("next")  # not a result: untouched
            with pytest.raises(ChaosInjected, match="result lost"):
                channel.send("result", task_id="t")
        finally:
            channel.close(), peer.close()

    def test_fault_schedule_is_a_pure_function_of_coordinates(self):
        """The same (seed, worker, attempt) replays the identical fault
        sequence; a different attempt draws a different one."""
        plan = FaultPlan(name="p", seed=42, drop_prob=0.3)

        def schedule(attempt):
            channel, peer = chaos_pair(plan, attempt=attempt)
            fired = []
            try:
                for _ in range(40):
                    try:
                        channel.send("next")
                        fired.append(False)
                    except ChaosInjected:
                        fired.append(True)
            finally:
                channel.close(), peer.close()
            return fired

        first, replay = schedule(attempt=0), schedule(attempt=0)
        assert first == replay
        assert any(first)  # the plan actually fired at p=0.3 over 40 ops
        assert schedule(attempt=1) != first


# ---------------------------------------------------------------------------
# End-to-end convergence under chaos
# ---------------------------------------------------------------------------


def small_grid():
    return SweepGrid(
        experiments=("section1_latency_budget",),
        scenarios=(bernoulli_scenario(0.02), gilbert_elliott_scenario(p_good_to_bad=0.05)),
        seeds=(0, 1),
    )


@pytest.fixture(scope="module")
def fault_free_baseline(tmp_path_factory):
    results_dir = tmp_path_factory.mktemp("chaos-baseline")
    report = SweepRunner(results_dir=results_dir, processes=1).run(small_grid())
    assert not report.failed_cells
    return load_stripped_records(results_dir)


class TestRunPlan:
    @pytest.mark.parametrize("kill_seed", range(10))
    def test_kill_at_random_point_converges_byte_identically(
        self, kill_seed, fault_free_baseline, tmp_path
    ):
        """Satellite property test: preempt workers at a chaos-chosen message
        across 10 seeds; the persisted tree must match the fault-free
        baseline byte for byte (run_plan checks this plus exactly-once,
        accounting, cached re-run and thread-leak invariants)."""
        rng = np.random.default_rng(kill_seed)
        plan = FaultPlan(
            name=f"kill-{kill_seed}",
            seed=kill_seed,
            crash_after=int(rng.integers(1, 20)),
            max_reconnects=4,
        )
        outcome = run_plan(
            plan,
            small_grid(),
            fault_free_baseline,
            tmp_path / "results",
            workers=1,
            startup_timeout_s=1.0,
        )
        assert outcome.ok, outcome.summary_line()

    def test_lost_results_are_reoffered_not_recomputed(
        self, fault_free_baseline, tmp_path
    ):
        """The dispatch ledger proves elasticity: with seed 3 the worker
        loses results in transit and redials, yet executes each of the 4
        cells exactly once — every requeued dispatch is served from its
        completed-cell cache (empirically stable schedule, see chaos.py's
        determinism contract)."""
        plan = FaultPlan(name="reoffer", seed=3, result_loss_prob=0.5, max_reconnects=6)
        outcome = run_plan(
            plan,
            small_grid(),
            fault_free_baseline,
            tmp_path / "results",
            workers=1,
            startup_timeout_s=2.0,
        )
        assert outcome.ok, outcome.summary_line()
        assert outcome.executed_by_workers == 4  # one real run per cell
        assert outcome.cache_reoffers == 3
        assert outcome.dispatched == 7  # 4 first serves + 3 re-serves
        assert outcome.fallback_cells == 0

    def test_same_plan_replays_the_same_ledger(self, fault_free_baseline, tmp_path):
        plan = FaultPlan(name="replay", seed=3, result_loss_prob=0.5, max_reconnects=6)

        def ledger(tag):
            outcome = run_plan(
                plan,
                small_grid(),
                fault_free_baseline,
                tmp_path / tag,
                workers=1,
                startup_timeout_s=2.0,
            )
            assert outcome.ok, outcome.summary_line()
            return (
                outcome.dispatched,
                outcome.executed_by_workers,
                outcome.cache_reoffers,
                outcome.reconnects,
            )

        assert ledger("first") == ledger("second")

    def test_empty_fleet_degrades_to_local_fallback(self, fault_free_baseline, tmp_path):
        """With no workers at all the sweep still converges: the backend
        falls back to the local pool and every invariant holds."""
        plan = FaultPlan(name="nobody", seed=0)
        outcome = run_plan(
            plan,
            small_grid(),
            fault_free_baseline,
            tmp_path / "results",
            workers=0,
            startup_timeout_s=0.3,
        )
        assert outcome.ok, outcome.summary_line()
        assert outcome.executed_by_workers == 0
        assert outcome.fallback_cells == 4
