"""Cross-module integration tests: the full stack working together.

These tests exercise the seams between substrates that the unit tests cover
individually: context-aware encoding feeding the transport, the transport
feeding the MLLM, ABR driven by the accuracy predictor, DeViBench samples
evaluated through the full pipeline, and the public package surface.
"""

import numpy as np
import pytest

import repro
from repro.core import (
    AIVideoChatSession,
    ChatSessionConfig,
    ContextAwareStreamer,
    UniformStreamer,
)
from repro.mllm import SimulatedMLLM
from repro.net import (
    AiOrientedAbr,
    BernoulliLoss,
    GoogleCongestionControl,
    PathConfig,
    RateSample,
    ThroughputAbr,
    VideoTransportSession,
    expected_frame_latency,
)
from repro.video import VideoFrame, make_park_scene, make_sports_scene


@pytest.fixture(scope="module")
def scene():
    return make_sports_scene(5, height=176, width=320)


class TestPackageSurface:
    def test_subpackages_importable(self):
        assert repro.__version__
        for name in ("core", "net", "video", "mllm", "devibench", "analysis"):
            assert hasattr(repro, name)

    def test_public_exports_resolve(self):
        from repro.core import __all__ as core_all
        from repro.net import __all__ as net_all

        import repro.core as core
        import repro.net as net

        assert all(hasattr(core, name) for name in core_all)
        assert all(hasattr(net, name) for name in net_all)


class TestEncoderToTransport:
    def test_context_aware_frames_travel_over_lossy_uplink(self, scene):
        """Encoded frame sizes drive packetisation; all frames are recovered."""
        streamer = ContextAwareStreamer()
        fact = next(f for f in scene.facts if f.key == "score")
        source = scene.to_source()
        session = VideoTransportSession(
            uplink_config=PathConfig(loss_model=BernoulliLoss(0.05), seed=2)
        )
        sizes = []
        for index in range(3):
            frame = source.frame_at(index * 15)
            outcome = streamer.encode_frame(
                scene, frame, fact.question, target_bitrate_bps=300_000, fps=2.0
            )
            sizes.append(outcome.encoded.size_bytes)
            session.loop.schedule_at(
                index * 0.5, lambda i=index, s=outcome.encoded.size_bytes: session.send_frame(i, s)
            )
        session.run(until=4.0)
        summary = session.stats.summary()
        assert summary.delivered == 3
        # Low-bitrate frames stay close to the propagation delay even with loss.
        assert summary.mean_s < 0.15
        assert all(size > 0 for size in sizes)


class TestAbrIntegration:
    def test_ai_oriented_abr_uses_streamer_accuracy_predictor(self, scene):
        streamer = ContextAwareStreamer()
        fact = next(f for f in scene.facts if f.key == "score")
        frame = scene.to_source().frame_at(0)
        predictor = streamer.accuracy_predictor(scene, frame, fact, fps=2.0)
        policy = AiOrientedAbr(
            candidate_bitrates_bps=(50_000.0, 150_000.0, 400_000.0, 1_000_000.0),
            accuracy_target=0.9,
            accuracy_predictor=predictor,
            latency_budget_s=0.068,
            latency_predictor=lambda rate: expected_frame_latency(
                rate, fps=2.0, bandwidth_bps=10_000_000.0, loss_rate=0.02, rtt_s=0.065
            ),
        )
        decision = policy.decide(bandwidth_estimate_bps=10_000_000.0)
        traditional = ThroughputAbr().decide(bandwidth_estimate_bps=10_000_000.0)
        # The AI-oriented policy lands far below the traditional grey-region pick
        # while predicting full accuracy for the current question.
        assert decision.bitrate_bps < traditional.bitrate_bps / 4
        assert predictor(decision.bitrate_bps) == 1.0

    def test_gcc_estimate_feeds_abr(self):
        gcc = GoogleCongestionControl()
        for index in range(15):
            gcc.update(
                RateSample(
                    timestamp=index * 0.2,
                    receive_rate_bps=6_000_000.0,
                    loss_ratio=0.0,
                    one_way_delay_s=0.032,
                )
            )
        decision = ThroughputAbr().decide(bandwidth_estimate_bps=gcc.estimate_bps)
        assert decision.bitrate_bps <= gcc.estimate_bps


class TestEndToEndAccuracyShape:
    def test_context_aware_recovers_accuracy_lost_to_uniform_compression(self, scene):
        """The headline result end-to-end: same scarce bitrate, higher evidence."""
        fact = next(f for f in scene.facts if f.key == "score")
        results = {}
        for context_aware in (False, True):
            session = AIVideoChatSession(
                scene,
                session_config=ChatSessionConfig(
                    target_bitrate_bps=130_000.0, context_aware=context_aware
                ),
                uplink_config=PathConfig(seed=3),
            )
            results[context_aware] = session.run_turn(fact)
        assert results[True].answer.evidence_quality > results[False].answer.evidence_quality
        assert results[True].achieved_bitrate_bps == pytest.approx(
            results[False].achieved_bitrate_bps, rel=0.3
        )

    def test_uniform_and_context_aware_match_at_generous_bitrate(self, scene):
        """When bits are plentiful both methods saturate — no regression."""
        fact = next(f for f in scene.facts if f.key == "score")
        mllm = SimulatedMLLM(seed=2)
        frame = scene.to_source().frame_at(0)
        ours = ContextAwareStreamer().encode_frame(
            scene, frame, fact.question, target_bitrate_bps=2_000_000, fps=2.0
        )
        base = UniformStreamer().encode_frame(frame, target_bitrate_bps=2_000_000, fps=2.0)
        originals = [frame]
        ours_answer = mllm.answer_question(
            fact, scene, [VideoFrame(0, 0.0, ours.decoded)], originals, apply_frame_sampling=False
        )
        base_answer = mllm.answer_question(
            fact, scene, [VideoFrame(0, 0.0, base.decoded)], originals, apply_frame_sampling=False
        )
        assert ours_answer.knows and base_answer.knows


class TestSceneVariety:
    @pytest.mark.parametrize("builder_seed", [0, 7, 21])
    def test_pipeline_works_across_scene_seeds(self, builder_seed):
        scene = make_park_scene(builder_seed, height=160, width=288)
        fact = next(f for f in scene.facts if f.key == "ear_type")
        session = AIVideoChatSession(
            scene,
            session_config=ChatSessionConfig(target_bitrate_bps=250_000.0, context_aware=True),
        )
        result = session.run_turn(fact)
        assert result.frames_delivered >= 1
        assert 0.0 <= result.answer.evidence_quality <= 1.0
