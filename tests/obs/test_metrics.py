"""Unit tests for the deterministic metric primitives."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    METRIC_VOCAB,
    NULL_REGISTRY,
    WORKER_COUNTER_FIELDS,
    MetricError,
    MetricRegistry,
    fault_metric,
    vocab_names,
    worker_metric,
)


class TestCounter:
    def test_inc_accumulates(self):
        counter = MetricRegistry().counter("net.session.packets_sent")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        counter = MetricRegistry().counter("c")
        with pytest.raises(MetricError):
            counter.inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        gauge = MetricRegistry().gauge("fleet.queue.depth")
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3


class TestHistogram:
    def test_inclusive_upper_edges_and_overflow(self):
        histogram = MetricRegistry().histogram("h", bounds=(1.0, 2.0))
        histogram.observe(1.0)  # == edge -> first bucket (inclusive upper edge)
        histogram.observe(1.5)
        histogram.observe(9.0)  # above the last edge -> overflow bucket
        assert histogram.counts == [1, 1, 1]
        assert histogram.count == 3
        assert histogram.total == pytest.approx(11.5)

    def test_bounds_must_strictly_increase(self):
        registry = MetricRegistry()
        with pytest.raises(MetricError):
            registry.histogram("bad", bounds=(2.0, 1.0))
        with pytest.raises(MetricError):
            registry.histogram("flat", bounds=(1.0, 1.0))
        with pytest.raises(MetricError):
            registry.histogram("empty", bounds=())


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        registry = MetricRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_collision_raises(self):
        registry = MetricRegistry()
        registry.counter("x")
        with pytest.raises(MetricError):
            registry.gauge("x")

    def test_histogram_rebind_with_different_bounds_raises(self):
        registry = MetricRegistry()
        registry.histogram("h", bounds=(1.0, 2.0))
        assert registry.histogram("h", bounds=(1.0, 2.0)).counts == [0, 0, 0]
        with pytest.raises(MetricError):
            registry.histogram("h", bounds=(1.0, 3.0))

    def test_snapshot_is_name_sorted(self):
        registry = MetricRegistry()
        registry.counter("b")
        registry.counter("a")
        assert list(registry.snapshot()) == ["a", "b"]

    def test_to_jsonl_is_stable_and_parseable(self):
        registry = MetricRegistry()
        registry.counter("hits").inc(2)
        registry.histogram("lat", bounds=(0.1,)).observe(0.05)
        first = registry.to_jsonl()
        assert first == registry.to_jsonl()
        records = [json.loads(line) for line in first.splitlines()]
        assert [record["name"] for record in records] == ["hits", "lat"]
        assert records[0] == {"kind": "counter", "name": "hits", "value": 2}


class TestDisabledRegistry:
    def test_hands_out_shared_null_instrument(self):
        registry = MetricRegistry(enabled=False)
        counter = registry.counter("x")
        assert counter is registry.gauge("y")
        assert counter is registry.histogram("z", bounds=(1.0,))
        # No-ops by contract; nothing registers, nothing serializes.
        counter.inc()
        counter.set(3)
        counter.observe(1.0)
        assert registry.snapshot() == {}
        assert registry.to_jsonl() == ""

    def test_shared_null_registry_is_disabled(self):
        assert not NULL_REGISTRY.enabled
        assert NULL_REGISTRY.to_jsonl() == ""


class TestFleetVocabulary:
    def test_worker_metric_names(self):
        assert worker_metric("completed") == "fleet.worker.completed"
        assert worker_metric("inflight") == "fleet.worker.inflight"
        with pytest.raises(MetricError):
            worker_metric("nonsense")

    def test_fault_metric_names(self):
        assert fault_metric("WorkerLost") == "fleet.faults.WorkerLost"

    def test_vocab_covers_every_worker_counter_field(self):
        for field in WORKER_COUNTER_FIELDS:
            assert worker_metric(field) in METRIC_VOCAB

    def test_vocab_names_sorted(self):
        names = list(vocab_names())
        assert names == sorted(names)
        assert "net.session.frames_sent" in names
