"""Unit tests for the two-clock span recorder."""

from __future__ import annotations

import json

import pytest

from repro.obs import NULL_TRACE, Telemetry, TraceError, TraceRecorder


class TestSpans:
    def test_start_finish_records_in_finish_order(self):
        trace = TraceRecorder()
        outer = trace.start("outer", 0.0)
        inner = trace.start("inner", 1.0, detail="x")
        trace.finish(inner, 2.0)
        trace.finish(outer, 3.0)
        names = [span.name for span in trace.spans()]
        assert names == ["inner", "outer"]
        assert trace.spans()[0].parent_id == outer.span_id
        assert trace.spans()[0].attrs == {"detail": "x"}

    def test_span_ids_are_sequential(self):
        trace = TraceRecorder()
        ids = []
        for index in range(3):
            span = trace.start(f"s{index}", 0.0)
            trace.finish(span, 1.0)
            ids.append(span.span_id)
        assert ids == [0, 1, 2]

    def test_record_parents_under_open_span(self):
        trace = TraceRecorder()
        outer = trace.start("run", 0.0, clock="wall")
        trace.record("cell", 0.5, 1.5, clock="wall", disposition="cached")
        trace.finish(outer, 2.0)
        cell = trace.spans()[0]
        assert cell.parent_id == outer.span_id
        assert cell.t1 - cell.t0 == pytest.approx(1.0)

    def test_double_finish_raises(self):
        trace = TraceRecorder()
        span = trace.start("s", 0.0)
        trace.finish(span, 1.0)
        with pytest.raises(TraceError):
            trace.finish(span, 2.0)

    def test_finish_of_foreign_span_raises(self):
        trace_a, trace_b = TraceRecorder(), TraceRecorder()
        span = trace_a.start("s", 0.0)
        with pytest.raises(TraceError):
            trace_b.finish(span, 1.0)

    def test_unknown_clock_raises(self):
        trace = TraceRecorder()
        with pytest.raises(TraceError):
            trace.start("s", 0.0, clock="cpu")
        with pytest.raises(TraceError):
            trace.spans(clock="cpu")

    def test_unfinished_span_refuses_to_serialize(self):
        trace = TraceRecorder()
        span = trace.start("s", 0.0)
        with pytest.raises(TraceError):
            span.to_jsonable()

    def test_wall_span_context_manager(self):
        trace = TraceRecorder()
        with trace.wall_span("sweep.run", cells=4) as span:
            pass
        assert span.finished
        assert span.clock == "wall"
        assert span.t1 >= span.t0
        assert span.attrs == {"cells": 4}


class TestExport:
    def test_jsonl_schema_and_clock_filter(self):
        trace = TraceRecorder()
        sim = trace.start("sim-span", 0.0)
        trace.finish(sim, 1.5)
        trace.record("wall-span", 0.0, 0.1, clock="wall")
        lines = trace.to_jsonl(clock="sim").splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record == {
            "attrs": {},
            "clock": "sim",
            "dur": 1.5,
            "name": "sim-span",
            "parent": None,
            "span": 0,
            "t0": 0.0,
            "t1": 1.5,
        }
        assert len(trace.to_jsonl().splitlines()) == 2


class TestDisabledRecorder:
    def test_disabled_recorder_is_inert(self):
        trace = TraceRecorder(enabled=False)
        span = trace.start("s", 0.0)
        span.set(anything="goes")
        trace.finish(span, 1.0)
        trace.record("r", 0.0, 1.0)
        with trace.wall_span("w") as wall:
            assert wall is span  # the shared null span
        assert trace.spans() == []
        assert trace.to_jsonl() == ""

    def test_shared_null_trace_is_disabled(self):
        assert not NULL_TRACE.enabled


class TestTelemetryBundle:
    def test_sim_stream_combines_metrics_and_sim_spans(self):
        telemetry = Telemetry()
        telemetry.metrics.counter("hits").inc()
        telemetry.trace.record("sim-span", 0.0, 1.0, clock="sim")
        telemetry.trace.record("wall-span", 0.0, 1.0, clock="wall")
        stream = telemetry.sim_stream()
        assert "---" in stream
        assert "sim-span" in stream
        # Wall spans are nondeterministic by nature; the comparable stream
        # must exclude them.
        assert "wall-span" not in stream

    def test_enabled_property(self):
        from repro.obs import NULL_TELEMETRY

        assert Telemetry().enabled
        assert not NULL_TELEMETRY.enabled
