"""Tests for the block codec, rate control, GOP structure, quality and transcoding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.video import (
    BlockCodec,
    CodecConfig,
    GopConfig,
    GopDecoder,
    GopEncoder,
    average_bitrate_bps,
    encode_video,
    high_frequency_retention,
    make_sports_scene,
    mse,
    psnr,
    region_quality,
    ssim,
    transcode_to_bitrate,
)
from repro.video.rate_control import (
    achieved_bitrate_bps,
    encode_at_target_bitrate,
    encode_sequence_at_target_bitrate,
)
from repro.video.transcode import concatenate_side_by_side


@pytest.fixture(scope="module")
def scene_frame():
    return make_sports_scene(0, height=176, width=320).render(0)


@pytest.fixture(scope="module")
def codec():
    return BlockCodec()


class TestCodecConfig:
    def test_quantisation_step_follows_hevc_rule(self):
        config = CodecConfig(base_step=1.0)
        assert config.quantisation_step(4) == pytest.approx(1.0)
        assert config.quantisation_step(10) == pytest.approx(2.0)
        assert config.quantisation_step(16) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CodecConfig(block_size=0)
        with pytest.raises(ValueError):
            CodecConfig(block_size=15)
        with pytest.raises(ValueError):
            CodecConfig(base_step=0)


class TestBlockCodecRoundtrip:
    def test_low_qp_is_near_lossless(self, codec, scene_frame):
        _, decoded = codec.roundtrip(scene_frame, qp=0)
        assert psnr(scene_frame, decoded) > 50

    def test_high_qp_degrades_quality(self, codec, scene_frame):
        _, low_qp_decoded = codec.roundtrip(scene_frame, qp=10)
        _, high_qp_decoded = codec.roundtrip(scene_frame, qp=48)
        assert psnr(scene_frame, high_qp_decoded) < psnr(scene_frame, low_qp_decoded)

    def test_bits_decrease_monotonically_with_qp(self, codec, scene_frame):
        bits = [codec.encode(scene_frame, qp).total_bits for qp in [5, 15, 25, 35, 45, 51]]
        assert bits == sorted(bits, reverse=True)

    def test_decoded_shape_matches_original_even_with_padding(self, codec):
        # 50x70 is not a multiple of the 16-pixel block size.
        frame = np.random.default_rng(0).uniform(0, 255, (50, 70))
        encoded, decoded = codec.roundtrip(frame, qp=20)
        assert decoded.shape == frame.shape
        assert encoded.padded_shape == (64, 80)

    def test_decoded_values_in_range(self, codec, scene_frame):
        _, decoded = codec.roundtrip(scene_frame, qp=40)
        assert decoded.min() >= 0 and decoded.max() <= 255

    def test_rejects_non_2d_input(self, codec):
        with pytest.raises(ValueError):
            codec.encode(np.zeros((10, 10, 3)), 30)

    def test_rejects_out_of_range_qp(self, codec, scene_frame):
        with pytest.raises(ValueError):
            codec.encode(scene_frame, qp=52)
        with pytest.raises(ValueError):
            codec.encode(scene_frame, qp=-1)

    def test_size_bytes_consistent_with_bits(self, codec, scene_frame):
        encoded = codec.encode(scene_frame, 30)
        assert encoded.size_bytes == int(np.ceil(encoded.total_bits / 8))
        assert encoded.bitrate_bps(30) == pytest.approx(encoded.total_bits * 30)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=51))
    def test_property_roundtrip_error_bounded_by_step(self, qp):
        rng = np.random.default_rng(qp)
        frame = rng.uniform(0, 255, (32, 32))
        codec = BlockCodec()
        _, decoded = codec.roundtrip(frame, qp)
        # Quantisation error per coefficient is at most step/2; the spatial
        # error is bounded by step/2 times the block dimension.
        step = codec.config.quantisation_step(qp)
        assert np.max(np.abs(frame - decoded)) <= step * codec.config.block_size / 2 + 1e-6


class TestPerBlockQpMaps:
    def test_qp_map_shape_validation(self, codec, scene_frame):
        with pytest.raises(ValueError):
            codec.encode(scene_frame, np.full((3, 3), 30.0))

    def test_spatially_varying_qp_shifts_quality(self, codec, scene_frame):
        grid = codec.block_grid_shape(*scene_frame.shape)
        qp_map = np.full(grid, 45.0)
        qp_map[:, : grid[1] // 2] = 10.0  # left half high quality
        encoded = codec.encode(scene_frame, qp_map)
        decoded = codec.decode(encoded)
        half = scene_frame.shape[1] // 2
        left_psnr = psnr(scene_frame[:, :half], decoded[:, :half])
        right_psnr = psnr(scene_frame[:, half:], decoded[:, half:])
        assert left_psnr > right_psnr + 5

    def test_bits_concentrate_in_low_qp_regions(self, codec, scene_frame):
        grid = codec.block_grid_shape(*scene_frame.shape)
        qp_map = np.full(grid, 45.0)
        qp_map[:, : grid[1] // 2] = 10.0
        encoded = codec.encode(scene_frame, qp_map)
        height, width = scene_frame.shape
        left_bits = encoded.bits_in_region(0, height, 0, width // 2)
        right_bits = encoded.bits_in_region(0, height, width // 2, width)
        assert left_bits > 2 * right_bits

    def test_uniform_map_equals_scalar_qp(self, codec, scene_frame):
        grid = codec.block_grid_shape(*scene_frame.shape)
        scalar = codec.encode(scene_frame, 30)
        mapped = codec.encode(scene_frame, np.full(grid, 30.0))
        assert scalar.total_bits == pytest.approx(mapped.total_bits)


class TestRateControl:
    def test_hits_target_within_tolerance(self, codec, scene_frame):
        result = encode_at_target_bitrate(codec, scene_frame, 400_000, fps=2.0, tolerance=0.05)
        assert result.relative_error < 0.10

    def test_unreachable_target_returns_best_effort(self, codec):
        tiny = np.full((32, 32), 128.0)
        result = encode_at_target_bitrate(codec, tiny, 50_000_000, fps=30.0)
        assert result.achieved_bits < result.target_bits

    def test_respects_base_qp_map_structure(self, codec, scene_frame):
        grid = codec.block_grid_shape(*scene_frame.shape)
        base = np.full(grid, 40.0)
        base[:, : grid[1] // 3] = 15.0
        result = encode_at_target_bitrate(codec, scene_frame, 300_000, fps=2.0, base_qp_map=base)
        qp_map = result.encoded.qp_map
        assert qp_map[:, : grid[1] // 3].mean() < qp_map[:, grid[1] // 3 :].mean()

    def test_sequence_rate_control(self, codec):
        scene = make_sports_scene(0, height=96, width=160)
        frames = [scene.render(i) for i in range(3)]
        results = encode_sequence_at_target_bitrate(codec, frames, 300_000, fps=2.0)
        rate = achieved_bitrate_bps(results, fps=2.0)
        assert rate == pytest.approx(300_000, rel=0.15)

    def test_invalid_arguments(self, codec, scene_frame):
        with pytest.raises(ValueError):
            encode_at_target_bitrate(codec, scene_frame, 0, fps=2.0)
        with pytest.raises(ValueError):
            encode_at_target_bitrate(codec, scene_frame, 100_000, fps=0)


class TestGop:
    def test_p_frames_cost_fewer_bits_than_keyframes(self):
        scene = make_sports_scene(0, height=96, width=160)
        frames = [scene.render(i) for i in range(6)]
        encoder = GopEncoder(gop_config=GopConfig(keyframe_interval=6))
        encoded, _ = encoder.encode_sequence(frames, qp=30)
        keyframe_bits = encoded[0].total_bits
        p_bits = [frame.total_bits for frame in encoded[1:]]
        assert all(bits < keyframe_bits for bits in p_bits)

    def test_keyframe_interval_respected(self):
        scene = make_sports_scene(0, height=96, width=160)
        frames = [scene.render(i % scene.frame_count) for i in range(7)]
        encoder = GopEncoder(gop_config=GopConfig(keyframe_interval=3))
        encoded, _ = encoder.encode_sequence(frames, qp=30)
        assert [frame.is_keyframe for frame in encoded] == [True, False, False, True, False, False, True]

    def test_decoder_reconstructs_with_bounded_drift(self):
        scene = make_sports_scene(0, height=96, width=160)
        frames = [scene.render(i) for i in range(6)]
        encoder = GopEncoder(gop_config=GopConfig(keyframe_interval=6))
        encoded, reconstructions = encoder.encode_sequence(frames, qp=25)
        decoder = GopDecoder()
        decoded = decoder.decode_sequence(encoded)
        for recon, dec in zip(reconstructions, decoded):
            np.testing.assert_allclose(recon, dec, atol=1e-6)
        assert psnr(frames[-1], decoded[-1]) > 30

    def test_p_frame_without_reference_raises(self):
        scene = make_sports_scene(0, height=96, width=160)
        encoder = GopEncoder(gop_config=GopConfig(keyframe_interval=4))
        encoded, _ = encoder.encode_sequence([scene.render(i) for i in range(3)], qp=30)
        decoder = GopDecoder()
        with pytest.raises(ValueError):
            decoder.decode_next(encoded[1])

    def test_gop_config_validation(self):
        with pytest.raises(ValueError):
            GopConfig(keyframe_interval=0)


class TestQualityMetrics:
    def test_psnr_identity_is_infinite(self, scene_frame):
        assert psnr(scene_frame, scene_frame) == float("inf")

    def test_psnr_decreases_with_noise(self, scene_frame):
        rng = np.random.default_rng(0)
        small = scene_frame + rng.normal(0, 2, scene_frame.shape)
        large = scene_frame + rng.normal(0, 20, scene_frame.shape)
        assert psnr(scene_frame, small) > psnr(scene_frame, large)

    def test_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros((4, 4)), np.zeros((5, 5)))

    def test_ssim_bounds_and_identity(self, scene_frame):
        assert ssim(scene_frame, scene_frame) == pytest.approx(1.0)
        noisy = scene_frame + np.random.default_rng(0).normal(0, 30, scene_frame.shape)
        value = ssim(scene_frame, noisy)
        assert 0.0 < value < 1.0

    def test_high_frequency_retention_drops_with_blur(self, codec, scene_frame):
        _, decoded_mild = codec.roundtrip(scene_frame, 20)
        _, decoded_heavy = codec.roundtrip(scene_frame, 50)
        assert high_frequency_retention(scene_frame, decoded_heavy) < high_frequency_retention(
            scene_frame, decoded_mild
        )

    def test_region_quality_report(self, codec, scene_frame):
        _, decoded = codec.roundtrip(scene_frame, 40)
        report = region_quality(scene_frame, decoded, (0, 64, 0, 64))
        assert 0.0 <= report.readable_score <= 1.0
        assert report.psnr_db > 0
        with pytest.raises(ValueError):
            region_quality(scene_frame, decoded, (10, 10, 0, 64))


class TestEncodeVideoHelpers:
    def test_average_bitrate(self):
        scene = make_sports_scene(0, height=96, width=160)
        frames = [scene.render(i) for i in range(4)]
        encoded = encode_video(frames, qp=35, fps=2.0)
        rate = average_bitrate_bps(encoded, fps=2.0)
        assert rate == pytest.approx(sum(f.total_bits for f in encoded) / 2.0, rel=1e-6)
        assert average_bitrate_bps([], fps=2.0) == 0.0


class TestTranscode:
    def test_transcode_hits_target(self):
        scene = make_sports_scene(0, height=96, width=160)
        result = transcode_to_bitrate(
            scene.to_source(), 60_000, max_frames=3, frame_stride=30, rate_fps=1.0
        )
        assert result.achieved_bitrate_bps == pytest.approx(60_000, rel=0.2)
        assert len(result.frames) == 3
        assert np.isfinite(result.mean_psnr_db)

    def test_lower_bitrate_means_lower_psnr(self):
        scene = make_sports_scene(0, height=96, width=160)
        high = transcode_to_bitrate(scene.to_source(), 2_000_000, max_frames=2, frame_stride=30)
        low = transcode_to_bitrate(scene.to_source(), 100_000, max_frames=2, frame_stride=30)
        assert low.mean_psnr_db < high.mean_psnr_db

    def test_default_rate_fps_is_source_fps(self):
        # A 200 Kbps budget spread over the 30 FPS source leaves ~6.7 kbit per
        # frame, so the rendition must be visibly degraded (the DeViBench
        # preprocessing regime).
        scene = make_sports_scene(0, height=96, width=160)
        result = transcode_to_bitrate(scene.to_source(), 200_000, max_frames=2, frame_stride=30)
        assert result.mean_psnr_db < 40.0
        assert result.rate_control[0].encoded.total_bits < 20_000

    def test_invalid_stride_and_rate_fps(self):
        scene = make_sports_scene(0, height=96, width=160)
        with pytest.raises(ValueError):
            transcode_to_bitrate(scene.to_source(), 200_000, frame_stride=0)
        with pytest.raises(ValueError):
            transcode_to_bitrate(scene.to_source(), 200_000, rate_fps=0.0)

    def test_concatenate_side_by_side(self):
        left = np.zeros((10, 6))
        right = np.ones((8, 4))
        combined = concatenate_side_by_side(left, right)
        assert combined.shape == (10, 10)
        assert combined[9, 7] == pytest.approx(128.0)  # padded area
