"""Tests for frame abstractions and synthetic scenes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.video import (
    ArrayVideoSource,
    SCENE_BUILDERS,
    Scene,
    SceneFact,
    SceneObject,
    SyntheticNoiseSource,
    VideoFrame,
    build_scene_corpus,
    downsample_frame,
    make_park_scene,
    make_sports_scene,
)
from repro.video.scene import CATEGORIES, CATEGORY_TEXT_RICH


class TestVideoFrame:
    def test_basic_properties(self):
        frame = VideoFrame(0, 0.0, np.zeros((120, 160)))
        assert frame.height == 120
        assert frame.width == 160
        assert frame.resolution == (120, 160)
        assert frame.pixel_count == 120 * 160

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            VideoFrame(0, 0.0, np.zeros((120, 160, 3)))

    def test_copy_is_independent(self):
        frame = VideoFrame(0, 0.0, np.zeros((10, 10)))
        clone = frame.copy()
        clone.pixels[0, 0] = 99
        assert frame.pixels[0, 0] == 0


class TestArrayVideoSource:
    def test_iteration_and_timestamps(self):
        frames = [np.full((8, 8), i, dtype=float) for i in range(5)]
        source = ArrayVideoSource(frames, fps=10.0)
        collected = list(source)
        assert len(collected) == 5
        assert collected[3].timestamp == pytest.approx(0.3)
        assert source.duration_s == pytest.approx(0.5)

    def test_rejects_empty_and_mismatched(self):
        with pytest.raises(ValueError):
            ArrayVideoSource([], fps=30)
        with pytest.raises(ValueError):
            ArrayVideoSource([np.zeros((4, 4)), np.zeros((5, 5))])

    def test_out_of_range_index(self):
        source = ArrayVideoSource([np.zeros((4, 4))])
        with pytest.raises(IndexError):
            source.frame_at(1)

    def test_raw_bitrate(self):
        source = ArrayVideoSource([np.zeros((100, 100))], fps=30)
        assert source.raw_bitrate_bps(bits_per_pixel=8) == pytest.approx(100 * 100 * 8 * 30)


class TestSyntheticNoiseSource:
    def test_frames_are_deterministic(self):
        a = SyntheticNoiseSource(height=40, width=60, seed=3).frame_at(5)
        b = SyntheticNoiseSource(height=40, width=60, seed=3).frame_at(5)
        np.testing.assert_array_equal(a.pixels, b.pixels)

    def test_pixel_range(self):
        frame = SyntheticNoiseSource(height=40, width=60).frame_at(0)
        assert frame.pixels.min() >= 0
        assert frame.pixels.max() <= 255


class TestDownsampling:
    def test_no_change_when_under_limit(self):
        frame = VideoFrame(0, 0.0, np.zeros((50, 50)))
        assert downsample_frame(frame, max_pixels=10_000) is frame

    def test_downsamples_to_under_limit(self):
        frame = VideoFrame(0, 0.0, np.random.default_rng(0).uniform(0, 255, (400, 600)))
        reduced = downsample_frame(frame, max_pixels=60_000)
        assert reduced.pixel_count <= 60_000
        assert reduced.metadata["downsampled_by"] >= 2

    def test_preserves_mean_brightness(self):
        pixels = np.random.default_rng(1).uniform(0, 255, (300, 300))
        frame = VideoFrame(0, 0.0, pixels)
        reduced = downsample_frame(frame, max_pixels=10_000)
        assert reduced.pixels.mean() == pytest.approx(pixels.mean(), abs=2.0)

    def test_invalid_max_pixels(self):
        with pytest.raises(ValueError):
            downsample_frame(VideoFrame(0, 0.0, np.zeros((4, 4))), 0)


class TestSceneObject:
    def test_bbox_validation(self):
        with pytest.raises(ValueError):
            SceneObject("bad", ("x",), bbox=(0.9, 0.9, 0.5, 0.5))
        with pytest.raises(ValueError):
            SceneObject("bad", ("x",), bbox=(0.1, 0.1, 0.0, 0.2))

    def test_pixel_region_within_frame(self):
        obj = SceneObject("thing", ("x",), bbox=(0.5, 0.25, 0.5, 0.5))
        row0, row1, col0, col1 = obj.pixel_region(100, 200)
        assert 0 <= row0 < row1 <= 100
        assert 0 <= col0 < col1 <= 200
        assert row0 == 25 and col0 == 100

    def test_motion_moves_bbox_and_clamps(self):
        obj = SceneObject("mover", ("x",), bbox=(0.1, 0.1, 0.2, 0.2), velocity=(0.5, 0.0))
        x0 = obj.bbox_at(0.0)[0]
        x1 = obj.bbox_at(1.0)[0]
        x_far = obj.bbox_at(100.0)[0]
        assert x1 > x0
        assert x_far <= 0.8 + 1e-9


class TestSceneFactValidation:
    def test_value_must_be_in_domain(self):
        with pytest.raises(ValueError):
            SceneFact(
                object_name="a",
                key="k",
                value="missing",
                domain=("x", "y"),
                category=CATEGORY_TEXT_RICH,
                detail_scale=0.5,
                question="?",
            )

    def test_category_must_be_known(self):
        with pytest.raises(ValueError):
            SceneFact(
                object_name="a",
                key="k",
                value="x",
                domain=("x", "y"),
                category="nonsense",
                detail_scale=0.5,
                question="?",
            )

    def test_domain_needs_two_options(self):
        with pytest.raises(ValueError):
            SceneFact(
                object_name="a",
                key="k",
                value="x",
                domain=("x",),
                category=CATEGORY_TEXT_RICH,
                detail_scale=0.5,
                question="?",
            )


class TestSceneLibrary:
    @pytest.mark.parametrize("kind", sorted(SCENE_BUILDERS))
    def test_all_builders_produce_valid_scenes(self, kind):
        scene = SCENE_BUILDERS[kind](seed=1, height=90, width=160)
        assert isinstance(scene, Scene)
        assert scene.objects and scene.facts
        frame = scene.render(0)
        assert frame.shape == (90, 160)
        assert 0 <= frame.min() and frame.max() <= 255

    @pytest.mark.parametrize("kind", sorted(SCENE_BUILDERS))
    def test_facts_reference_existing_objects(self, kind):
        scene = SCENE_BUILDERS[kind](seed=2, height=90, width=160)
        names = {obj.name for obj in scene.objects}
        assert all(fact.object_name in names for fact in scene.facts)

    def test_scene_rendering_is_deterministic(self):
        a = make_sports_scene(0, height=90, width=160).render(3)
        b = make_sports_scene(0, height=90, width=160).render(3)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_change_ground_truth(self):
        values = {make_sports_scene(seed, height=90, width=160).facts[0].value for seed in range(8)}
        assert len(values) > 1

    def test_fine_detail_objects_have_more_high_frequency_energy(self):
        scene = make_sports_scene(0, height=180, width=320)
        frame = scene.render(0)
        fine = scene.object_by_name("scoreboard").pixel_region(180, 320)
        coarse = scene.object_by_name("court").pixel_region(180, 320)

        def hf_energy(region):
            r0, r1, c0, c1 = region
            patch = frame[r0:r1, c0:c1]
            spectrum = np.abs(np.fft.fft2(patch - patch.mean()))
            freq = np.sqrt(
                np.add.outer(np.fft.fftfreq(patch.shape[0]) ** 2, np.fft.fftfreq(patch.shape[1]) ** 2)
            )
            return spectrum[freq > 0.2].sum() / max(spectrum.sum(), 1e-9)

        assert hf_energy(fine) > hf_energy(coarse)

    def test_scene_video_source_interface(self):
        scene = make_park_scene(0, height=90, width=160)
        source = scene.to_source()
        assert source.frame_count() == scene.frame_count
        frame = source.frame_at(1)
        assert frame.timestamp == pytest.approx(1 / scene.fps)
        assert frame.metadata["scene"] == scene.name

    def test_moving_objects_change_between_frames(self):
        scene = make_sports_scene(0, height=90, width=160)
        first = scene.render(0)
        last = scene.render(scene.frame_count - 1)
        assert not np.array_equal(first, last)

    def test_duplicate_object_names_rejected(self):
        obj = SceneObject("dup", ("x",), bbox=(0.1, 0.1, 0.2, 0.2))
        with pytest.raises(ValueError):
            Scene("s", "d", objects=[obj, obj], facts=[], height=40, width=40)

    def test_fact_with_unknown_object_rejected(self):
        obj = SceneObject("a", ("x",), bbox=(0.1, 0.1, 0.2, 0.2))
        fact = SceneFact(
            object_name="ghost",
            key="k",
            value="x",
            domain=("x", "y"),
            category=CATEGORY_TEXT_RICH,
            detail_scale=0.5,
            question="?",
        )
        with pytest.raises(ValueError):
            Scene("s", "d", objects=[obj], facts=[fact], height=40, width=40)

    def test_object_by_name_missing_raises(self):
        scene = make_sports_scene(0, height=90, width=160)
        with pytest.raises(KeyError):
            scene.object_by_name("not-there")


class TestSceneCorpus:
    def test_corpus_size_and_kinds(self):
        corpus = build_scene_corpus(10, seed=0, height=90, width=160)
        assert len(corpus) == 10
        assert len({scene.name for scene in corpus}) == 10

    def test_corpus_covers_all_categories(self):
        corpus = build_scene_corpus(8, seed=0, height=90, width=160)
        categories = {fact.category for scene in corpus for fact in scene.facts}
        assert categories == set(CATEGORIES)

    def test_corpus_validation(self):
        with pytest.raises(ValueError):
            build_scene_corpus(0)
        with pytest.raises(ValueError):
            build_scene_corpus(3, kinds=("unknown",))

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=1000))
    def test_property_corpus_deterministic_per_seed(self, count, seed):
        first = build_scene_corpus(count, seed=seed, height=60, width=80)
        second = build_scene_corpus(count, seed=seed, height=60, width=80)
        assert [s.name for s in first] == [s.name for s in second]
        np.testing.assert_array_equal(first[0].render(0), second[0].render(0))
