"""Tests for the emulated network path."""

import numpy as np
import pytest

from repro.net.emulator import (
    BandwidthTrace,
    BernoulliLoss,
    EmulatedPath,
    GilbertElliottLoss,
    PathConfig,
)
from repro.net.events import EventLoop
from repro.net.packet import Packetizer


def _make_path(loop, deliveries, **kwargs):
    config = PathConfig(**kwargs)
    return EmulatedPath(loop, config, lambda pkt, t: deliveries.append((pkt, t)))


class TestLossModels:
    def test_bernoulli_zero_never_drops(self):
        rng = np.random.default_rng(0)
        model = BernoulliLoss(0.0)
        assert not any(model.should_drop(rng) for _ in range(1000))

    def test_bernoulli_rate_approximates_configured_probability(self):
        rng = np.random.default_rng(1)
        model = BernoulliLoss(0.2)
        drops = sum(model.should_drop(rng) for _ in range(20_000))
        assert 0.18 < drops / 20_000 < 0.22

    def test_bernoulli_rejects_invalid_rate(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.0)
        with pytest.raises(ValueError):
            BernoulliLoss(-0.1)

    def test_gilbert_elliott_steady_state_matches_empirical(self):
        rng = np.random.default_rng(2)
        model = GilbertElliottLoss(p_good_to_bad=0.05, p_bad_to_good=0.4, loss_in_bad=0.6)
        drops = sum(model.should_drop(rng) for _ in range(100_000))
        empirical = drops / 100_000
        assert abs(empirical - model.steady_state_loss) < 0.02

    def test_gilbert_elliott_produces_bursts(self):
        rng = np.random.default_rng(3)
        model = GilbertElliottLoss(p_good_to_bad=0.02, p_bad_to_good=0.2, loss_in_bad=0.9)
        outcomes = [model.should_drop(rng) for _ in range(50_000)]
        # Probability of a drop immediately following a drop should exceed the
        # marginal drop rate (burstiness).
        follows = [b for a, b in zip(outcomes, outcomes[1:]) if a]
        marginal = sum(outcomes) / len(outcomes)
        conditional = sum(follows) / max(len(follows), 1)
        assert conditional > marginal * 1.5


class TestBandwidthTrace:
    def test_rate_at_picks_latest_entry(self):
        trace = BandwidthTrace(times=[0.0, 5.0, 10.0], rates_bps=[1e6, 2e6, 3e6])
        assert trace.rate_at(0.0) == 1e6
        assert trace.rate_at(4.9) == 1e6
        assert trace.rate_at(5.0) == 2e6
        assert trace.rate_at(100.0) == 3e6

    def test_time_before_first_entry_uses_first_rate(self):
        trace = BandwidthTrace(times=[2.0], rates_bps=[5e6])
        assert trace.rate_at(0.0) == 5e6

    def test_validation(self):
        with pytest.raises(ValueError):
            BandwidthTrace(times=[], rates_bps=[])
        with pytest.raises(ValueError):
            BandwidthTrace(times=[0.0, 1.0], rates_bps=[1e6])
        with pytest.raises(ValueError):
            BandwidthTrace(times=[1.0, 0.5], rates_bps=[1e6, 1e6])
        with pytest.raises(ValueError):
            BandwidthTrace(times=[0.0], rates_bps=[0.0])


class TestPathConfigValidation:
    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            PathConfig(bandwidth_bps=0)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            PathConfig(propagation_delay_s=-0.01)

    def test_rejects_nonpositive_queue(self):
        with pytest.raises(ValueError):
            PathConfig(queue_capacity_bytes=0)


class TestEmulatedPath:
    def test_delivery_includes_propagation_and_serialization(self):
        loop = EventLoop()
        deliveries = []
        path = _make_path(
            loop, deliveries, bandwidth_bps=8_000_000, propagation_delay_s=0.030
        )
        packet = Packetizer().packetize(0, 1000, 0.0)[0]
        path.send(packet)
        loop.run_until_idle()
        assert len(deliveries) == 1
        _, arrival = deliveries[0]
        serialization = 1000 * 8 / 8_000_000
        assert arrival == pytest.approx(0.030 + serialization)

    def test_back_to_back_packets_serialize_sequentially(self):
        loop = EventLoop()
        deliveries = []
        path = _make_path(loop, deliveries, bandwidth_bps=1_000_000, propagation_delay_s=0.0)
        packets = Packetizer(mtu_bytes=1000).packetize(0, 3000, 0.0)
        for p in packets:
            path.send(p)
        loop.run_until_idle()
        arrivals = [t for _, t in deliveries]
        per_packet = 1000 * 8 / 1_000_000
        assert arrivals == pytest.approx([per_packet, 2 * per_packet, 3 * per_packet])

    def test_zero_loss_delivers_everything(self):
        loop = EventLoop()
        deliveries = []
        path = _make_path(loop, deliveries, loss_model=BernoulliLoss(0.0))
        packets = Packetizer().packetize(0, 50 * 1400, 0.0)
        for p in packets:
            path.send(p)
        loop.run_until_idle()
        assert len(deliveries) == 50
        assert path.stats.delivery_ratio == 1.0

    def test_random_loss_drops_fraction(self):
        loop = EventLoop()
        deliveries = []
        path = _make_path(
            loop, deliveries, loss_model=BernoulliLoss(0.3), seed=7, queue_capacity_bytes=10**9
        )
        packetizer = Packetizer()
        for frame in range(200):
            for p in packetizer.packetize(frame, 5 * 1400, frame * 0.01):
                path.send(p)
        loop.run_until_idle()
        ratio = len(deliveries) / 1000
        assert 0.62 < ratio < 0.78
        assert path.stats.packets_lost_random > 0

    def test_queue_overflow_drops_packets(self):
        loop = EventLoop()
        deliveries = []
        path = _make_path(
            loop,
            deliveries,
            bandwidth_bps=1_000_000,
            queue_capacity_bytes=5 * 1400,
        )
        packets = Packetizer().packetize(0, 20 * 1400, 0.0)
        accepted = [path.send(p) for p in packets]
        loop.run_until_idle()
        assert path.stats.packets_dropped_queue > 0
        assert sum(accepted) < len(packets)
        assert len(deliveries) == sum(accepted)

    def test_queue_drains_over_time(self):
        loop = EventLoop()
        deliveries = []
        path = _make_path(
            loop,
            deliveries,
            bandwidth_bps=10_000_000,
            queue_capacity_bytes=3 * 1400,
        )
        packetizer = Packetizer()
        # Send three packets every 10 ms; the queue never overflows because it
        # drains between bursts.
        for burst in range(10):
            for p in packetizer.packetize(burst, 3 * 1400, burst * 0.01):
                loop.schedule_at(burst * 0.01, lambda p=p: path.send(p))
        loop.run_until_idle()
        assert path.stats.packets_dropped_queue == 0
        assert len(deliveries) == 30

    def test_queueing_delay_reflects_backlog(self):
        loop = EventLoop()
        path = _make_path(loop, [], bandwidth_bps=1_000_000, queue_capacity_bytes=10**9)
        for p in Packetizer().packetize(0, 10 * 1400, 0.0):
            path.send(p)
        assert path.queueing_delay() == pytest.approx(10 * 1400 * 8 / 1_000_000)

    def test_jitter_adds_variable_delay(self):
        loop = EventLoop()
        deliveries = []
        path = _make_path(
            loop,
            deliveries,
            bandwidth_bps=100_000_000,
            propagation_delay_s=0.030,
            jitter_std_s=0.010,
            seed=11,
        )
        packetizer = Packetizer()
        for i in range(100):
            p = packetizer.packetize(i, 100, i * 0.01)[0]
            loop.schedule_at(i * 0.01, lambda p=p: path.send(p))
        loop.run_until_idle()
        transits = [t - p.capture_time for p, t in deliveries]
        assert np.std(transits) > 0.003

    def test_bandwidth_trace_changes_serialization(self):
        loop = EventLoop()
        deliveries = []
        trace = BandwidthTrace(times=[0.0, 1.0], rates_bps=[1_000_000, 10_000_000])
        config = PathConfig(bandwidth_bps=1_000_000, propagation_delay_s=0.0, bandwidth_trace=trace)
        path = EmulatedPath(loop, config, lambda pkt, t: deliveries.append((pkt, t)))
        packetizer = Packetizer(mtu_bytes=1000)
        early = packetizer.packetize(0, 1000, 0.0)[0]
        late = packetizer.packetize(1, 1000, 2.0)[0]
        path.send(early)
        loop.schedule_at(2.0, lambda: path.send(late))
        loop.run_until_idle()
        early_latency = deliveries[0][1] - 0.0
        late_latency = deliveries[1][1] - 2.0
        assert early_latency == pytest.approx(0.008)
        assert late_latency == pytest.approx(0.0008)
