"""Property tests for the loss models, bandwidth traces, and their specs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.net.emulator import (
    BandwidthTrace,
    BernoulliLoss,
    GilbertElliottLoss,
    bandwidth_trace_from_spec,
    bandwidth_trace_to_spec,
    expected_loss_rate,
    loss_model_from_spec,
    loss_model_to_spec,
)

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestGilbertElliottSteadyState:
    @given(
        p_good_to_bad=probabilities,
        p_bad_to_good=probabilities,
        loss_in_bad=probabilities,
        loss_in_good=probabilities,
    )
    def test_property_steady_state_in_unit_interval(
        self, p_good_to_bad, p_bad_to_good, loss_in_bad, loss_in_good
    ):
        model = GilbertElliottLoss(
            p_good_to_bad=p_good_to_bad,
            p_bad_to_good=p_bad_to_good,
            loss_in_bad=loss_in_bad,
            loss_in_good=loss_in_good,
        )
        assert 0.0 <= model.steady_state_loss <= 1.0

    @given(
        p_good_to_bad=probabilities,
        p_bad_to_good=probabilities,
        loss_in_bad=probabilities,
        loss_in_good=probabilities,
    )
    def test_property_steady_state_bounded_by_state_losses(
        self, p_good_to_bad, p_bad_to_good, loss_in_bad, loss_in_good
    ):
        model = GilbertElliottLoss(
            p_good_to_bad=p_good_to_bad,
            p_bad_to_good=p_bad_to_good,
            loss_in_bad=loss_in_bad,
            loss_in_good=loss_in_good,
        )
        low, high = sorted((loss_in_good, loss_in_bad))
        assert low - 1e-12 <= model.steady_state_loss <= high + 1e-12

    @settings(max_examples=20, deadline=None)
    @given(
        p_good_to_bad=st.floats(min_value=0.02, max_value=0.2),
        p_bad_to_good=st.floats(min_value=0.2, max_value=0.8),
        loss_in_bad=st.floats(min_value=0.1, max_value=0.9),
    )
    def test_property_steady_state_matches_empirical_frequency(
        self, p_good_to_bad, p_bad_to_good, loss_in_bad
    ):
        """The analytic long-run loss agrees with a simulated drop frequency.

        The parameter ranges keep the chain fast-mixing so 30k samples give a
        tight empirical estimate; the tolerance accounts for the burst
        correlation inflating the estimator variance.
        """
        model = GilbertElliottLoss(
            p_good_to_bad=p_good_to_bad,
            p_bad_to_good=p_bad_to_good,
            loss_in_bad=loss_in_bad,
        )
        rng = np.random.default_rng(0)
        samples = 30_000
        drops = sum(model.should_drop(rng) for _ in range(samples))
        assert abs(drops / samples - model.steady_state_loss) < 0.05


@st.composite
def bandwidth_traces(draw):
    length = draw(st.integers(min_value=1, max_value=8))
    times = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                min_size=length,
                max_size=length,
            )
        )
    )
    rates = draw(
        st.lists(
            st.floats(min_value=1.0, max_value=1e9, allow_nan=False),
            min_size=length,
            max_size=length,
        )
    )
    return BandwidthTrace(times=times, rates_bps=rates)


class TestBandwidthTraceProperties:
    @given(trace=bandwidth_traces(), time=st.floats(min_value=-10.0, max_value=200.0))
    def test_property_rate_always_positive(self, trace, time):
        assert trace.rate_at(time) > 0.0

    @given(trace=bandwidth_traces(), time=st.floats(min_value=-10.0, max_value=200.0))
    def test_property_rate_matches_piecewise_lookup(self, trace, time):
        applicable = [r for t, r in zip(trace.times, trace.rates_bps) if t <= time]
        expected = applicable[-1] if applicable else trace.rates_bps[0]
        assert trace.rate_at(time) == pytest.approx(expected)

    @given(trace=bandwidth_traces())
    def test_property_mean_rate_within_trace_range(self, trace):
        assert min(trace.rates_bps) <= trace.mean_rate_bps <= max(trace.rates_bps)

    def test_mean_rate_is_time_weighted(self):
        # 10 Mbps for 18 s, then 1 Mbps for the last 2 s of the horizon: the
        # unweighted mean of breakpoint rates (3.25 Mbps) would be wrong.
        trace = BandwidthTrace(times=[0.0, 18.0, 19.0, 20.0], rates_bps=[10e6, 1e6, 1e6, 1e6])
        assert trace.mean_rate_bps == pytest.approx((10e6 * 18 + 1e6 * 2) / 20)

    def test_mean_rate_single_entry(self):
        assert BandwidthTrace(times=[3.0], rates_bps=[5e6]).mean_rate_bps == 5e6


class TestSpecs:
    def test_bernoulli_roundtrip(self):
        model = BernoulliLoss(0.07)
        rebuilt = loss_model_from_spec(loss_model_to_spec(model))
        assert isinstance(rebuilt, BernoulliLoss)
        assert rebuilt.loss_rate == pytest.approx(0.07)

    def test_gilbert_elliott_roundtrip(self):
        model = GilbertElliottLoss(
            p_good_to_bad=0.04, p_bad_to_good=0.5, loss_in_bad=0.6, loss_in_good=0.01
        )
        rebuilt = loss_model_from_spec(loss_model_to_spec(model))
        assert isinstance(rebuilt, GilbertElliottLoss)
        assert rebuilt.steady_state_loss == pytest.approx(model.steady_state_loss)

    def test_none_spec_is_lossless(self):
        model = loss_model_from_spec(None)
        assert isinstance(model, BernoulliLoss)
        assert model.loss_rate == 0.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            loss_model_from_spec({"kind": "quantum"})

    def test_trace_roundtrip(self):
        trace = BandwidthTrace(times=[0.0, 2.0], rates_bps=[1e6, 5e6])
        rebuilt = bandwidth_trace_from_spec(bandwidth_trace_to_spec(trace))
        assert rebuilt.rate_at(1.0) == 1e6
        assert rebuilt.rate_at(3.0) == 5e6
        assert bandwidth_trace_from_spec(None) is None
        assert bandwidth_trace_to_spec(None) is None


class TestExpectedLossRate:
    def test_analytic_for_bernoulli(self):
        assert expected_loss_rate(BernoulliLoss(0.13)) == pytest.approx(0.13)

    def test_analytic_for_gilbert_elliott(self):
        model = GilbertElliottLoss(p_good_to_bad=0.05, p_bad_to_good=0.45, loss_in_bad=0.7)
        assert expected_loss_rate(model) == pytest.approx(model.steady_state_loss)

    def test_empirical_fallback_does_not_perturb_model(self):
        class EveryOther:
            def __init__(self):
                self.calls = 0

            def should_drop(self, rng):
                self.calls += 1
                return self.calls % 2 == 0

        model = EveryOther()
        rate = expected_loss_rate(model, samples=1000)
        assert rate == pytest.approx(0.5)
        assert model.calls == 0  # probing happened on a copy
