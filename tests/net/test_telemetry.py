"""Session telemetry: deterministic, mode-identical, and free when disabled.

The telemetry stream (metric JSONL + sim-clock span JSONL) must be a pure
function of the seeded simulation: bit-identical across
``REPRO_NET_FASTPATH=0/1`` and across repeated seeded runs, and attaching
— or omitting — a registry must never change the simulation itself.
"""

from __future__ import annotations

import json

import pytest

from repro.net.emulator import (
    FASTPATH_ENV,
    GilbertElliottLoss,
    PathConfig,
    fastpath_enabled,
)
from repro.net.fec import FecConfig
from repro.net.transport import TransportConfig, run_fixed_bitrate_session
from repro.obs import METRIC_VOCAB, NULL_TELEMETRY, Telemetry


def _run(seed: int, telemetry=None, fec: bool = True):
    uplink = PathConfig(
        loss_model=GilbertElliottLoss(p_good_to_bad=0.04, p_bad_to_good=0.3, loss_in_bad=0.5),
        seed=seed,
    )
    transport = TransportConfig(fec=FecConfig(group_size=5) if fec else None)
    stats = run_fixed_bitrate_session(
        4e6, 1.0, uplink_config=uplink, transport_config=transport, telemetry=telemetry
    )
    return stats


def _stream(seed: int, fec: bool = True) -> str:
    telemetry = Telemetry()
    _run(seed, telemetry=telemetry, fec=fec)
    return telemetry.sim_stream()


class TestDeterminism:
    @pytest.mark.parametrize("seed", [0, 3])
    @pytest.mark.parametrize("fec", [False, True])
    def test_stream_identical_across_fastpath_modes(self, monkeypatch, seed, fec):
        monkeypatch.setenv(FASTPATH_ENV, "0")
        assert not fastpath_enabled()
        scalar = _stream(seed, fec=fec)
        monkeypatch.setenv(FASTPATH_ENV, "1")
        assert fastpath_enabled()
        fast = _stream(seed, fec=fec)
        assert scalar == fast

    def test_stream_identical_across_repeated_seeded_runs(self):
        assert _stream(seed=7) == _stream(seed=7)

    def test_stream_differs_across_seeds(self):
        # Sanity: the gate compares something that actually varies.
        assert _stream(seed=0) != _stream(seed=1)


class TestStreamContent:
    def test_counters_match_session_stats(self):
        telemetry = Telemetry()
        stats = _run(seed=3, telemetry=telemetry)
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["net.session.frames_sent"]["value"] == len(stats.frames)
        delivered = sum(1 for frame in stats.frames if frame.complete_time is not None)
        assert snapshot["net.session.frames_delivered"]["value"] == delivered
        latency = snapshot["net.session.frame_latency_s"]
        assert latency["count"] == delivered
        assert latency["total"] == pytest.approx(
            sum(
                frame.transmission_latency
                for frame in stats.frames
                if frame.complete_time is not None
            )
        )

    def test_emitted_names_stay_inside_the_vocabulary(self):
        telemetry = Telemetry()
        _run(seed=3, telemetry=telemetry)
        for name in telemetry.metrics.snapshot():
            assert name in METRIC_VOCAB, f"{name} missing from METRIC_VOCAB"

    def test_session_span_attrs_are_mode_independent(self):
        telemetry = Telemetry()
        _run(seed=3, telemetry=telemetry)
        spans = telemetry.trace.spans(clock="sim")
        assert [span.name for span in spans] == ["net.session"]
        # block_mode/fastpath must never leak into span attrs: the stream is
        # byte-compared across modes.
        assert set(spans[0].attrs) == {"fec", "controller"}

    def test_finalize_is_idempotent(self):
        telemetry = Telemetry()
        from repro.net.transport import VideoTransportSession, drive_fixed_bitrate
        from repro.net.transport import FixedBitrateWorkload

        session = VideoTransportSession(telemetry=telemetry)
        drive_fixed_bitrate(session, FixedBitrateWorkload(bitrate_bps=2e6), 0.5)
        session.finalize_telemetry()
        once = telemetry.sim_stream()
        session.finalize_telemetry()
        assert telemetry.sim_stream() == once


class TestDisabledTelemetry:
    def test_disabled_registry_records_nothing(self):
        _run(seed=5, telemetry=NULL_TELEMETRY)
        assert NULL_TELEMETRY.metrics.snapshot() == {}
        assert NULL_TELEMETRY.trace.spans() == []

    def test_telemetry_does_not_perturb_the_session(self):
        """Attaching a registry must not change the simulation: stats with
        telemetry off, on, and defaulted are all identical (no hidden RNG
        draws, no event reordering)."""

        def fingerprint(stats):
            return json.dumps(
                [
                    (frame.frame_id, frame.send_time, frame.complete_time)
                    for frame in stats.frames
                ],
                sort_keys=True,
            )

        plain = fingerprint(_run(seed=9))
        nulled = fingerprint(_run(seed=9, telemetry=NULL_TELEMETRY))
        instrumented = fingerprint(_run(seed=9, telemetry=Telemetry()))
        assert plain == nulled == instrumented
