"""Tests for the discrete-event simulation engine."""

import pytest
from hypothesis import given, strategies as st

from repro.net.events import EventLoop, SimulationError


class TestEventLoopBasics:
    def test_initial_time_defaults_to_zero(self):
        assert EventLoop().now == 0.0

    def test_initial_time_can_be_set(self):
        assert EventLoop(start_time=5.0).now == 5.0

    def test_schedule_and_run_single_event(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.5, lambda: fired.append(loop.now))
        loop.run_until_idle()
        assert fired == [1.5]

    def test_events_run_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(2.0, lambda: order.append("b"))
        loop.schedule(1.0, lambda: order.append("a"))
        loop.schedule(3.0, lambda: order.append("c"))
        loop.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_in_insertion_order(self):
        loop = EventLoop()
        order = []
        for name in "abcde":
            loop.schedule(1.0, lambda n=name: order.append(n))
        loop.run_until_idle()
        assert order == list("abcde")

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            loop.schedule(-0.1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        loop = EventLoop(start_time=10.0)
        with pytest.raises(SimulationError):
            loop.schedule_at(9.0, lambda: None)

    def test_clock_advances_to_event_time(self):
        loop = EventLoop()
        loop.schedule(4.2, lambda: None)
        loop.run_until_idle()
        assert loop.now == pytest.approx(4.2)

    def test_processed_counter(self):
        loop = EventLoop()
        for _ in range(7):
            loop.schedule(0.1, lambda: None)
        loop.run_until_idle()
        assert loop.processed == 7


class TestEventLoopControl:
    def test_run_until_stops_before_later_events(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda: fired.append(1))
        loop.schedule(5.0, lambda: fired.append(5))
        loop.run(until=2.0)
        assert fired == [1]
        assert loop.now == pytest.approx(2.0)
        assert loop.pending == 1

    def test_run_until_includes_events_exactly_at_horizon(self):
        loop = EventLoop()
        fired = []
        loop.schedule(2.0, lambda: fired.append(2))
        loop.run(until=2.0)
        assert fired == [2]

    def test_run_max_events(self):
        loop = EventLoop()
        fired = []
        for i in range(10):
            loop.schedule(0.1 * (i + 1), lambda i=i: fired.append(i))
        loop.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_returns_false_when_empty(self):
        assert EventLoop().step() is False

    def test_cancelled_event_does_not_run(self):
        loop = EventLoop()
        fired = []
        handle = loop.schedule(1.0, lambda: fired.append("cancelled"))
        loop.schedule(2.0, lambda: fired.append("kept"))
        handle.cancel()
        loop.run_until_idle()
        assert fired == ["kept"]
        assert handle.cancelled

    def test_events_scheduled_during_execution_run(self):
        loop = EventLoop()
        fired = []

        def chain():
            fired.append(loop.now)
            if len(fired) < 3:
                loop.schedule(1.0, chain)

        loop.schedule(1.0, chain)
        loop.run_until_idle()
        assert fired == [1.0, 2.0, 3.0]

    def test_run_until_idle_guards_against_runaway(self):
        loop = EventLoop()

        def forever():
            loop.schedule(0.001, forever)

        loop.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            loop.run_until_idle(max_events=100)

    def test_pending_excludes_cancelled(self):
        loop = EventLoop()
        handle = loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        handle.cancel()
        assert loop.pending == 1


class TestEventLoopProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=50))
    def test_execution_times_are_sorted(self, delays):
        loop = EventLoop()
        times = []
        for delay in delays:
            loop.schedule(delay, lambda: times.append(loop.now))
        loop.run_until_idle()
        assert times == sorted(times)
        assert len(times) == len(delays)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_run_until_never_executes_future_events(self, delays, horizon):
        loop = EventLoop()
        executed = []
        for delay in delays:
            loop.schedule(delay, lambda d=delay: executed.append(d))
        loop.run(until=horizon)
        assert all(d <= horizon for d in executed)
        assert loop.now >= horizon or not delays


class TestDeadlineScheduler:
    def _make(self):
        from repro.net.events import DeadlineScheduler, EventLoop

        loop = EventLoop()
        return loop, DeadlineScheduler(loop)

    def test_fires_at_exact_times_in_order(self):
        loop, scheduler = self._make()
        fired = []
        scheduler.schedule_at(2.0, lambda: fired.append(("b", loop.now)))
        scheduler.schedule_at(1.0, lambda: fired.append(("a", loop.now)))
        scheduler.schedule_at(3.0, lambda: fired.append(("c", loop.now)))
        loop.run_until_idle()
        assert fired == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_single_outstanding_loop_event(self):
        """Many deadlines ride one loop event at a time: processing N
        deadlines costs N loop events at most (one per distinct instant),
        not one per registration round-trip."""
        loop, scheduler = self._make()
        for i in range(50):
            scheduler.schedule_at(5.0, lambda: None)
        assert loop.pending == 1  # one armed event covers all 50
        loop.run_until_idle()
        assert scheduler.pending == 0

    def test_earlier_deadline_rearms(self):
        loop, scheduler = self._make()
        fired = []
        scheduler.schedule_at(5.0, lambda: fired.append(5.0))
        scheduler.schedule_at(1.0, lambda: fired.append(1.0))
        loop.run_until_idle()
        assert fired == [1.0, 5.0]

    def test_same_instant_runs_in_insertion_order(self):
        loop, scheduler = self._make()
        fired = []
        for label in "abc":
            scheduler.schedule_at(1.0, lambda label=label: fired.append(label))
        loop.run_until_idle()
        assert fired == ["a", "b", "c"]

    def test_callback_may_schedule_next_deadline(self):
        loop, scheduler = self._make()
        fired = []

        def chain():
            fired.append(loop.now)
            if len(fired) < 3:
                scheduler.schedule_at(loop.now + 1.0, chain)

        scheduler.schedule_at(1.0, chain)
        loop.run_until_idle()
        assert fired == [1.0, 2.0, 3.0]
