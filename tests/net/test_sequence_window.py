"""Edge-case tests for the receiver's ring-buffer sequence window.

The batched transport tracks received sequences and NACK-able gaps in
:class:`SequenceWindow`.  These tests pin the awkward cases: gaps that
straddle the ring's wraparound point, NACK state for sequences evicted from
the ring, and duplicate retransmissions arriving after the window advanced
past them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.packet import SequenceWindow


def record_run(window, first, count, t0=1.0, spacing=0.001):
    """Record a clean contiguous run of ``count`` sequences."""
    arrivals = t0 + spacing * np.arange(count)
    return window.record(first, count, np.arange(count), arrivals, ordered=True)


class TestGapBasics:
    def test_gap_between_runs_discovered_at_next_arrival(self):
        window = SequenceWindow(capacity=64)
        record_run(window, 0, 10, t0=1.0)
        discovery = record_run(window, 12, 3, t0=2.0)
        assert discovery == 2.0
        assert window.gaps_at(2.0, max_rounds=20) == [10, 11]
        # Before the discovering arrival the gap is not NACK-able.
        assert window.gaps_at(1.5, max_rounds=20) == []

    def test_filled_gap_disappears(self):
        window = SequenceWindow(capacity=64)
        record_run(window, 0, 5, t0=1.0)
        record_run(window, 6, 2, t0=2.0)
        assert window.gaps_at(2.0, max_rounds=20) == [5]
        assert window.record_single(5, 2.5) == np.inf  # retransmission lands
        assert window.gaps_at(3.0, max_rounds=20) == []

    def test_round_exhaustion_excludes_gap(self):
        window = SequenceWindow(capacity=64)
        record_run(window, 0, 5, t0=1.0)
        record_run(window, 6, 2, t0=2.0)
        for _ in range(3):
            window.bump_rounds(window.gaps_at(2.0, max_rounds=3))
        assert window.gaps_at(2.0, max_rounds=3) == []

    def test_tail_loss_pends_until_later_traffic(self):
        window = SequenceWindow(capacity=64)
        record_run(window, 0, 5, t0=1.0)
        # Sequences 5..7 were offered but lost entirely; nothing delivered
        # after them yet, so their discovery instant is unknown.
        assert window.record(5, 3, np.zeros(0, dtype=np.int64), np.zeros(0)) == np.inf
        assert window.gaps_at(10.0, max_rounds=20) == []
        # The next run's first arrival discovers all three at once.
        assert record_run(window, 8, 2, t0=3.0) == 3.0
        assert window.gaps_at(3.0, max_rounds=20) == [5, 6, 7]


class TestWraparound:
    def test_gap_at_ring_wraparound(self):
        """A gap whose slots straddle ``capacity`` boundary must survive the
        modular indexing: sequences capacity-1 and capacity map to the last
        and first slot respectively."""
        capacity = 32
        window = SequenceWindow(capacity=capacity)
        record_run(window, 0, capacity - 2, t0=1.0)  # up to sequence 29
        # Sequences 30..33 lost (straddling slot 31 -> slot 0 wrap), then a
        # run starting at 34 discovers them.
        discovery = record_run(window, capacity + 2, 4, t0=2.0)
        assert discovery == 2.0
        expected = [capacity - 2, capacity - 1, capacity, capacity + 1]
        assert window.gaps_at(2.0, max_rounds=20) == expected
        # Filling the wrapped gap clears exactly it.
        window.record_single(capacity, 2.5)
        assert window.gaps_at(3.0, max_rounds=20) == [capacity - 2, capacity - 1, capacity + 1]

    def test_arrivals_survive_many_wraps(self):
        capacity = 16
        window = SequenceWindow(capacity=capacity)
        first = 0
        for _ in range(10):  # 10 full revolutions of the ring
            record_run(window, first, capacity, t0=float(first))
            first += capacity
        assert window.hi == first - 1
        assert window.lo == first - capacity
        assert window.gaps_at(1e9, max_rounds=20) == []


class TestEviction:
    def test_nack_for_evicted_sequence_is_dropped(self):
        """A gap that falls off the ring is abandoned: it never shows up in
        a NACK scan again and is counted in ``evicted_gaps``."""
        capacity = 16
        window = SequenceWindow(capacity=capacity)
        record_run(window, 0, 4, t0=1.0)
        record_run(window, 5, 3, t0=2.0)  # sequence 4 is a live gap
        assert window.gaps_at(2.0, max_rounds=20) == [4]
        # Contiguous traffic advances the window until sequence 4 falls off.
        record_run(window, 8, 16, t0=3.0)
        assert window.lo > 4
        assert window.gaps_at(10.0, max_rounds=20) == []
        assert window.evicted_gaps == 1

    def test_duplicate_retransmission_after_window_advance(self):
        """A retransmission for a sequence the window already evicted must
        be ignored gracefully (the scalar path forgets such sequences too).
        """
        capacity = 16
        window = SequenceWindow(capacity=capacity)
        record_run(window, 0, 4, t0=1.0)
        record_run(window, 5, 3, t0=2.0)
        record_run(window, 8, 16, t0=3.0)  # evicts sequence 4
        assert window.record_single(4, 4.0) == np.inf
        # The stale arrival must not corrupt the slot now owned by the
        # aliasing live sequence (4 % 16 == 20 % 16).
        assert float(window._arrival[4 % capacity]) != 4.0
        assert window.gaps_at(10.0, max_rounds=20) == []

    def test_undiscovered_tail_losses_evicted_with_window(self):
        capacity = 16
        window = SequenceWindow(capacity=capacity)
        record_run(window, 0, 4, t0=1.0)
        # Tail losses with unknown discovery...
        window.record(4, 4, np.zeros(0, dtype=np.int64), np.zeros(0))
        # ...then one huge contiguous run evicts them before their discovery
        # could make them NACK-able.
        record_run(window, 8, 2 * capacity, t0=2.0)
        assert window.gaps_at(10.0, max_rounds=20) == []
        assert window.evicted_gaps >= 4


class TestRecordSingleJump:
    def test_out_of_band_jump_creates_gaps(self):
        window = SequenceWindow(capacity=64)
        record_run(window, 0, 3, t0=1.0)
        assert window.record_single(6, 2.0) == 2.0
        assert window.gaps_at(2.0, max_rounds=20) == [3, 4, 5]

    def test_jump_without_skips_creates_no_gap(self):
        window = SequenceWindow(capacity=64)
        record_run(window, 0, 3, t0=1.0)
        assert window.record_single(3, 2.0) == np.inf
        assert window.gaps_at(5.0, max_rounds=20) == []


class TestTimestampExactness:
    def test_future_arrivals_filtered_by_query_time(self):
        """Batched recording can know arrivals ahead of the query instant;
        a gap filled in the future is still a gap *now*."""
        window = SequenceWindow(capacity=64)
        record_run(window, 0, 5, t0=1.0)
        record_run(window, 6, 2, t0=2.0)
        # Retransmission recorded early with a future arrival.
        window.record_single(5, 3.0)
        assert window.gaps_at(2.5, max_rounds=20) == [5]  # not yet landed
        assert window.gaps_at(3.0, max_rounds=20) == []  # landed

    def test_next_discovery_after_sees_future_gap(self):
        window = SequenceWindow(capacity=64)
        record_run(window, 0, 5, t0=1.0)
        record_run(window, 6, 2, t0=5.0)  # gap 5 discovered at t=5
        assert window.next_discovery_after(2.0, max_rounds=20) == 5.0
        assert window.next_discovery_after(5.0, max_rounds=20) == np.inf

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SequenceWindow(capacity=1)
