"""Tests for the scenario corpus (repro.net.traces)."""

import pytest

from repro.analysis.sweeps import Scenario, SweepGrid, SweepRunner, corpus_scenarios
from repro.net.emulator import (
    BandwidthTrace,
    LossModel,
    bandwidth_trace_from_spec,
    loss_model_from_spec,
)
from repro.net.traces import corpus, family_scenarios, list_families


class TestFamilies:
    def test_at_least_eight_named_families(self):
        families = list_families()
        assert len(families) >= 8
        for expected in (
            "lte_drive",
            "wifi_step_drop",
            "congestion_sawtooth",
            "bursty_ge_grid",
            "loss_ladder",
            "handover_outage",
        ):
            assert expected in families

    def test_unknown_family_raises_with_known_names(self):
        with pytest.raises(ValueError, match="lte_drive"):
            family_scenarios("no_such_family")

    def test_family_subset_selection(self):
        scenarios = corpus(families=["lte_drive", "loss_ladder"])
        assert all(
            s.name.startswith(("lte-drive", "loss-ladder")) for s in scenarios
        )
        assert any(s.name.startswith("lte-drive") for s in scenarios)
        assert any(s.name.startswith("loss-ladder") for s in scenarios)


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        assert corpus(seed=5) == corpus(seed=5)

    def test_seed_changes_randomised_families(self):
        a = {s.name: s for s in corpus(seed=0)}
        b = {s.name: s for s in corpus(seed=1)}
        assert a.keys() == b.keys()  # names are seed-stable
        assert any(a[name] != b[name] for name in a)  # contents are not

    def test_fixed_grids_are_seed_invariant(self):
        for family in ("bursty_ge_grid", "loss_ladder", "steady_baseline"):
            assert family_scenarios(family, seed=0) == family_scenarios(family, seed=9)


class TestScenarioValidity:
    def test_names_unique_across_corpus(self):
        names = [s.name for s in corpus(seed=2)]
        assert len(names) == len(set(names))

    @pytest.mark.parametrize("seed", [0, 1, 17])
    def test_every_spec_rebuilds_into_live_objects(self, seed):
        for scenario in corpus(seed=seed):
            assert isinstance(scenario, Scenario)
            model = loss_model_from_spec(scenario.loss_model)
            assert isinstance(model, LossModel)
            trace = bandwidth_trace_from_spec(scenario.bandwidth_trace)
            if scenario.bandwidth_trace is not None:
                # BandwidthTrace validates ordering/positivity on build.
                assert isinstance(trace, BandwidthTrace)
                assert trace.mean_rate_bps > 0

    def test_overrides_merge_into_every_scenario(self):
        scenarios = corpus(seed=0, overrides={"duration_s": 2.0, "height": 120})
        assert scenarios
        for scenario in scenarios:
            assert scenario.overrides["duration_s"] == 2.0
            assert scenario.overrides["height"] == 120

    def test_corpus_scenarios_wrapper_passes_overrides(self):
        scenarios = corpus_scenarios(seed=1, families=["loss_ladder"], duration_s=3.0)
        assert scenarios == corpus(
            seed=1, families=["loss_ladder"], overrides={"duration_s": 3.0}
        )


class TestSweepIntegration:
    def test_sweep_runner_accepts_corpus_scenarios(self, tmp_path):
        scenarios = tuple(corpus(seed=0, families=["lte_drive", "bursty_ge_grid"]))[:2]
        grid = SweepGrid(
            experiments=("section1_latency_budget",),
            scenarios=scenarios,
            seeds=(0,),
        )
        report = SweepRunner(results_dir=tmp_path, processes=1).run(grid)
        assert report.executed == 2
        for cell in report.cells:
            assert cell.path.exists()

    def test_runner_kwargs_build_live_objects(self):
        scenario = corpus(seed=0, families=["lte_drive"])[0]
        kwargs = scenario.runner_kwargs(seed=7)
        assert isinstance(kwargs["loss_model"], LossModel)
        assert isinstance(kwargs["bandwidth_trace"], BandwidthTrace)
        assert kwargs["seed"] == 7
