"""Tests for congestion control, ABR policies, FEC math, jitter buffer and stats."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.net.abr import (
    AiOrientedAbr,
    BufferBasedAbr,
    ThroughputAbr,
    expected_frame_latency,
)
from repro.net.congestion import (
    AimdController,
    FeedbackAggregator,
    GccConfig,
    GoogleCongestionControl,
    RateSample,
)
from repro.net.fec import FecConfig, FecDecoder, FecEncoder, fec_recovery_probability
from repro.net.packet import FrameAssembler, Packetizer
from repro.net.jitter_buffer import (
    JitterBuffer,
    JitterBufferConfig,
    PassthroughBuffer,
    frames_in_capture_order,
)
from repro.net.stats import TransportStats, summarize_latencies


def _sample(time, rate, loss=0.0, delay=0.035):
    return RateSample(timestamp=time, receive_rate_bps=rate, loss_ratio=loss, one_way_delay_s=delay)


class TestGcc:
    def test_rate_grows_when_delay_flat_and_no_loss(self):
        gcc = GoogleCongestionControl(GccConfig(initial_rate_bps=1_000_000))
        for i in range(20):
            gcc.update(_sample(i * 0.2, 1_000_000, loss=0.0, delay=0.035))
        assert gcc.estimate_bps > 1_000_000

    def test_rate_drops_on_rising_delay(self):
        gcc = GoogleCongestionControl(GccConfig(initial_rate_bps=5_000_000))
        # Delay ramps up 10 ms per report: clear overuse.
        for i in range(20):
            gcc.update(_sample(i * 0.2, 4_000_000, loss=0.0, delay=0.035 + 0.01 * i))
        assert gcc.estimate_bps < 5_000_000
        assert gcc.state == "decrease"

    def test_rate_drops_on_heavy_loss(self):
        gcc = GoogleCongestionControl(GccConfig(initial_rate_bps=5_000_000))
        for i in range(10):
            gcc.update(_sample(i * 0.2, 5_000_000, loss=0.3, delay=0.035))
        assert gcc.estimate_bps < 5_000_000

    def test_rate_respects_bounds(self):
        config = GccConfig(initial_rate_bps=100_000, min_rate_bps=50_000, max_rate_bps=200_000)
        gcc = GoogleCongestionControl(config)
        for i in range(100):
            gcc.update(_sample(i * 0.2, 500_000, loss=0.0))
        assert gcc.estimate_bps <= 200_000
        gcc2 = GoogleCongestionControl(config)
        for i in range(100):
            gcc2.update(_sample(i * 0.2, 10_000, loss=0.5, delay=0.2 + i * 0.01))
        assert gcc2.estimate_bps >= 50_000


class TestAimd:
    def test_additive_increase(self):
        aimd = AimdController()
        before = aimd.estimate_bps
        aimd.update(_sample(0.2, 1_000_000, loss=0.0))
        assert aimd.estimate_bps == pytest.approx(before + aimd.config.additive_increase_bps)

    def test_multiplicative_decrease_on_loss(self):
        aimd = AimdController()
        before = aimd.estimate_bps
        aimd.update(_sample(0.2, 1_000_000, loss=0.1))
        assert aimd.estimate_bps == pytest.approx(before * aimd.config.multiplicative_decrease)


class TestFeedbackAggregator:
    def test_no_report_before_interval(self):
        agg = FeedbackAggregator(interval_s=0.2)
        agg.on_packet(0.05, 0.02, 1400)
        assert agg.maybe_report(0.1) is None

    def test_report_contains_rate_and_loss(self):
        agg = FeedbackAggregator(interval_s=0.2)
        for i in range(10):
            agg.on_expected()
            if i != 3:
                agg.on_packet(0.02 * i, 0.02 * i - 0.01, 1400)
        sample = agg.maybe_report(0.25)
        assert sample is not None
        assert sample.loss_ratio == pytest.approx(0.1)
        assert sample.receive_rate_bps == pytest.approx(9 * 1400 * 8 / 0.25)

    def test_window_resets_after_report(self):
        agg = FeedbackAggregator(interval_s=0.1)
        agg.on_expected()
        agg.on_packet(0.05, 0.02, 1400)
        assert agg.maybe_report(0.15) is not None
        later = agg.maybe_report(0.35)
        assert later is not None
        assert later.receive_rate_bps == 0.0


class TestAbrPolicies:
    def test_throughput_abr_stays_below_estimate(self):
        policy = ThroughputAbr()
        decision = policy.decide(bandwidth_estimate_bps=5_000_000)
        assert decision.bitrate_bps <= 5_000_000 * policy.safety_factor
        assert decision.bitrate_bps == 4_000_000

    def test_throughput_abr_falls_back_to_minimum(self):
        policy = ThroughputAbr()
        decision = policy.decide(bandwidth_estimate_bps=100_000)
        assert decision.bitrate_bps == min(policy.ladder_bps)

    def test_buffer_based_abr_low_buffer_selects_low_rate(self):
        policy = BufferBasedAbr()
        decision = policy.decide(bandwidth_estimate_bps=10_000_000, buffer_s=0.01)
        assert decision.bitrate_bps == min(policy.ladder_bps)

    def test_buffer_based_abr_high_buffer_selects_high_rate(self):
        policy = BufferBasedAbr()
        decision = policy.decide(bandwidth_estimate_bps=10_000_000, buffer_s=1.0)
        assert decision.bitrate_bps == max(policy.ladder_bps)

    def test_buffer_based_abr_caps_at_bandwidth(self):
        policy = BufferBasedAbr()
        decision = policy.decide(bandwidth_estimate_bps=700_000, buffer_s=1.0)
        assert decision.bitrate_bps <= 700_000

    def test_ai_oriented_abr_picks_minimum_accurate_bitrate(self):
        # Accuracy predictor: adequate from 400 Kbps upwards.
        policy = AiOrientedAbr(
            accuracy_target=0.85,
            accuracy_predictor=lambda rate: 0.9 if rate >= 400_000 else 0.4,
        )
        decision = policy.decide(bandwidth_estimate_bps=10_000_000)
        assert decision.bitrate_bps == 400_000
        assert decision.reason == "accuracy-constrained"

    def test_ai_oriented_abr_without_predictor_picks_minimum(self):
        policy = AiOrientedAbr(accuracy_predictor=None)
        decision = policy.decide(bandwidth_estimate_bps=10_000_000)
        assert decision.bitrate_bps == min(policy.candidate_bitrates_bps)

    def test_ai_oriented_abr_latency_budget_filters_candidates(self):
        policy = AiOrientedAbr(
            accuracy_target=0.5,
            accuracy_predictor=lambda rate: 1.0,
            latency_budget_s=0.068,
            latency_predictor=lambda rate: expected_frame_latency(
                rate, fps=30, bandwidth_bps=10_000_000, loss_rate=0.05, rtt_s=0.065
            ),
        )
        decision = policy.decide(bandwidth_estimate_bps=10_000_000)
        assert decision.bitrate_bps < 4_000_000

    def test_ai_oriented_abr_selects_below_traditional(self):
        """The yellow-region claim: AI ABR sits far below traditional ABR."""
        traditional = ThroughputAbr().decide(bandwidth_estimate_bps=10_000_000)
        ai = AiOrientedAbr(
            accuracy_target=0.85,
            accuracy_predictor=lambda rate: 0.9 if rate >= 200_000 else 0.3,
        ).decide(bandwidth_estimate_bps=10_000_000)
        assert ai.bitrate_bps <= traditional.bitrate_bps / 10


class TestExpectedFrameLatency:
    def test_monotone_in_bitrate_under_loss(self):
        latencies = [
            expected_frame_latency(rate, 30, 10_000_000, 0.05, 0.065)
            for rate in [200_000, 1_000_000, 4_000_000, 8_000_000]
        ]
        assert latencies == sorted(latencies)

    def test_monotone_in_loss(self):
        latencies = [
            expected_frame_latency(4_000_000, 30, 10_000_000, loss, 0.065)
            for loss in [0.0, 0.01, 0.05, 0.1]
        ]
        assert latencies == sorted(latencies)

    def test_overload_dominates(self):
        below = expected_frame_latency(8_000_000, 30, 10_000_000, 0.0, 0.065)
        above = expected_frame_latency(14_000_000, 30, 10_000_000, 0.0, 0.065)
        assert above > 2 * below

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            expected_frame_latency(0, 30, 10_000_000, 0.0, 0.065)


class TestFec:
    def test_recovery_probability_bounds(self):
        p = fec_recovery_probability(packet_count=10, loss_rate=0.05, group_size=5)
        assert 0.0 < p <= 1.0

    def test_recovery_improves_over_no_fec(self):
        no_fec = (1 - 0.05) ** 10
        with_fec = fec_recovery_probability(10, 0.05, group_size=5)
        assert with_fec > no_fec

    def test_zero_loss_gives_certainty(self):
        assert fec_recovery_probability(20, 0.0, 5) == pytest.approx(1.0)

    def test_invalid_loss_rejected(self):
        with pytest.raises(ValueError):
            fec_recovery_probability(10, 1.0, 5)

    def test_group_size_validation(self):
        with pytest.raises(ValueError):
            FecConfig(group_size=0)
        assert FecConfig(group_size=4).overhead_ratio == pytest.approx(0.25)

    @given(
        st.integers(min_value=1, max_value=60),
        st.floats(min_value=0.0, max_value=0.4),
        st.integers(min_value=1, max_value=10),
    )
    def test_property_probability_valid(self, packets, loss, group):
        p = fec_recovery_probability(packets, loss, group)
        assert 0.0 <= p <= 1.0

    def test_tiny_loss_rate_does_not_overflow_one(self):
        """Float rounding on tiny loss rates must not push the product above 1."""
        p = fec_recovery_probability(packet_count=60, loss_rate=1e-12, group_size=1)
        assert p <= 1.0


class TestFecDecoderPendingParity:
    """The decoder must retry parity that arrived before it could repair."""

    def _frame(self, config, packet_count=4):
        packetizer = Packetizer(mtu_bytes=1200)
        packets = packetizer.packetize(
            frame_id=0, frame_bytes=1100 * packet_count, capture_time=0.0
        )
        assert len(packets) == packet_count
        parity = FecEncoder(config).protect(packets, packetizer)
        return packets, parity

    def test_pending_parity_retried_on_late_data_packet(self):
        config = FecConfig(group_size=4)
        packets, parity_packets = self._frame(config)
        decoder = FecDecoder(config)
        assembler = FrameAssembler()

        # Packets 0 and 1 arrive; 2 and 3 are lost.
        for packet in packets[:2]:
            decoder.on_data_packet(packet, assembler)
            assembler.on_packet(packet, arrival_time=0.01)

        # Parity arrives but two covered packets are missing: nothing yet.
        assert decoder.on_fec_packet(parity_packets[0], assembler) == []
        assert decoder.pending_parity_frames == 1

        # A retransmission of packet 2 closes the hole to one: the pending
        # parity now recovers packet 3.
        recovered = decoder.on_data_packet(packets[2], assembler)
        assert [p.index_in_frame for p in recovered] == [3]
        assert decoder.recovered_packets == 1
        assert decoder.pending_parity_frames == 0

    def test_pending_parity_purged_on_frame_completion(self):
        config = FecConfig(group_size=4)
        packets, parity_packets = self._frame(config)
        decoder = FecDecoder(config)
        assembler = FrameAssembler()

        for packet in packets[:2]:
            decoder.on_data_packet(packet, assembler)
            assembler.on_packet(packet, arrival_time=0.01)
        decoder.on_fec_packet(parity_packets[0], assembler)
        assert decoder.pending_parity_frames == 1

        # Both missing packets are retransmitted; the frame completes.
        recovered = decoder.on_data_packet(packets[2], assembler)
        for packet in [packets[2], *recovered]:
            assembler.on_packet(packet, arrival_time=0.02)
        decoder.on_frame_complete(0)
        assert decoder.pending_parity_frames == 0
        assert decoder._seen == {}

    def test_pending_dict_does_not_grow_across_completed_frames(self):
        config = FecConfig(group_size=4)
        decoder = FecDecoder(config)
        assembler = FrameAssembler()
        packetizer = Packetizer(mtu_bytes=1200)
        encoder = FecEncoder(config)

        for frame_id in range(50):
            packets = packetizer.packetize(
                frame_id=frame_id, frame_bytes=1100 * 4, capture_time=frame_id / 30
            )
            parity = encoder.protect(packets, packetizer)[0]
            # First two packets arrive, then parity (held pending), then the
            # rest arrive and the frame completes.
            for packet in packets[:2]:
                decoder.on_data_packet(packet, assembler)
                assembler.on_packet(packet, arrival_time=frame_id / 30)
            decoder.on_fec_packet(parity, assembler)
            for packet in packets[2:]:
                recovered = decoder.on_data_packet(packet, assembler)
                assembler.on_packet(packet, arrival_time=frame_id / 30)
                for extra in recovered:
                    assembler.on_packet(extra, arrival_time=frame_id / 30)
            decoder.on_frame_complete(frame_id)

        assert decoder.pending_parity_frames == 0
        assert decoder._seen == {}

    def test_parity_arriving_before_any_data_is_kept_pending(self):
        """A burst can drop the whole group while the parity survives."""
        config = FecConfig(group_size=4)
        packets, parity_packets = self._frame(config)
        decoder = FecDecoder(config)
        assembler = FrameAssembler()

        # Parity outran every data packet: the assembler knows nothing of
        # the frame yet, so the parity is held pending until loss evidence
        # (a known frame or a later frame's packet) arrives.
        assert decoder.on_fec_packet(parity_packets[0], assembler) == []
        assert decoder.pending_parity_frames == 1

        # Retransmissions restore three of the four packets; the pending
        # parity then recovers the last one.
        recovered = []
        for packet in packets[:3]:
            recovered = decoder.on_data_packet(packet, assembler)
            assembler.on_packet(packet, arrival_time=0.1)
        assert [p.index_in_frame for p in recovered] == [3]
        assert decoder.pending_parity_frames == 0

    def test_single_packet_group_recovered_once_loss_is_evident(self):
        config = FecConfig(group_size=1)
        packetizer = Packetizer(mtu_bytes=1200)
        packets = packetizer.packetize(frame_id=0, frame_bytes=800, capture_time=0.0)
        parity = FecEncoder(config).protect(packets, packetizer)[0]
        decoder = FecDecoder(config)
        assembler = FrameAssembler()
        # The lone data packet was dropped.  At parity arrival the decoder
        # cannot yet tell a loss from a reordered in-flight packet, so the
        # parity is held pending rather than recovering immediately.
        assert decoder.on_fec_packet(parity, assembler) == []
        assert decoder.pending_parity_frames == 1
        # A packet of the next frame shows frame 0's transmission is over;
        # the pending parity then reconstructs the lost packet.
        next_frame = packetizer.packetize(frame_id=1, frame_bytes=800, capture_time=1 / 30)
        recovered = decoder.on_data_packet(next_frame[0], assembler)
        assert [(p.frame_id, p.index_in_frame) for p in recovered] == [(0, 0)]
        assert decoder.pending_parity_frames == 0

    def test_later_frame_parity_is_loss_evidence_for_earlier_frame(self):
        """A parity of a new frame, like a data packet of one, proves older
        frames' transmissions are over and retries their pending parity."""
        config = FecConfig(group_size=1)
        packetizer = Packetizer(mtu_bytes=1200)
        encoder = FecEncoder(config)
        decoder = FecDecoder(config)
        assembler = FrameAssembler()
        frame0 = packetizer.packetize(frame_id=0, frame_bytes=800, capture_time=0.0)
        parity0 = encoder.protect(frame0, packetizer)[0]
        # Frame 0's lone data packet is lost; its parity is held pending.
        assert decoder.on_fec_packet(parity0, assembler) == []
        assert decoder.pending_parity_frames == 1
        # Frame 1's parity jitters ahead of frame 1's data: its arrival
        # alone is evidence for frame 0 and recovers the lost packet.
        frame1 = packetizer.packetize(frame_id=1, frame_bytes=800, capture_time=1 / 30)
        parity1 = encoder.protect(frame1, packetizer)[0]
        recovered = decoder.on_fec_packet(parity1, assembler)
        assert [(p.frame_id, p.index_in_frame) for p in recovered] == [(0, 0)]
        assert decoder.pending_parity_frames == 1  # frame 1's own parity waits

    def test_reordered_parity_does_not_fabricate_recovery(self):
        """Jitter can deliver a parity ahead of its undropped data packet;
        that must not be counted as an FEC recovery."""
        config = FecConfig(group_size=1)
        packetizer = Packetizer(mtu_bytes=1200)
        packets = packetizer.packetize(frame_id=0, frame_bytes=800, capture_time=0.0)
        parity = FecEncoder(config).protect(packets, packetizer)[0]
        decoder = FecDecoder(config)
        assembler = FrameAssembler()
        assert decoder.on_fec_packet(parity, assembler) == []
        # The in-flight data packet arrives: nothing was lost, nothing to
        # recover, and the now-useless parity is discarded.
        assert decoder.on_data_packet(packets[0], assembler) == []
        assembler.on_packet(packets[0], arrival_time=0.02)
        assert decoder.recovered_packets == 0
        assert decoder.pending_parity_frames == 0

    def test_reconstruction_reclassified_when_original_arrives(self):
        """A known-frame reconstruction of an in-flight packet must not stand
        as a repair once the original shows up."""
        config = FecConfig(group_size=2)
        packetizer = Packetizer(mtu_bytes=1200)
        packets = packetizer.packetize(frame_id=0, frame_bytes=1100 * 2, capture_time=0.0)
        parity = FecEncoder(config).protect(packets, packetizer)[0]
        decoder = FecDecoder(config)
        assembler = FrameAssembler()
        # Packet 0 arrives and the frame becomes known; the parity then
        # XOR-reconstructs packet 1, which is actually still in flight.
        decoder.on_data_packet(packets[0], assembler)
        assembler.on_packet(packets[0], arrival_time=0.01)
        recovered = decoder.on_fec_packet(parity, assembler)
        assert [p.index_in_frame for p in recovered] == [1]
        assert decoder.recovered_packets == 1
        # The original of packet 1 arrives: the reconstruction was premature.
        decoder.on_data_packet(packets[1], assembler)
        assert decoder.recovered_packets == 0
        assert decoder.spurious_recoveries == 1

    def test_retransmission_does_not_reclassify_genuine_repair(self):
        config = FecConfig(group_size=2)
        packetizer = Packetizer(mtu_bytes=1200)
        packets = packetizer.packetize(frame_id=0, frame_bytes=1100 * 2, capture_time=0.0)
        parity = FecEncoder(config).protect(packets, packetizer)[0]
        decoder = FecDecoder(config)
        assembler = FrameAssembler()
        # Packet 1 was genuinely lost; FEC repairs it from packet 0 + parity.
        decoder.on_data_packet(packets[0], assembler)
        assembler.on_packet(packets[0], arrival_time=0.01)
        assert decoder.on_fec_packet(parity, assembler) != []
        # The NACK machinery retransmits it anyway (it cannot know FEC
        # filled the hole); the RTX copy must not demote the repair.
        rtx = packetizer.retransmission_copy(packets[1], request_time=0.05)
        decoder.on_data_packet(rtx, assembler)
        assert decoder.recovered_packets == 1
        assert decoder.spurious_recoveries == 0

    def test_first_data_packet_does_not_recover_in_flight_groupmate(self):
        config = FecConfig(group_size=2)
        packetizer = Packetizer(mtu_bytes=1200)
        packets = packetizer.packetize(frame_id=0, frame_bytes=1100 * 2, capture_time=0.0)
        assert len(packets) == 2
        parity = FecEncoder(config).protect(packets, packetizer)[0]
        decoder = FecDecoder(config)
        assembler = FrameAssembler()
        # Parity reordered ahead of both data packets of its group.
        assert decoder.on_fec_packet(parity, assembler) == []
        # The first data packet arrives.  Its groupmate is still in flight
        # and there is no loss evidence, so no recovery is fabricated.
        assert decoder.on_data_packet(packets[0], assembler) == []
        assembler.on_packet(packets[0], arrival_time=0.02)
        assert decoder.recovered_packets == 0
        assert decoder.pending_parity_frames == 1
        # The groupmate arrives too: everything is accounted for.
        assert decoder.on_data_packet(packets[1], assembler) == []
        assert decoder.recovered_packets == 0
        assert decoder.pending_parity_frames == 0

    def test_satisfied_parity_is_not_kept_pending(self):
        config = FecConfig(group_size=4)
        packets, parity_packets = self._frame(config)
        decoder = FecDecoder(config)
        assembler = FrameAssembler()

        for packet in packets:
            decoder.on_data_packet(packet, assembler)
            assembler.on_packet(packet, arrival_time=0.01)
        assert decoder.on_fec_packet(parity_packets[0], assembler) == []
        assert decoder.pending_parity_frames == 0


class TestJitterBuffer:
    def test_buffer_adds_latency(self):
        buffer = JitterBuffer(JitterBufferConfig(initial_delay_s=0.05))
        for i in range(20):
            capture = i / 30
            arrival = capture + 0.03 + (0.02 if i % 3 == 0 else 0.0)
            buffer.push(i, capture, arrival)
        buffer.pop_ready(now=100.0)
        assert buffer.added_latency() > 0.0

    def test_buffer_delay_adapts_to_jitter(self):
        calm = JitterBuffer()
        noisy = JitterBuffer()
        rng = np.random.default_rng(0)
        for i in range(200):
            capture = i / 30
            calm.push(i, capture, capture + 0.03)
            noisy.push(i, capture, capture + 0.03 + abs(rng.normal(0, 0.02)))
        assert noisy.playout_delay_s > calm.playout_delay_s
        assert noisy.jitter_estimate_s > calm.jitter_estimate_s

    def test_pop_ready_respects_release_times(self):
        buffer = JitterBuffer(JitterBufferConfig(initial_delay_s=0.1))
        buffer.push(0, 0.0, 0.03)
        assert buffer.pop_ready(now=0.05) == []
        assert len(buffer.pop_ready(now=10.0)) == 1

    def test_passthrough_adds_no_latency(self):
        buffer = PassthroughBuffer()
        frame = buffer.push(0, 0.0, 0.03)
        assert frame.release_time == frame.arrival_time
        assert buffer.added_latency() == 0.0
        assert buffer.depth == 0

    def test_capture_order_is_jitter_invariant(self):
        """Section 2.1: the MLLM input does not depend on arrival jitter."""
        rng = np.random.default_rng(1)
        captures = [i / 30 for i in range(50)]
        smooth = PassthroughBuffer()
        jittered = PassthroughBuffer()
        for i, capture in enumerate(captures):
            smooth.push(i, capture, capture + 0.03)
            jittered.push(i, capture, capture + 0.03 + float(rng.uniform(0, 0.05)))
        smooth_order = [f.frame_id for f in frames_in_capture_order(smooth.released)]
        jitter_order = [f.frame_id for f in frames_in_capture_order(jittered.released)]
        assert smooth_order == jitter_order


class TestStats:
    def test_empty_summary_has_nan_latencies(self):
        summary = TransportStats().summary()
        assert summary.count == 0
        assert np.isnan(summary.mean_s)

    def test_summary_percentiles_ordered(self):
        latencies = np.linspace(0.01, 0.2, 100)
        summary = summarize_latencies(latencies)
        assert summary.min_s <= summary.median_s <= summary.p90_s <= summary.p95_s
        assert summary.p95_s <= summary.p99_s <= summary.max_s

    def test_delivery_ratio_uses_total(self):
        summary = summarize_latencies([0.03] * 50, total=100)
        assert summary.delivery_ratio == pytest.approx(0.5)

    def test_ms_helpers(self):
        summary = summarize_latencies([0.05, 0.05])
        assert summary.mean_ms == pytest.approx(50.0)

    def test_record_completion_idempotent(self):
        stats = TransportStats()
        stats.register_frame(0, 0.0, 0.0, 1400, 1)
        stats.record_completion(0, 0.05)
        stats.record_completion(0, 0.09)
        assert stats.frames[0].complete_time == pytest.approx(0.05)

    @given(st.lists(st.floats(min_value=0.001, max_value=5.0), min_size=1, max_size=200))
    def test_property_mean_between_min_and_max(self, latencies):
        summary = summarize_latencies(latencies)
        assert summary.min_s <= summary.mean_s <= summary.max_s
