"""Scalar-vs-vectorized equivalence for the simulation fast path.

The fast path (block-sampled drop decisions, bisect-based trace lookups)
must be a pure optimisation: for any seed the drop sequence, rate lookups
and end-to-end session statistics must be identical to the scalar
reference path.  These tests pin that contract with property tests.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.net.emulator import (
    FASTPATH_ENV,
    BandwidthTrace,
    BernoulliLoss,
    GilbertElliottLoss,
    LossModel,
    PathConfig,
    fastpath_enabled,
)
from repro.net.transport import run_fixed_bitrate_session


def scalar_sequence(model: LossModel, seed: int, n: int) -> list[bool]:
    rng = np.random.default_rng(seed)
    return [model.should_drop(rng) for _ in range(n)]


def block_sequence(model: LossModel, seed: int, n: int, block: int) -> list[bool]:
    """Draw ``n`` decisions in blocks of ``block`` from a fresh seeded RNG."""
    rng = np.random.default_rng(seed)
    out: list[bool] = []
    while len(out) < n:
        out.extend(bool(x) for x in model.sample_drops(rng, min(block, n - len(out))))
    return out


class TestBernoulliBlockEquivalence:
    @given(
        loss_rate=st.floats(min_value=0.0, max_value=0.95),
        seed=st.integers(min_value=0, max_value=2**31),
        block=st.sampled_from([1, 3, 64, 1024]),
    )
    @settings(max_examples=40, deadline=None)
    def test_identical_drop_sequence(self, loss_rate, seed, block):
        n = 300
        scalar = scalar_sequence(BernoulliLoss(loss_rate), seed, n)
        blocked = block_sequence(BernoulliLoss(loss_rate), seed, n, block)
        assert scalar == blocked

    def test_zero_loss_consumes_no_draws(self):
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        drops = BernoulliLoss(0.0).sample_drops(rng, 500)
        assert not drops.any()
        assert rng.bit_generator.state == before

    def test_empty_block(self):
        assert BernoulliLoss(0.5).sample_drops(np.random.default_rng(0), 0).size == 0


class TestGilbertElliottBlockEquivalence:
    @given(
        p_gb=st.floats(min_value=0.0, max_value=1.0),
        p_bg=st.floats(min_value=0.0, max_value=1.0),
        loss_bad=st.floats(min_value=0.0, max_value=1.0),
        loss_good=st.floats(min_value=0.0, max_value=0.5),
        seed=st.integers(min_value=0, max_value=2**31),
        block=st.sampled_from([1, 7, 128, 1024]),
    )
    @settings(max_examples=60, deadline=None)
    def test_identical_drop_sequence(self, p_gb, p_bg, loss_bad, loss_good, seed, block):
        def make():
            return GilbertElliottLoss(
                p_good_to_bad=p_gb,
                p_bad_to_good=p_bg,
                loss_in_bad=loss_bad,
                loss_in_good=loss_good,
            )

        n = 300
        assert scalar_sequence(make(), seed, n) == block_sequence(make(), seed, n, block)

    def test_state_carries_across_blocks(self):
        """Two sample_drops calls equal one scalar pass of the same length."""
        model_a = GilbertElliottLoss(p_good_to_bad=0.2, p_bad_to_good=0.4, loss_in_bad=0.8)
        model_b = GilbertElliottLoss(p_good_to_bad=0.2, p_bad_to_good=0.4, loss_in_bad=0.8)
        rng = np.random.default_rng(3)
        first = model_a.sample_drops(rng, 100)
        second = model_a.sample_drops(rng, 150)
        combined = list(first) + list(second)
        assert combined == scalar_sequence(model_b, 3, 250)

    def test_fallback_loop_matches_for_custom_models(self):
        """The base-class sample_drops loops should_drop with the same RNG."""

        class EveryThird(LossModel):
            def __init__(self):
                self.calls = 0

            def should_drop(self, rng):
                self.calls += 1
                return self.calls % 3 == 0

        drops = EveryThird().sample_drops(np.random.default_rng(0), 9)
        assert drops.tolist() == [False, False, True] * 3


class TestRateAtEquivalence:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_bisect_matches_linear_scan(self, data):
        count = data.draw(st.integers(min_value=1, max_value=30))
        gaps = data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=5.0),
                min_size=count,
                max_size=count,
            )
        )
        start = data.draw(st.floats(min_value=-10.0, max_value=10.0))
        times = list(np.cumsum([start] + gaps[:-1]))  # non-decreasing, may repeat
        rates = data.draw(
            st.lists(
                st.floats(min_value=1e3, max_value=1e9),
                min_size=count,
                max_size=count,
            )
        )
        trace = BandwidthTrace(times=times, rates_bps=rates)
        queries = data.draw(
            st.lists(st.floats(min_value=-20.0, max_value=40.0), min_size=1, max_size=40)
        )
        # Include the breakpoints themselves: boundary behaviour must match.
        for query in queries + times:
            assert trace.rate_at(query) == trace.rate_at_scan(query)

    def test_segment_cache_survives_arbitrary_query_order(self):
        trace = BandwidthTrace(times=[0.0, 1.0, 1.0, 2.0, 5.0], rates_bps=[1, 2, 3, 4, 5])
        order = [4.9, 0.5, 1.0, 0.0, 7.0, 1.5, -3.0, 2.0, 1.0, 0.99, 5.0]
        for query in order:
            assert trace.rate_at(query) == trace.rate_at_scan(query)

    def test_duplicate_breakpoints_pick_latest_entry(self):
        trace = BandwidthTrace(times=[0.0, 1.0, 1.0], rates_bps=[1e6, 2e6, 3e6])
        assert trace.rate_at(1.0) == 3e6
        assert trace.rate_at(0.5) == 1e6


def _session_stats(seed: int, jitter: float = 0.0) -> tuple:
    steps = 400
    trace = BandwidthTrace(
        times=np.linspace(0.0, 2.0, steps).tolist(),
        rates_bps=(5e6 + 2e6 * np.sin(np.linspace(0, 9, steps))).tolist(),
    )
    config = PathConfig(
        loss_model=GilbertElliottLoss(p_good_to_bad=0.03, p_bad_to_good=0.3, loss_in_bad=0.5),
        bandwidth_trace=trace,
        jitter_std_s=jitter,
        seed=seed,
    )
    stats = run_fixed_bitrate_session(4e6, 2.0, uplink_config=config)
    summary = stats.summary()
    return (
        summary.count,
        summary.delivered,
        summary.mean_s,
        summary.p99_s,
        summary.mean_retransmissions,
    )


class TestSessionEquivalence:
    """The emulator's block-refill path must not change simulated semantics."""

    @pytest.mark.parametrize("jitter", [0.0, 0.002])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_fastpath_on_off_identical(self, monkeypatch, seed, jitter):
        monkeypatch.setenv(FASTPATH_ENV, "0")
        assert not fastpath_enabled()
        scalar = _session_stats(seed, jitter)
        monkeypatch.setenv(FASTPATH_ENV, "1")
        assert fastpath_enabled()
        fast = _session_stats(seed, jitter)
        assert scalar == fast

    def test_explicit_block_size_matches_scalar(self):
        loop_stats = []
        for block in (1, 16, 4096):
            config = PathConfig(
                loss_model=BernoulliLoss(0.05), seed=11, drop_block_size=block
            )
            stats = run_fixed_bitrate_session(2e6, 1.0, uplink_config=config)
            summary = stats.summary()
            loop_stats.append((summary.count, summary.delivered, summary.mean_s))
        assert loop_stats[0] == loop_stats[1] == loop_stats[2]

    def test_invalid_block_size_rejected(self):
        with pytest.raises(ValueError):
            PathConfig(drop_block_size=0)

    def test_block_refill_does_not_advance_callers_model(self):
        """The path snapshots a stateful model: prefetching a 1024-decision
        block must not advance the chain state of the caller's instance."""
        model = GilbertElliottLoss(p_good_to_bad=1.0, p_bad_to_good=0.0, loss_in_bad=0.9)
        config = PathConfig(loss_model=model, seed=0, drop_block_size=1024)
        run_fixed_bitrate_session(2e6, 1.0, uplink_config=config)
        assert model._in_bad_state is False

    def test_scalar_block_size_keeps_shared_model_semantics(self):
        """drop_block_size=1 preserves exact scalar semantics: the caller's
        model advances with every packet the path offers."""
        model = GilbertElliottLoss(p_good_to_bad=1.0, p_bad_to_good=0.0, loss_in_bad=0.9)
        config = PathConfig(loss_model=model, seed=0, drop_block_size=1)
        run_fixed_bitrate_session(2e6, 1.0, uplink_config=config)
        assert model._in_bad_state is True


class TestHorizonEquivalence:
    """Batched run events must not observe arrivals beyond the run horizon."""

    def _overloaded_session(self):
        from repro.net.emulator import BernoulliLoss, PathConfig
        from repro.net.transport import VideoTransportSession

        config = PathConfig(
            bandwidth_bps=20_000,
            queue_capacity_bytes=2_000_000,
            loss_model=BernoulliLoss(0.0),
            seed=1,
        )
        session = VideoTransportSession(uplink_config=config)
        for frame_id in range(60):
            session.loop.schedule_at(
                frame_id / 30, lambda f=frame_id: session.send_frame(f, 25_000)
            )
        return session

    def _stats(self, session):
        summary = session.stats.summary()
        path = session.uplink.stats
        return (
            summary.count,
            summary.delivered,
            summary.mean_s if summary.delivered else None,
            path.packets_delivered,
            path.bytes_delivered,
        )

    @pytest.mark.parametrize("resume", [False, True])
    def test_backlogged_link_cut_at_horizon(self, monkeypatch, resume):
        """A 20 kbps link with a deep queue stretches a burst's arrivals far
        past the horizon: delivery stats and completions must match the
        scalar path both when the run is cut there and when it resumes."""
        results = {}
        for fast in ("0", "1"):
            monkeypatch.setenv(FASTPATH_ENV, fast)
            session = self._overloaded_session()
            session.run(until=7.0)
            if resume:
                session.run(until=300.0)
            results[fast] = self._stats(session)
        assert results["0"] == results["1"]


class TestFecSessionEquivalence:
    """FEC sessions ride the batched send path (per-packet delivery).

    The sender and emulated path batch drop decisions, admission,
    serialisation and jitter; delivery stays per-packet because parity
    decode decisions are coupled to individual arrival instants.  Every
    observable — latency summary, recovery/spurious counters, per-frame
    completion instants, retransmission counts — must match the scalar
    reference (``REPRO_NET_FASTPATH=0``) bit-for-bit.
    """

    @pytest.mark.parametrize(
        "variant",
        [
            {},
            {"jitter_std_s": 0.002},
            {"bitrate_bps": 250_000},
            {"seed": 11, "bitrate_bps": 8e6},
        ],
        ids=["plain", "jittered", "single_packet_frames", "high_rate"],
    )
    def test_fastpath_on_off_identical(self, monkeypatch, variant):
        from repro.analysis.perfbench import _run_fec_session

        monkeypatch.setenv(FASTPATH_ENV, "0")
        assert not fastpath_enabled()
        scalar = _run_fec_session(2.0, **variant)
        monkeypatch.setenv(FASTPATH_ENV, "1")
        fast = _run_fec_session(2.0, **variant)
        assert scalar == fast

    def test_fec_recovery_actually_exercised(self, monkeypatch):
        """The equivalence above must not hold vacuously: the bursty FEC
        session really recovers packets from parity."""
        from repro.analysis.perfbench import _run_fec_session

        monkeypatch.setenv(FASTPATH_ENV, "1")
        result = _run_fec_session(2.0)
        fec = dict(result[5])
        assert fec["recovered_packets"] > 0

    def test_fec_session_selects_packet_block_mode(self, monkeypatch):
        from repro.net.fec import FecConfig
        from repro.net.transport import TransportConfig, VideoTransportSession

        monkeypatch.setenv(FASTPATH_ENV, "1")
        session = VideoTransportSession(
            transport_config=TransportConfig(fec=FecConfig(group_size=5))
        )
        assert session.packet_block_mode and not session.block_mode
        monkeypatch.setenv(FASTPATH_ENV, "0")
        reference = VideoTransportSession(
            transport_config=TransportConfig(fec=FecConfig(group_size=5))
        )
        assert not reference.packet_block_mode and not reference.block_mode

    def test_protect_burst_matches_protect(self):
        """Parity built from a sizes array must equal parity built from
        materialised packets, field for field."""
        import dataclasses

        from repro.net.fec import FecConfig, FecEncoder
        from repro.net.packet import Packetizer

        for frame_bytes in (500, 7_001, 28_000):
            packetizer_a, packetizer_b = Packetizer(), Packetizer()
            encoder_a = FecEncoder(FecConfig(group_size=5))
            encoder_b = FecEncoder(FecConfig(group_size=5))
            packets = packetizer_a.packetize(3, frame_bytes, 0.25)
            sizes = packetizer_b.packet_sizes(frame_bytes)
            packetizer_b.allocate_sequences(len(sizes))
            from_packets = encoder_a.protect(packets, packetizer_a)
            from_sizes = encoder_b.protect_burst(3, len(sizes), sizes, 0.25)
            assert len(from_packets) == len(from_sizes) >= 1
            for a, b in zip(from_packets, from_sizes):
                for field_ in dataclasses.fields(a):
                    assert getattr(a, field_.name) == getattr(b, field_.name), field_.name
