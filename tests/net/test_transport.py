"""Tests for the unidirectional video transport (Figure 3 prototype)."""

import numpy as np
import pytest

from repro.net import (
    BernoulliLoss,
    FecConfig,
    FixedBitrateWorkload,
    PathConfig,
    TransportConfig,
    VideoTransportSession,
    run_fixed_bitrate_session,
)


def _path(loss=0.0, bandwidth=10_000_000, delay=0.030, seed=1, **kwargs):
    return PathConfig(
        bandwidth_bps=bandwidth,
        propagation_delay_s=delay,
        loss_model=BernoulliLoss(loss),
        seed=seed,
        **kwargs,
    )


class TestLosslessDelivery:
    def test_single_frame_latency_is_serialization_plus_propagation(self):
        session = VideoTransportSession(uplink_config=_path())
        session.send_frame(0, size_bytes=14_000)
        session.run()
        summary = session.stats.summary()
        assert summary.delivered == 1
        expected = 0.030 + 14_000 * 8 / 10_000_000
        assert summary.mean_s == pytest.approx(expected, rel=1e-6)

    def test_all_frames_delivered_without_loss(self):
        stats = run_fixed_bitrate_session(
            bitrate_bps=1_000_000, duration_s=5, fps=30, uplink_config=_path()
        )
        summary = stats.summary()
        assert summary.delivered == summary.count == 150
        assert summary.delivery_ratio == 1.0

    def test_latency_excludes_capture_to_send_gap(self):
        session = VideoTransportSession(uplink_config=_path())
        session.loop.schedule_at(1.0, lambda: session.send_frame(0, 1400, capture_time=0.5))
        session.run()
        record = session.stats.frames[0]
        assert record.send_time == pytest.approx(1.0)
        assert record.transmission_latency < record.end_to_end_latency

    def test_no_retransmissions_without_loss(self):
        stats = run_fixed_bitrate_session(
            bitrate_bps=2_000_000, duration_s=3, fps=30, uplink_config=_path()
        )
        assert all(record.retransmitted_packets == 0 for record in stats.frames)


class _DropNthOffered:
    """Loss model that drops exactly the packets at the given offer indices."""

    def __init__(self, drop_indices):
        self.drop_indices = set(drop_indices)
        self.offered = 0

    def should_drop(self, rng):
        drop = self.offered in self.drop_indices
        self.offered += 1
        return drop


class TestFecFlush:
    def test_tail_frame_loss_recovered_without_later_packets(self):
        """The session's final frame loses its data packet but its parity
        survives.  No later packet ever arrives to provide loss evidence,
        so only the deferred flush can complete the frame."""
        # Offer order: f0 data, f0 parity, f1 data, f1 parity — drop f1 data.
        config = TransportConfig(fec=FecConfig(group_size=1))
        session = VideoTransportSession(
            uplink_config=PathConfig(loss_model=_DropNthOffered([2]), seed=1),
            transport_config=config,
        )
        session.send_frame(0, size_bytes=1000, capture_time=0.0)
        session.loop.schedule_at(1 / 30, lambda: session.send_frame(1, 1000, 1 / 30))
        session.run()
        assert session.stats.summary().delivered == 2
        assert session.receiver._fec_decoder.recovered_packets == 1
        assert session.receiver._fec_decoder.pending_parity_frames == 0

    def test_recovered_packet_does_not_cancel_video_sequence_nack(self):
        """A reconstruction carries no video-space sequence number.

        Offer order: f0 seq0, seq1, parity; f1 seq2, seq3, parity.  Dropping
        seq1, f0's parity and seq3 makes frame 1's parity repair seq3's
        hole; the reconstruction must not be mistaken for video seq 1, whose
        sequence-NACK is frame 0's only path to completion.
        """
        config = TransportConfig(fec=FecConfig(group_size=2))
        session = VideoTransportSession(
            uplink_config=PathConfig(loss_model=_DropNthOffered([1, 2, 4]), seed=1),
            transport_config=config,
        )
        session.send_frame(0, size_bytes=2400, capture_time=0.0)
        session.loop.schedule_at(1 / 30, lambda: session.send_frame(1, 2400, 1 / 30))
        session.run()
        assert session.stats.summary().delivered == 2

    def test_abandoned_frame_state_pruned(self):
        """Frames that never complete must not grow decoder state forever."""
        from repro.net.fec import FecDecoder
        from repro.net.packet import FrameAssembler, Packetizer
        from repro.net.fec import FecEncoder

        config = FecConfig(group_size=2)
        decoder = FecDecoder(config)
        assembler = FrameAssembler()
        packetizer = Packetizer(mtu_bytes=1200)
        encoder = FecEncoder(config)
        # Frame 0 loses both packets of its group; only the parity arrives,
        # so it is held pending and the frame can never complete.
        doomed = packetizer.packetize(frame_id=0, frame_bytes=1100 * 2, capture_time=0.0)
        decoder.on_fec_packet(encoder.protect(doomed, packetizer)[0], assembler)
        assert decoder.pending_parity_frames == 1
        # A long healthy tail of frames; once frame 0's capture time falls
        # behind the stale timeout its pending parity and seen-packet state
        # are released.
        for frame_id in range(1, int(decoder.stale_timeout_s * 30) + 5):
            packets = packetizer.packetize(
                frame_id=frame_id, frame_bytes=1100 * 2, capture_time=frame_id / 30
            )
            for packet in packets:
                decoder.on_data_packet(packet, assembler)
                assembler.on_packet(packet, arrival_time=frame_id / 30)
            decoder.on_frame_complete(frame_id)
        assert decoder.pending_parity_frames == 0
        assert 0 not in decoder._seen


class TestLossRecovery:
    def test_lost_packets_recovered_via_nack(self):
        stats = run_fixed_bitrate_session(
            bitrate_bps=2_000_000, duration_s=10, fps=30, uplink_config=_path(loss=0.05)
        )
        summary = stats.summary()
        assert summary.delivery_ratio > 0.99
        assert any(record.retransmitted_packets > 0 for record in stats.frames)

    def test_fully_lost_single_packet_frames_recovered_by_sequence_nack(self):
        # At 200 Kbps every frame is a single packet; a loss wipes the whole
        # frame and only the sequence-gap NACK can recover it.
        stats = run_fixed_bitrate_session(
            bitrate_bps=200_000, duration_s=10, fps=30, uplink_config=_path(loss=0.08, seed=3)
        )
        summary = stats.summary()
        assert summary.delivery_ratio > 0.98

    def test_retransmission_adds_roughly_one_rtt(self):
        stats = run_fixed_bitrate_session(
            bitrate_bps=2_000_000, duration_s=20, fps=30, uplink_config=_path(loss=0.05)
        )
        retransmitted = [
            r.transmission_latency for r in stats.frames if r.retransmitted_packets > 0 and r.delivered
        ]
        clean = [
            r.transmission_latency for r in stats.frames if r.retransmitted_packets == 0 and r.delivered
        ]
        assert np.mean(retransmitted) > np.mean(clean) + 0.050

    def test_nack_disabled_leaves_frames_incomplete(self):
        config = TransportConfig(enable_nack=False)
        stats = run_fixed_bitrate_session(
            bitrate_bps=2_000_000,
            duration_s=10,
            fps=30,
            uplink_config=_path(loss=0.05),
            transport_config=config,
        )
        summary = stats.summary()
        assert summary.delivery_ratio < 0.95
        assert all(record.retransmitted_packets == 0 for record in stats.frames)

    def test_fec_recovers_single_losses_without_retransmission(self):
        config = TransportConfig(enable_nack=False, fec=FecConfig(group_size=1))
        stats = run_fixed_bitrate_session(
            bitrate_bps=2_000_000,
            duration_s=10,
            fps=30,
            uplink_config=_path(loss=0.03, seed=5),
            transport_config=config,
        )
        no_fec_stats = run_fixed_bitrate_session(
            bitrate_bps=2_000_000,
            duration_s=10,
            fps=30,
            uplink_config=_path(loss=0.03, seed=5),
            transport_config=TransportConfig(enable_nack=False),
        )
        assert stats.summary().delivery_ratio > no_fec_stats.summary().delivery_ratio


class TestFigure3Shape:
    """The qualitative claims behind Figure 3 of the paper."""

    def test_latency_grows_with_bitrate_under_loss(self):
        means = []
        for bitrate in [200_000, 2_000_000, 8_000_000]:
            stats = run_fixed_bitrate_session(
                bitrate_bps=bitrate,
                duration_s=15,
                fps=30,
                uplink_config=_path(loss=0.05, seed=2),
            )
            means.append(stats.summary().mean_s)
        assert means[0] < means[1] < means[2]

    def test_latency_explodes_above_bandwidth(self):
        below = run_fixed_bitrate_session(
            bitrate_bps=8_000_000, duration_s=10, fps=30, uplink_config=_path()
        ).summary()
        above = run_fixed_bitrate_session(
            bitrate_bps=13_000_000, duration_s=10, fps=30, uplink_config=_path()
        ).summary()
        assert above.mean_s > 5 * below.mean_s

    def test_loss_increases_latency_at_same_bitrate(self):
        clean = run_fixed_bitrate_session(
            bitrate_bps=4_000_000, duration_s=15, fps=30, uplink_config=_path(loss=0.0)
        ).summary()
        lossy = run_fixed_bitrate_session(
            bitrate_bps=4_000_000, duration_s=15, fps=30, uplink_config=_path(loss=0.05)
        ).summary()
        assert lossy.mean_s > clean.mean_s
        assert lossy.p95_s > clean.p95_s

    def test_ultra_low_bitrate_keeps_latency_near_propagation(self):
        stats = run_fixed_bitrate_session(
            bitrate_bps=200_000, duration_s=15, fps=30, uplink_config=_path(loss=0.01)
        )
        summary = stats.summary()
        assert summary.median_s < 0.040  # 30 ms propagation + ~1 ms serialization


class TestWorkload:
    def test_constant_sizes_without_iframes(self):
        workload = FixedBitrateWorkload(bitrate_bps=2_400_000, fps=30)
        sizes = workload.frame_sizes(10)
        assert len(sizes) == 10
        assert all(size == sizes[0] for size in sizes)
        assert sizes[0] == pytest.approx(2_400_000 / 30 / 8, abs=1)

    def test_iframe_structure_preserves_average(self):
        workload = FixedBitrateWorkload(
            bitrate_bps=3_000_000, fps=30, iframe_interval=10, iframe_scale=4.0
        )
        sizes = workload.frame_sizes(300)
        target = 3_000_000 / 30 / 8
        assert np.mean(sizes) == pytest.approx(target, rel=0.02)
        assert sizes[0] > sizes[1]

    def test_zero_count(self):
        assert FixedBitrateWorkload(bitrate_bps=1e6).frame_sizes(0).size == 0

    def test_jitter_changes_sizes_but_keeps_positive(self):
        workload = FixedBitrateWorkload(bitrate_bps=1_000_000, fps=30, size_jitter=0.3, seed=4)
        sizes = workload.frame_sizes(100)
        assert len(set(sizes.tolist())) > 10
        assert (sizes > 0).all()


class TestSessionAccounting:
    def test_sender_byte_accounting_includes_retransmissions(self):
        session = VideoTransportSession(uplink_config=_path(loss=0.2, seed=9))
        for frame_id in range(30):
            session.loop.schedule_at(
                frame_id / 30, lambda f=frame_id: session.send_frame(f, 14_000)
            )
        session.run(until=5.0)
        original_bytes = sum(r.size_bytes for r in session.stats.frames)
        assert session.sender.bytes_sent > original_bytes
        assert session.sender.retransmissions_sent > 0

    def test_forget_frame_stops_retransmission(self):
        session = VideoTransportSession(uplink_config=_path(loss=0.9, seed=9))
        session.send_frame(0, 14_000)
        session.sender.forget_frame(0)
        session.run(until=3.0)
        assert session.sender.retransmissions_sent == 0
