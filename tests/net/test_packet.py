"""Tests for packetisation and frame reassembly."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.net.packet import (
    DEFAULT_MTU_BYTES,
    FrameAssembler,
    Packet,
    Packetizer,
    PacketType,
)


class TestPacketizer:
    def test_small_frame_is_single_packet(self):
        packets = Packetizer().packetize(frame_id=0, frame_bytes=500, capture_time=0.0)
        assert len(packets) == 1
        assert packets[0].size_bytes == 500

    def test_packet_count_matches_mtu_division(self):
        packetizer = Packetizer(mtu_bytes=1000)
        packets = packetizer.packetize(frame_id=0, frame_bytes=2500, capture_time=0.0)
        assert len(packets) == 3
        assert [p.size_bytes for p in packets] == [1000, 1000, 500]

    def test_total_bytes_preserved(self):
        packetizer = Packetizer()
        for size in [1, 1399, 1400, 1401, 9999, 100_000]:
            packets = packetizer.packetize(frame_id=0, frame_bytes=size, capture_time=0.0)
            assert sum(p.size_bytes for p in packets) == size

    def test_sequence_numbers_are_monotone_across_frames(self):
        packetizer = Packetizer()
        first = packetizer.packetize(0, 5000, 0.0)
        second = packetizer.packetize(1, 5000, 0.033)
        sequences = [p.sequence for p in first + second]
        assert sequences == list(range(len(sequences)))

    def test_packets_in_frame_and_indices(self):
        packets = Packetizer(mtu_bytes=100).packetize(0, 450, 0.0)
        assert all(p.packets_in_frame == 5 for p in packets)
        assert [p.index_in_frame for p in packets] == [0, 1, 2, 3, 4]
        assert packets[-1].is_last_in_frame
        assert not packets[0].is_last_in_frame

    def test_default_mtu_is_1400(self):
        assert DEFAULT_MTU_BYTES == 1400
        assert Packetizer().mtu_bytes == 1400

    def test_zero_or_negative_frame_bytes_yields_one_packet(self):
        packets = Packetizer().packetize(0, 0, 0.0)
        assert len(packets) == 1
        assert packets[0].size_bytes >= 1

    def test_invalid_mtu_rejected(self):
        with pytest.raises(ValueError):
            Packetizer(mtu_bytes=0)

    def test_packet_count_for(self):
        packetizer = Packetizer(mtu_bytes=1400)
        assert packetizer.packet_count_for(1400) == 1
        assert packetizer.packet_count_for(1401) == 2
        assert packetizer.packet_count_for(14000) == 10

    def test_retransmission_copy_keeps_sequence_and_identity(self):
        packetizer = Packetizer()
        original = packetizer.packetize(3, 3000, 1.0)[1]
        copy = packetizer.retransmission_copy(original, request_time=2.0)
        assert copy.sequence == original.sequence
        assert copy.frame_id == original.frame_id
        assert copy.index_in_frame == original.index_in_frame
        assert copy.size_bytes == original.size_bytes
        assert copy.packet_type == PacketType.RETRANSMISSION
        assert copy.metadata["request_time"] == 2.0

    def test_capture_time_propagated(self):
        packets = Packetizer().packetize(0, 5000, capture_time=1.25)
        assert all(p.capture_time == 1.25 for p in packets)

    @given(st.integers(min_value=1, max_value=500_000), st.integers(min_value=100, max_value=9000))
    def test_property_bytes_conserved_and_count_correct(self, frame_bytes, mtu):
        packetizer = Packetizer(mtu_bytes=mtu)
        packets = packetizer.packetize(0, frame_bytes, 0.0)
        assert sum(p.size_bytes for p in packets) == frame_bytes
        assert len(packets) == math.ceil(frame_bytes / mtu)
        assert all(p.size_bytes <= mtu for p in packets)


class TestFrameAssembler:
    def _packets(self, frame_id=0, count=4, capture_time=0.0):
        packetizer = Packetizer(mtu_bytes=1000)
        return packetizer.packetize(frame_id, 1000 * count, capture_time)

    def test_frame_completes_when_all_packets_arrive(self):
        assembler = FrameAssembler()
        packets = self._packets(count=3)
        assert assembler.on_packet(packets[0], 0.01) is False
        assert assembler.on_packet(packets[1], 0.02) is False
        assert assembler.on_packet(packets[2], 0.03) is True
        assert assembler.is_complete(0)
        assert assembler.completion_time(0) == pytest.approx(0.03)

    def test_completion_order_independent(self):
        assembler = FrameAssembler()
        packets = self._packets(count=3)
        assembler.on_packet(packets[2], 0.01)
        assembler.on_packet(packets[0], 0.02)
        completed = assembler.on_packet(packets[1], 0.03)
        assert completed is True

    def test_duplicate_packet_does_not_complete_twice(self):
        assembler = FrameAssembler()
        packets = self._packets(count=2)
        assembler.on_packet(packets[0], 0.01)
        assert assembler.on_packet(packets[1], 0.02) is True
        assert assembler.on_packet(packets[1], 0.03) is False
        assert assembler.completion_time(0) == pytest.approx(0.02)

    def test_missing_indices_tracking(self):
        assembler = FrameAssembler()
        packets = self._packets(count=5)
        assembler.on_packet(packets[0], 0.01)
        assembler.on_packet(packets[3], 0.02)
        assert assembler.missing_indices(0) == (1, 2, 4)

    def test_missing_indices_unknown_frame_is_empty(self):
        assert FrameAssembler().missing_indices(99) == ()

    def test_single_packet_frame(self):
        assembler = FrameAssembler()
        packet = Packetizer().packetize(7, 200, 0.5)[0]
        assert assembler.on_packet(packet, 0.6) is True
        assert assembler.capture_time(7) == pytest.approx(0.5)

    def test_received_bytes_accumulates(self):
        assembler = FrameAssembler()
        packets = self._packets(count=3)
        for p in packets:
            assembler.on_packet(p, 0.1)
        assert assembler.received_bytes(0) == sum(p.size_bytes for p in packets)

    def test_multiple_frames_tracked_independently(self):
        assembler = FrameAssembler()
        frame0 = self._packets(frame_id=0, count=2)
        frame1 = self._packets(frame_id=1, count=2)
        assembler.on_packet(frame0[0], 0.01)
        assembler.on_packet(frame1[0], 0.02)
        assembler.on_packet(frame1[1], 0.03)
        assert assembler.is_complete(1)
        assert not assembler.is_complete(0)
        assert set(assembler.known_frames()) == {0, 1}

    @given(st.integers(min_value=1, max_value=40), st.randoms())
    def test_property_completion_requires_all_indices(self, count, rnd):
        packetizer = Packetizer(mtu_bytes=100)
        packets = packetizer.packetize(0, 100 * count, 0.0)
        order = list(packets)
        rnd.shuffle(order)
        assembler = FrameAssembler()
        completions = [assembler.on_packet(p, i * 0.001) for i, p in enumerate(order)]
        # Exactly one completion signal, and only on the final packet.
        assert completions.count(True) == 1
        assert completions[-1] is True
