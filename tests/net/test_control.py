"""Tests for the sender control plane: receiver reports, controllers, specs.

The closed feedback loop must satisfy two hard contracts: (1) report timing
and contents are bit-identical between the scalar per-packet delivery path
and the batched block fastpath, even over lossy/jittery feedback channels;
(2) controllers are deterministic — same seed and trace produce the same
action sequence across runs and across delivery modes.  The sawtooth
tracking test pins the acceptance criterion: a GCC + ABR sender follows the
capacity trace while fixed-bitrate baselines demonstrably over/under-shoot.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.net import (
    BernoulliLoss,
    FecConfig,
    FixedBitrateWorkload,
    PathConfig,
    TransportConfig,
    VideoTransportSession,
    bandwidth_trace_from_spec,
    drive_closed_loop,
    family_scenarios,
    loss_model_from_spec,
)
from repro.net.abr import AiOrientedAbr, BufferBasedAbr, ThroughputAbr
from repro.net.congestion import AimdController, GoogleCongestionControl
from repro.net.control import (
    ClosedLoopController,
    ControlAction,
    FixedController,
    ReportCollector,
    abr_policy_from_spec,
    abr_policy_to_spec,
    controller_from_spec,
    controller_to_spec,
    estimator_from_spec,
    estimator_to_spec,
    fec_group_size_for_overhead,
    preset_controller_spec,
)
from repro.net.emulator import FASTPATH_ENV


# ---------------------------------------------------------------------------
# ReportCollector: the deadline-grid accounting both delivery modes share
# ---------------------------------------------------------------------------


class TestReportCollector:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            ReportCollector(0.0)

    def test_first_record_arms_on_interval_grid(self):
        collector = ReportCollector(0.2)
        armed = collector.record(0.07, 0.05, 1200, 0)
        assert armed == (1, 0.2)

    def test_second_record_in_same_window_does_not_rearm(self):
        collector = ReportCollector(0.2)
        assert collector.record(0.07, 0.05, 1200, 0) is not None
        assert collector.record(0.11, 0.09, 1200, 1) is None

    def test_deadlines_are_integer_multiples_of_the_interval(self):
        # The grid is computed as tick * interval from one integer — never by
        # accumulating now + interval — so both delivery modes land on the
        # exact same float no matter how they reached it.
        collector = ReportCollector(0.2)
        _, deadline = collector.record(0.55, 0.5, 900, 0)
        assert deadline == 3 * 0.2
        report, armed = collector.collect(deadline, 3)
        assert report is not None
        assert armed == (4, 4 * 0.2)

    def test_out_of_order_record_supersedes_later_arming(self):
        # An unordered fastpath run can record a late-window sample before an
        # early-window one; the earlier sample must lower the armed tick and
        # the superseded (stale) fire must become a no-op.
        collector = ReportCollector(0.2)
        late = collector.record(0.45, 0.4, 900, 5)
        assert late == (3, pytest.approx(0.6))
        early = collector.record(0.05, 0.0, 900, 0)
        assert early == (1, pytest.approx(0.2))
        report, armed = collector.collect(0.2, 1)
        assert report is not None and report.received_packets == 1
        assert armed == (2, pytest.approx(0.4))
        # The stale tick-3 fire observes a collector armed at tick 2: no-op.
        assert collector.collect(0.6, 3) == (None, None)

    def test_sample_at_fire_instant_waits_for_next_window(self):
        collector = ReportCollector(0.2)
        collector.record(0.1, 0.05, 1000, 0)
        collector.record(0.2, 0.15, 1000, 1)  # exactly at the deadline
        report, armed = collector.collect(0.2, 1)
        assert report is not None
        assert report.received_packets == 1
        assert armed is not None  # the boundary sample keeps the chain armed
        follow_up, _ = collector.collect(0.4, 2)
        assert follow_up is not None and follow_up.received_packets == 1

    def test_report_contents_rate_loss_delay_highest(self):
        collector = ReportCollector(1.0)
        # Sequences 0..4 with 2 and 3 missing; one FEC packet (sequence -1)
        # contributes to rate and delay but not to the loss accounting.
        for arrival, seq, size in ((0.10, 0, 500), (0.20, 1, 500), (0.30, 4, 500)):
            collector.record(arrival, arrival - 0.05, size, seq)
        collector.record(0.40, 0.35, 300, -1)
        report, _ = collector.collect(1.0, 1)
        assert report.receive_rate_bps == pytest.approx((3 * 500 + 300) * 8.0 / 1.0)
        assert report.highest_sequence == 4
        assert report.received_packets == 3
        assert report.expected_packets == 5
        assert report.loss_fraction == pytest.approx(1.0 - 3 / 5)
        assert report.one_way_delay_s == pytest.approx(0.05)
        assert len(report.delay_samples) == 4

    def test_loss_is_cumulative_across_windows(self):
        collector = ReportCollector(1.0)
        collector.record(0.1, 0.1, 100, 9)
        first, _ = collector.collect(1.0, 1)
        assert first.expected_packets == 10 and first.received_packets == 1
        collector.record(1.1, 1.1, 100, 10)
        second, _ = collector.collect(2.0, 2)
        # Only one new sequence slot was expected after highest=9.
        assert second.expected_packets == 1 and second.loss_fraction == 0.0
        assert collector.highest_sequence == 10

    def test_recording_order_does_not_change_the_report(self):
        samples = [(0.171, 3, 0.021, 1200), (0.054, 0, 0.019, 900), (0.101, 1, 0.033, 1100)]
        reports = []
        for ordering in (samples, sorted(samples), list(reversed(samples))):
            collector = ReportCollector(0.2)
            for arrival, seq, delay, size in ordering:
                collector.record(arrival, arrival - delay, size, seq)
            report, _ = collector.collect(0.2, 1)
            reports.append(report)
        assert reports[0] == reports[1] == reports[2]

    def test_chain_goes_dormant_and_rearms(self):
        collector = ReportCollector(0.2)
        collector.record(0.1, 0.1, 100, 0)
        report, armed = collector.collect(0.2, 1)
        assert report is not None and armed == (2, pytest.approx(0.4))
        # Nothing arrived in the next window: no report, chain goes dormant.
        assert collector.collect(0.4, 2) == (None, None)
        # A new sample re-arms from scratch on the absolute grid.
        assert collector.record(0.95, 0.9, 100, 1) == (5, pytest.approx(1.0))

    def test_empty_window_between_samples_emits_no_report(self):
        collector = ReportCollector(0.2)
        collector.record(0.1, 0.1, 100, 0)
        collector.record(0.5, 0.45, 100, 1)  # lands two windows later
        report, armed = collector.collect(0.2, 1)
        assert report is not None
        report, armed = collector.collect(0.4, 2)
        assert report is None  # the 0.5 sample has not arrived "before" 0.4
        assert armed == (3, pytest.approx(0.6))
        report, _ = collector.collect(0.6, 3)
        assert report is not None and report.received_packets == 1


class TestFecGroupSize:
    def test_ratio_to_group_size(self):
        assert fec_group_size_for_overhead(0.2) == 5
        assert fec_group_size_for_overhead(0.5) == 2
        assert fec_group_size_for_overhead(1.0) == 1
        assert fec_group_size_for_overhead(2.0) == 1  # clamped low
        assert fec_group_size_for_overhead(0.001) == 64  # clamped high

    def test_non_positive_ratio_rejected(self):
        with pytest.raises(ValueError):
            fec_group_size_for_overhead(0.0)
        with pytest.raises(ValueError):
            fec_group_size_for_overhead(-0.1)


# ---------------------------------------------------------------------------
# Controllers and JSON-able spec factories
# ---------------------------------------------------------------------------


class TestControllers:
    def test_fixed_controller_ignores_reports(self):
        controller = FixedController(bitrate_bps=3e6, fec_overhead_ratio=0.25)
        initial = controller.initial_action()
        assert initial.target_bitrate_bps == 3e6
        assert initial.fec_overhead_ratio == 0.25
        # Any report yields the same action.
        collector = ReportCollector(0.2)
        collector.record(0.1, 0.05, 1000, 0)
        report, _ = collector.collect(0.2, 1)
        assert controller.on_report(report, 0.2) == initial

    def test_closed_loop_composes_estimator_and_abr(self):
        controller = ClosedLoopController(GoogleCongestionControl(), ThroughputAbr())
        collector = ReportCollector(0.2)
        collector.record(0.1, 0.05, 25_000, 0)
        report, _ = collector.collect(0.2, 1)
        action = controller.on_report(report, 0.2)
        assert isinstance(action, ControlAction)
        assert action.target_bitrate_bps > 0
        assert action.fec_overhead_ratio is None

    def test_adaptive_fec_scales_with_loss(self):
        controller = ClosedLoopController(
            AimdController(), ThroughputAbr(), adapt_fec=True, fec_loss_multiplier=2.0
        )
        lossless = ReportCollector(1.0)
        lossless.record(0.1, 0.1, 100, 0)
        clean, _ = lossless.collect(1.0, 1)
        assert controller.on_report(clean, 1.0).fec_overhead_ratio == 0.05  # floor
        lossy = ReportCollector(1.0)
        lossy.record(0.1, 0.1, 100, 9)  # 1 of 10 expected slots
        dirty, _ = lossy.collect(1.0, 1)
        action = controller.on_report(dirty, 1.0)
        assert action.fec_overhead_ratio == 0.5  # 0.9 loss * 2, clamped to max

    def test_determinism_same_seed_same_actions(self):
        def actions():
            controller = controller_from_spec(preset_controller_spec("gcc"))
            out = [controller.initial_action()]
            collector = ReportCollector(0.2)
            rng = np.random.default_rng(7)
            for k, seq in enumerate(rng.integers(0, 50, size=40).tolist()):
                collector.record(0.01 + 0.05 * k, 0.05 * k, 1000 + seq, k)
            now = 0.2
            tick = 1
            while True:
                report, armed = collector.collect(now, tick)
                if report is not None:
                    out.append(controller.on_report(report, now))
                if armed is None:
                    break
                tick, now = armed
            return out

        assert actions() == actions()


class TestSpecFactories:
    def test_estimator_round_trip(self):
        for kind in ("gcc", "aimd"):
            spec = {"kind": kind}
            estimator = estimator_from_spec(spec)
            round_tripped = estimator_to_spec(estimator)
            assert round_tripped["kind"] == kind
            assert estimator_from_spec(round_tripped).config == estimator.config

    def test_abr_round_trip(self):
        for kind, cls in (("throughput", ThroughputAbr), ("buffer", BufferBasedAbr), ("ai", AiOrientedAbr)):
            policy = abr_policy_from_spec({"kind": kind})
            assert isinstance(policy, cls)
            assert abr_policy_from_spec(abr_policy_to_spec(policy)).__class__ is cls

    def test_controller_round_trip_preserves_spec(self):
        for preset in ("fixed", "gcc", "aimd", "gcc-buffer", "aimd-ai"):
            spec = preset_controller_spec(preset)
            controller = controller_from_spec(spec)
            rebuilt = controller_from_spec(controller_to_spec(controller))
            assert controller_to_spec(rebuilt) == controller_to_spec(controller)

    def test_adaptive_fec_survives_round_trip(self):
        controller = ClosedLoopController(
            AimdController(), ThroughputAbr(), adapt_fec=True, fec_max_overhead=0.4
        )
        spec = controller_to_spec(controller)
        assert spec["adapt_fec"] is True and spec["fec_max_overhead"] == 0.4
        rebuilt = controller_from_spec(spec)
        assert rebuilt.adapt_fec and rebuilt.fec_max_overhead == 0.4

    def test_unknown_kinds_rejected(self):
        with pytest.raises(ValueError):
            estimator_from_spec({"kind": "bbr"})
        with pytest.raises(ValueError):
            abr_policy_from_spec({"kind": "oracle"})
        with pytest.raises(ValueError):
            controller_from_spec({"kind": "rl"})
        with pytest.raises(ValueError, match="preset"):
            preset_controller_spec("nope")

    def test_callable_predictor_cannot_ride_a_spec(self):
        policy = AiOrientedAbr(accuracy_predictor=lambda bps: 0.9)
        with pytest.raises(ValueError, match="callable"):
            abr_policy_to_spec(policy)


# ---------------------------------------------------------------------------
# End-to-end sessions: the loop actually closes, in both delivery modes
# ---------------------------------------------------------------------------


def _closed_loop_session(
    controller_spec,
    *,
    report_interval_s=0.2,
    uplink_loss=0.02,
    uplink_jitter=0.0,
    feedback_loss=0.0,
    feedback_jitter=0.0,
    fec_group_size=0,
    duration_s=2.0,
    seed=3,
):
    session = VideoTransportSession(
        uplink_config=PathConfig(
            loss_model=BernoulliLoss(uplink_loss), seed=seed, jitter_std_s=uplink_jitter
        ),
        feedback_config=PathConfig(
            loss_model=BernoulliLoss(feedback_loss), seed=seed + 1, jitter_std_s=feedback_jitter
        ),
        transport_config=TransportConfig(
            report_interval_s=report_interval_s,
            fec=FecConfig(group_size=fec_group_size) if fec_group_size else None,
        ),
        controller=controller_from_spec(controller_spec),
    )
    drive_closed_loop(session, FixedBitrateWorkload(bitrate_bps=2e6), duration_s)
    return session


def _trajectory(session):
    actions = tuple(
        (when, action.target_bitrate_bps, action.fec_overhead_ratio, action.reason)
        for when, action in session.control_log
    )
    completions = tuple(
        (event.frame_id, event.complete_time) for event in session.receiver.delivered_frames
    )
    summary = session.stats.summary()
    return (summary.count, summary.delivered, summary.mean_s, summary.p99_s,
            session.reports_received, actions, completions)


class TestClosedLoopSessions:
    def test_reports_drive_the_sender(self):
        session = _closed_loop_session(preset_controller_spec("gcc"))
        assert session.reports_received > 0
        # Initial action + one per delivered report.
        assert len(session.control_log) == session.reports_received + 1
        assert session.sender.target_bitrate_bps is not None
        assert session.stats.summary().delivered > 0

    def test_open_loop_sessions_are_unchanged(self):
        # report_interval_s defaults to 0: no collector, no feedback traffic
        # beyond NACKs, no controller — the pre-control-plane behaviour.
        session = VideoTransportSession(uplink_config=PathConfig(seed=1))
        assert session.receiver._reports is None
        session.send_frame(0, 5000)
        session.run()
        assert session.reports_received == 0 and session.control_log == []

    def test_controller_determinism_across_runs(self):
        first = _trajectory(_closed_loop_session(preset_controller_spec("aimd")))
        second = _trajectory(_closed_loop_session(preset_controller_spec("aimd")))
        assert first == second

    @pytest.mark.parametrize(
        "kwargs",
        [
            {},
            {"uplink_jitter": 0.002},
            {"feedback_loss": 0.05, "feedback_jitter": 0.002},
            {"fec_group_size": 5},
            {"fec_group_size": 5, "uplink_jitter": 0.001},
        ],
        ids=["plain", "jittered", "lossy_feedback", "fec", "fec_jittered"],
    )
    def test_scalar_and_fast_modes_agree_bit_exactly(self, monkeypatch, kwargs):
        spec = preset_controller_spec("gcc")
        monkeypatch.setenv(FASTPATH_ENV, "0")
        scalar = _trajectory(_closed_loop_session(spec, **kwargs))
        monkeypatch.setenv(FASTPATH_ENV, "1")
        fast = _trajectory(_closed_loop_session(spec, **kwargs))
        assert scalar == fast

    def test_reports_survive_a_lossy_reordering_feedback_path(self):
        # A lossless uplink means every feedback packet is a report (no
        # NACKs), so the path's delivery counter exactly measures how many
        # reports survived; dropped reports must simply thin the control log,
        # late/reordered ones must still be applied in arrival order.
        session = _closed_loop_session(
            preset_controller_spec("gcc"),
            uplink_loss=0.0,
            feedback_loss=0.3,
            feedback_jitter=0.005,
        )
        assert session.reports_received == session.feedback.stats.packets_delivered
        assert 0 < session.reports_received < session.feedback.stats.packets_offered
        assert len(session.control_log) == session.reports_received + 1
        applied = [when for when, _ in session.control_log[1:]]
        assert applied == sorted(applied)

    def test_report_arriving_after_last_frame_is_still_applied(self):
        # The last window's report fires and crosses the feedback path after
        # every frame has been delivered; the session must drain to idle
        # (the chain goes dormant) and the controller still sees the report.
        session = VideoTransportSession(
            uplink_config=PathConfig(seed=2),
            transport_config=TransportConfig(report_interval_s=0.2),
            controller=controller_from_spec(preset_controller_spec("gcc")),
        )
        session.send_frame(0, 8000, capture_time=0.0)
        session.run()  # run_until_idle: raises if the report chain never ends
        assert session.reports_received == 1
        last_delivery = session.receiver.delivered_frames[-1].complete_time
        assert session.control_log[-1][0] > last_delivery

    def test_adaptive_fec_retunes_group_size_mid_session(self):
        spec = {
            "kind": "closed_loop",
            "estimator": {"kind": "gcc"},
            "abr": {"kind": "throughput"},
            "adapt_fec": True,
        }
        session = _closed_loop_session(spec, uplink_loss=0.08, fec_group_size=5, duration_s=3.0)
        ratios = {action.fec_overhead_ratio for _, action in session.control_log}
        assert len(ratios) > 1  # loss varies window to window
        group_sizes = {fec_group_size_for_overhead(r) for r in ratios if r is not None}
        assert len(group_sizes) > 1  # the encoder was actually re-tuned
        assert session.sender._fec_encoder.config.group_size in group_sizes
        assert session.stats.summary().delivered > 0


# ---------------------------------------------------------------------------
# Acceptance: tracking the congestion sawtooth (ISSUE 7 criterion)
# ---------------------------------------------------------------------------


def _sawtooth_run(controller_spec, duration_s=20.0):
    scenario = family_scenarios("congestion_sawtooth", seed=0)[0]
    session = VideoTransportSession(
        uplink_config=PathConfig(
            loss_model=loss_model_from_spec(scenario.loss_model),
            bandwidth_trace=bandwidth_trace_from_spec(scenario.bandwidth_trace),
            seed=0,
        ),
        transport_config=TransportConfig(report_interval_s=0.1),
        controller=controller_from_spec(controller_spec),
    )
    drive_closed_loop(session, FixedBitrateWorkload(bitrate_bps=2e6), duration_s)
    trace = scenario.bandwidth_trace
    bounds = list(trace["times"]) + [duration_s]
    rates = trace["rates_bps"]
    sent = [0.0] * len(rates)
    delivered = [0.0] * len(rates)
    for record in session.stats.frames:
        i = int(np.searchsorted(bounds, record.send_time, side="right")) - 1
        if 0 <= i < len(sent):
            sent[i] += record.size_bytes
    for event in session.receiver.delivered_frames:
        i = int(np.searchsorted(bounds, event.complete_time, side="right")) - 1
        if 0 <= i < len(delivered):
            delivered[i] += event.size_bytes
    phases = []  # (capacity, offered/capacity, delivered/capacity) after warm-up
    for i in range(len(rates)):
        width = bounds[i + 1] - bounds[i]
        if bounds[i] >= 2.5:
            phases.append(
                (rates[i], sent[i] * 8 / width / rates[i], delivered[i] * 8 / width / rates[i])
            )
    return session, phases, min(rates), max(rates)


class TestSawtoothTracking:
    """The closed-loop acceptance criterion on the congestion_sawtooth family.

    Stated band: after a 2.5 s warm-up, the GCC + throughput-ABR sender keeps
    the delivered rate between 0.10x and 1.05x of the phase capacity in
    *every* 1.25 s trace phase, averaging at least 0.35x, with no congestion
    collapse (delivery ratio stays ~1).  The fixed baselines break the band
    in the advertised direction: the high one offers ~2x the trough capacity
    and collapses, the low one never exceeds 0.2x at the peaks.

    The GCC estimator spec is tuned for the 0.1 s report cadence (smaller
    trendline window, overuse threshold above the per-window delay noise of
    frame serialisation) — exactly the knob surface the JSON specs exist for.
    """

    GCC_SPEC = {
        "kind": "closed_loop",
        "estimator": {
            "kind": "gcc",
            "overuse_threshold_s": 0.012,
            "window": 8,
            "low_loss_threshold": 0.05,
        },
        "abr": {"kind": "throughput"},
    }

    def test_gcc_tracks_the_capacity_trace(self):
        session, phases, _, _ = _sawtooth_run(self.GCC_SPEC)
        delivered_util = [d for _, _, d in phases]
        assert all(0.10 <= u <= 1.05 for u in delivered_util), delivered_util
        assert float(np.mean(delivered_util)) >= 0.35
        assert session.stats.summary().delivery_ratio >= 0.95

    def test_fixed_high_overshoots_and_collapses(self):
        _, phases, trough, _ = _sawtooth_run({"kind": "fixed", "bitrate_bps": 2.0 * trough_rate()})
        offered_util = [o for _, o, _ in phases]
        delivered_util = [d for _, _, d in phases]
        assert max(offered_util) > 1.5  # offers ~2x the trough capacity
        assert float(np.mean(delivered_util)) < 0.25  # standing queues eat it

    def test_fixed_high_delivery_ratio_collapses(self):
        session, _, _, _ = _sawtooth_run({"kind": "fixed", "bitrate_bps": 2.0 * trough_rate()})
        assert session.stats.summary().delivery_ratio < 0.5

    def test_fixed_low_undershoots_the_peaks(self):
        session, phases, _, peak = _sawtooth_run({"kind": "fixed", "bitrate_bps": 0.15 * peak_rate()})
        peak_util = [d for cap, _, d in phases if cap >= 0.99 * peak]
        assert peak_util and all(u < 0.20 for u in peak_util)
        assert session.stats.summary().delivery_ratio >= 0.95  # wasteful, not broken

    def test_gcc_beats_the_low_baseline_on_mean_utilisation(self):
        _, gcc_phases, _, _ = _sawtooth_run(self.GCC_SPEC)
        _, low_phases, _, _ = _sawtooth_run({"kind": "fixed", "bitrate_bps": 0.15 * peak_rate()})
        gcc_mean = float(np.mean([d for _, _, d in gcc_phases]))
        low_mean = float(np.mean([d for _, _, d in low_phases]))
        assert gcc_mean > low_mean + 0.1


def trough_rate() -> float:
    scenario = family_scenarios("congestion_sawtooth", seed=0)[0]
    return min(scenario.bandwidth_trace["rates_bps"])


def peak_rate() -> float:
    scenario = family_scenarios("congestion_sawtooth", seed=0)[0]
    return max(scenario.bandwidth_trace["rates_bps"])
