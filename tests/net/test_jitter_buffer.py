"""Regression tests for the jitter buffer's playout clock and release logic.

Three bugs these tests pin down (all fixed):

1. ``JitterBuffer.push`` anchored the playback clock to the *current*
   frame's transit, degenerating every release to ``arrival + delay`` — a
   constant hold instead of a reconstructed playout clock.
2. ``JitterBuffer.pop_ready`` drained a FIFO deque, head-of-line blocking a
   ready frame behind a not-yet-ready one that arrived earlier.
3. ``PassthroughBuffer.pop_ready`` returned every released frame on every
   call — duplicates forever.
"""

import numpy as np
import pytest

from repro.net.jitter_buffer import (
    JitterBuffer,
    JitterBufferConfig,
    PassthroughBuffer,
    frames_in_capture_order,
)


class TestPlayoutClockAnchoring:
    def test_early_frame_held_for_full_playout_delay(self):
        """A frame at the minimum transit is held exactly the playout delay."""
        buffer = JitterBuffer(JitterBufferConfig(initial_delay_s=0.1))
        frame = buffer.push(0, capture_time=0.0, arrival_time=0.04)
        assert frame.release_time == pytest.approx(frame.arrival_time + 0.1)

    def test_late_frame_is_not_double_delayed(self):
        """A frame whose jitter already exceeds the delay releases on arrival.

        The old code anchored to the frame's own transit, so *every* frame —
        however late — was held the full playout delay on top of the jitter
        it had already suffered.
        """
        buffer = JitterBuffer(JitterBufferConfig(initial_delay_s=0.05))
        buffer.push(0, capture_time=0.0, arrival_time=0.03)  # establishes min transit
        late = buffer.push(1, capture_time=1 / 30, arrival_time=1 / 30 + 0.03 + 0.3)
        assert late.release_time == pytest.approx(late.arrival_time)

    def test_hold_shrinks_with_lateness(self):
        """The playback clock absorbs jitter: later frames are held less."""
        buffer = JitterBuffer(JitterBufferConfig(initial_delay_s=0.2, smoothing=0.0))
        buffer.push(0, capture_time=0.0, arrival_time=0.03)
        slightly_late = buffer.push(1, capture_time=0.1, arrival_time=0.1 + 0.03 + 0.05)
        very_late = buffer.push(2, capture_time=0.2, arrival_time=0.2 + 0.03 + 0.15)
        hold = lambda f: f.release_time - f.arrival_time
        assert hold(slightly_late) == pytest.approx(0.15)
        assert hold(very_late) == pytest.approx(0.05)
        assert hold(very_late) < hold(slightly_late)

    def test_not_a_constant_hold(self):
        """Regression: holds must vary with transit, not be one constant."""
        buffer = JitterBuffer(JitterBufferConfig(initial_delay_s=0.1))
        rng = np.random.default_rng(0)
        holds = []
        for i in range(50):
            capture = i / 30
            arrival = capture + 0.03 + float(rng.uniform(0, 0.08))
            frame = buffer.push(i, capture, arrival)
            holds.append(round(frame.release_time - frame.arrival_time, 9))
        assert len(set(holds)) > 1

    def test_mean_added_latency_below_playout_delay_under_jitter(self):
        """Jittered frames consume part of their hold in flight."""
        buffer = JitterBuffer(JitterBufferConfig(initial_delay_s=0.1))
        rng = np.random.default_rng(3)
        for i in range(200):
            capture = i / 30
            buffer.push(i, capture, capture + 0.03 + float(rng.uniform(0, 0.12)))
        buffer.pop_ready(now=1e9)
        assert 0.0 < buffer.added_latency() < buffer.playout_delay_s


class TestAdaptiveDelayConvergence:
    def test_delay_converges_under_constant_magnitude_jitter(self):
        """Alternating ±j/2 transit -> estimate -> j, delay -> initial + 4j."""
        config = JitterBufferConfig(initial_delay_s=0.05, jitter_multiplier=4.0, smoothing=0.1)
        buffer = JitterBuffer(config)
        jitter = 0.01
        for i in range(400):
            capture = i / 30
            transit = 0.03 + (jitter if i % 2 == 0 else 0.0)
            buffer.push(i, capture, capture + transit)
        assert buffer.jitter_estimate_s == pytest.approx(jitter, rel=0.05)
        assert buffer.playout_delay_s == pytest.approx(
            config.initial_delay_s + config.jitter_multiplier * jitter, rel=0.05
        )

    def test_delay_clamped_to_configured_range(self):
        config = JitterBufferConfig(initial_delay_s=0.05, max_delay_s=0.08)
        buffer = JitterBuffer(config)
        rng = np.random.default_rng(1)
        for i in range(100):
            capture = i / 30
            buffer.push(i, capture, capture + 0.03 + float(rng.uniform(0, 0.3)))
        assert buffer.playout_delay_s <= config.max_delay_s


class TestReleaseOrdering:
    def _buffer_with_inverted_releases(self):
        """Push A then B such that B's release precedes A's (jitter case)."""
        buffer = JitterBuffer(JitterBufferConfig(initial_delay_s=0.2, smoothing=0.0))
        buffer.push(0, capture_time=0.0, arrival_time=0.03)  # min transit anchor
        held = buffer.push(1, capture_time=1.0, arrival_time=1.03)  # held 0.2
        reordered = buffer.push(2, capture_time=0.9, arrival_time=1.031)  # clock 1.13
        assert reordered.release_time < held.release_time
        return buffer, held, reordered

    def test_ready_frame_not_blocked_by_unready_earlier_arrival(self):
        """Regression: the FIFO deque released [] here — head-of-line block."""
        buffer, held, reordered = self._buffer_with_inverted_releases()
        buffer.pop_ready(now=0.5)  # drain the anchor frame
        ready = buffer.pop_ready(now=(reordered.release_time + held.release_time) / 2)
        assert [frame.frame_id for frame in ready] == [2]
        assert [f.frame_id for f in buffer.pop_ready(now=held.release_time)] == [1]
        assert buffer.depth == 0

    def test_pop_ready_returns_release_time_order(self):
        buffer = JitterBuffer(JitterBufferConfig(initial_delay_s=0.15))
        rng = np.random.default_rng(7)
        for i in range(100):
            capture = i / 30
            buffer.push(i, capture, capture + 0.03 + float(rng.uniform(0, 0.1)))
        released = buffer.pop_ready(now=1e9)
        times = [frame.release_time for frame in released]
        assert times == sorted(times)
        assert len(released) == 100

    def test_depth_tracks_queue(self):
        buffer = JitterBuffer()
        buffer.push(0, 0.0, 0.03)
        buffer.push(1, 1 / 30, 1 / 30 + 0.03)
        assert buffer.depth == 2
        buffer.pop_ready(now=1e9)
        assert buffer.depth == 0


class TestPassthroughSingleDrain:
    def test_each_frame_drained_exactly_once(self):
        """Regression: every call used to return every frame again."""
        buffer = PassthroughBuffer()
        for i in range(5):
            buffer.push(i, i / 30, i / 30 + 0.02)
        first = buffer.pop_ready(now=1.0)
        assert [frame.frame_id for frame in first] == [0, 1, 2, 3, 4]
        assert buffer.pop_ready(now=2.0) == []
        assert buffer.pop_ready(now=3.0) == []

    def test_drain_respects_now(self):
        buffer = PassthroughBuffer()
        buffer.push(0, 0.0, 0.5)
        assert buffer.pop_ready(now=0.1) == []
        assert [f.frame_id for f in buffer.pop_ready(now=1.0)] == [0]

    def test_incremental_drain_partitions_frames(self):
        buffer = PassthroughBuffer()
        early = buffer.push(0, 0.0, 0.1)
        late = buffer.push(1, 0.05, 0.9)
        assert buffer.pop_ready(now=0.5) == [early]
        assert buffer.pop_ready(now=1.0) == [late]

    def test_released_history_retained_for_benchmark(self):
        buffer = PassthroughBuffer()
        for i in range(3):
            buffer.push(i, i / 30, i / 30 + 0.02)
        buffer.pop_ready(now=1.0)
        assert [frame.frame_id for frame in buffer.released] == [0, 1, 2]
        assert buffer.added_latency() == 0.0


class TestCaptureOrderEquivalence:
    """Section 2.1: sorting by capture time makes the MLLM input jitter-invariant."""

    def test_passthrough_vs_jitter_buffer_same_mllm_input(self):
        rng = np.random.default_rng(11)
        captures = [i / 30 for i in range(60)]
        arrivals = [c + 0.03 + float(rng.uniform(0, 0.07)) for c in captures]
        passthrough = PassthroughBuffer()
        buffered = JitterBuffer()
        for i, (capture, arrival) in enumerate(zip(captures, arrivals)):
            passthrough.push(i, capture, arrival)
            buffered.push(i, capture, arrival)
        direct = passthrough.pop_ready(now=1e9)
        held = buffered.pop_ready(now=1e9)
        assert [f.frame_id for f in frames_in_capture_order(direct)] == [
            f.frame_id for f in frames_in_capture_order(held)
        ]

    def test_arrival_reordering_does_not_change_capture_order(self):
        rng = np.random.default_rng(13)
        captures = [i / 30 for i in range(50)]
        smooth = PassthroughBuffer()
        jittered = PassthroughBuffer()
        # Push the jittered frames in (shuffled) arrival order: reordering on
        # the wire must not leak into the model input either.
        order = rng.permutation(len(captures))
        for i, capture in enumerate(captures):
            smooth.push(i, capture, capture + 0.03)
        for i in order:
            capture = captures[i]
            jittered.push(int(i), capture, capture + 0.03 + float(rng.uniform(0, 0.05)))
        smooth_ids = [f.frame_id for f in frames_in_capture_order(smooth.pop_ready(1e9))]
        jitter_ids = [f.frame_id for f in frames_in_capture_order(jittered.pop_ready(1e9))]
        assert smooth_ids == jitter_ids
