"""Shared test fixtures."""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _isolated_fingerprint_memo(tmp_path, monkeypatch):
    """Keep the sweep engine's fingerprint memo out of the real ~/.cache.

    Tests that exercise ``SweepRunner`` (directly or through examples) would
    otherwise create/rewrite ``~/.cache/repro/fingerprint.json`` on the
    developer's machine.  Tests that care about the memo itself
    (``TestFingerprintMemo``) override the env var again with their own path.
    """
    from repro.analysis import sweeps

    monkeypatch.setenv(sweeps.FINGERPRINT_MEMO_ENV, str(tmp_path / "fingerprint-memo.json"))
