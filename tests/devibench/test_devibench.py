"""Tests for the DeViBench data model, pipeline stages, evaluation and stats."""

import numpy as np
import pytest

from repro.devibench import (
    BenchmarkEvaluator,
    CrossVerifier,
    DeViBench,
    DeViBenchPipeline,
    GenerationConfig,
    QAFilter,
    QAGenerator,
    QASample,
    QA_GENERATION_PROMPT,
    VideoCollection,
    build_benchmark,
    coarse_qa_breakage_rate,
    figure8_distribution,
    figure8_temporal_split,
    format_figure8,
    format_table1,
    table1_rows,
)
from repro.video.scene import CATEGORY_TEXT_RICH, build_scene_corpus


# A small, fast corpus shared by the pipeline tests.  The degraded rendition
# bitrate is scaled to the reduced test resolution so that — as in the full-
# size setup — fine detail breaks while coarse content survives.
SMALL = dict(height=180, width=320)


@pytest.fixture(scope="module")
def collection():
    scenes = build_scene_corpus(4, seed=0, **SMALL)
    return VideoCollection(scenes=scenes, low_bitrate_bps=50_000, frames_per_video=2)


@pytest.fixture(scope="module")
def prepared(collection):
    return {p.scene.name: p for p in collection.prepare_all()}


@pytest.fixture(scope="module")
def pipeline_report(collection):
    return DeViBenchPipeline(collection=collection, generator=QAGenerator(GenerationConfig(seed=1))).run()


class TestQASample:
    def _sample(self, **overrides):
        base = dict(
            sample_id="abc",
            scene_name="s",
            question="What is the score?",
            options=("3-2", "1-4", "2-2", "5-0"),
            correct_letter="A",
            category=CATEGORY_TEXT_RICH,
            multi_frame=False,
            detail_scale=0.9,
            object_name="scoreboard",
            fact_key="score",
            ground_truth="3-2",
        )
        base.update(overrides)
        return QASample(**base)

    def test_grading_by_letter_and_text(self):
        sample = self._sample()
        assert sample.is_correct("A")
        assert sample.is_correct("3-2")
        assert not sample.is_correct("B")
        assert not sample.is_correct("1-4")

    def test_correct_letter_must_match_ground_truth(self):
        with pytest.raises(ValueError):
            self._sample(correct_letter="B")

    def test_option_count_validation(self):
        with pytest.raises(ValueError):
            self._sample(options=("3-2",))

    def test_to_fact_round_trip(self):
        fact = self._sample().to_fact()
        assert fact.value == "3-2"
        assert fact.category == CATEGORY_TEXT_RICH

    def test_option_letter_for(self):
        sample = self._sample()
        assert sample.option_letter_for("1-4") == "B"
        assert sample.option_letter_for("nope") is None


class TestDatasetContainer:
    def test_serialisation_round_trip(self, pipeline_report, tmp_path):
        benchmark = pipeline_report.benchmark
        path = tmp_path / "bench.json"
        benchmark.save(path)
        loaded = DeViBench.load(path, scenes=benchmark.scenes)
        assert len(loaded) == len(benchmark)
        assert loaded.samples[0].question == benchmark.samples[0].question

    def test_category_distribution_sums_to_one(self, pipeline_report):
        benchmark = pipeline_report.benchmark
        if len(benchmark) == 0:
            pytest.skip("empty benchmark for this tiny corpus")
        assert sum(benchmark.category_distribution().values()) == pytest.approx(1.0)

    def test_scene_lookup(self, pipeline_report):
        benchmark = pipeline_report.benchmark
        if len(benchmark) == 0:
            pytest.skip("empty benchmark for this tiny corpus")
        sample = benchmark.samples[0]
        assert benchmark.scene_for(sample).name == sample.scene_name

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            DeViBench.from_json('{"format": "other", "samples": []}')


class TestVideoCollection:
    def test_prepare_degrades_video(self, prepared):
        video = next(iter(prepared.values()))
        assert video.frame_count == 2
        original = video.original_frames[0].pixels
        degraded = video.degraded_frames[0].pixels
        assert original.shape == degraded.shape
        assert not np.allclose(original, degraded)

    def test_concatenated_frames_are_side_by_side(self, prepared):
        video = next(iter(prepared.values()))
        concat = video.concatenated_frames()[0]
        assert concat.shape[1] == 2 * video.original_frames[0].width

    def test_validation(self):
        with pytest.raises(ValueError):
            VideoCollection(scenes=[], low_bitrate_bps=0)
        with pytest.raises(ValueError):
            VideoCollection(scenes=[], frames_per_video=0)
        with pytest.raises(ValueError):
            VideoCollection(scenes=[]).prepare_all()

    def test_synthetic_builder(self):
        collection = VideoCollection.synthetic(video_count=2, seed=1, **SMALL)
        assert len(collection.scenes) == 2


class TestGeneration:
    def test_prompt_contains_required_sections(self):
        for section in ("Persona", "Context", "Core task", "Execution steps", "Constraints", "Output format"):
            assert section in QA_GENERATION_PROMPT

    def test_candidates_cover_detail_and_coarse(self, collection, prepared):
        generator = QAGenerator(GenerationConfig(seed=2))
        candidates = generator.generate_for_video(next(iter(prepared.values())))
        kinds = {candidate.kind for candidate in candidates}
        assert kinds == {"detail", "coarse"}
        # Every fact yields (detail + coarse) variants.
        scene = next(iter(prepared.values())).scene
        per_fact = 1 + generator.config.coarse_variants_per_fact
        assert len(candidates) == per_fact * len(scene.facts)

    def test_candidate_options_contain_answer(self, prepared):
        generator = QAGenerator(GenerationConfig(seed=2))
        for candidate in generator.generate_for_video(next(iter(prepared.values()))):
            assert candidate.generator_answer in candidate.sample.options
            assert candidate.sample.ground_truth == candidate.generator_answer

    def test_generation_is_deterministic(self, prepared):
        video = next(iter(prepared.values()))
        first = QAGenerator(GenerationConfig(seed=3)).generate_for_video(video)
        second = QAGenerator(GenerationConfig(seed=3)).generate_for_video(video)
        assert [c.sample.sample_id for c in first] == [c.sample.sample_id for c in second]

    def test_hallucination_rate_zero_means_always_truthful(self, prepared):
        generator = QAGenerator(GenerationConfig(seed=4, hallucination_rate=0.0))
        for candidate in generator.generate_for_video(next(iter(prepared.values()))):
            assert not candidate.hallucinated

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GenerationConfig(hallucination_rate=1.5)
        with pytest.raises(ValueError):
            GenerationConfig(detail_variants_per_fact=0)


class TestFilteringAndVerification:
    def test_filter_accepts_only_quality_sensitive(self, collection, prepared):
        generator = QAGenerator(GenerationConfig(seed=5, hallucination_rate=0.0, unanswerable_rate=0.0))
        candidates = generator.generate(list(prepared.values()))
        report = QAFilter(seed=7).run(candidates, prepared)
        assert 0.0 < report.acceptance_rate < 0.6
        # Accepted candidates skew towards high detail; rejected include the coarse chaff.
        accepted_detail = np.mean([c.sample.detail_scale for c in report.accepted])
        all_detail = np.mean([c.sample.detail_scale for c in candidates])
        assert accepted_detail > all_detail

    def test_verifier_rejects_some_fine_grained_candidates(self, collection, prepared):
        generator = QAGenerator(GenerationConfig(seed=5, hallucination_rate=0.0, unanswerable_rate=0.0))
        candidates = generator.generate(list(prepared.values()))
        accepted = QAFilter(seed=7).run(candidates, prepared).accepted
        if not accepted:
            pytest.skip("tiny corpus produced no accepted candidates")
        verification = CrossVerifier(seed=11, cross_model_disagreement=0.5).run(accepted, prepared)
        assert 0.0 <= verification.approval_rate <= 1.0
        lenient = CrossVerifier(seed=11, cross_model_disagreement=0.0).run(accepted, prepared)
        assert lenient.approval_rate >= verification.approval_rate

    def test_verifier_validation(self):
        with pytest.raises(ValueError):
            CrossVerifier(cross_model_disagreement=1.0)


class TestPipelineAndStats:
    def test_pipeline_produces_report(self, pipeline_report):
        funnel = pipeline_report.funnel()
        assert funnel["generated"] > 0
        assert 0.0 <= funnel["filter_acceptance_rate"] <= 1.0
        assert pipeline_report.estimated_money_usd > 0
        assert pipeline_report.estimated_time_s > 0

    def test_table1_rows_and_formatting(self, pipeline_report):
        rows = table1_rows(pipeline_report)
        assert {row.metric for row in rows} >= {"Number of QA samples", "Total money spent ($)"}
        text = format_table1(pipeline_report)
        assert "Filter acceptance" in text

    def test_figure8_helpers(self, pipeline_report):
        benchmark = pipeline_report.benchmark
        rows = figure8_distribution(benchmark)
        assert len(rows) == 6
        split = figure8_temporal_split(benchmark)
        assert split["multi_frame_fraction"] + split["single_frame_fraction"] == pytest.approx(1.0)
        assert "multi-frame" in format_figure8(benchmark)

    def test_build_benchmark_smoke(self):
        report = build_benchmark(video_count=2, seed=1, height=180, width=320)
        assert report.generated_candidates > 0


class TestEvaluator:
    def test_evaluator_rejects_empty_benchmark(self):
        with pytest.raises(ValueError):
            BenchmarkEvaluator(DeViBench([]))

    def test_accuracy_improves_with_bitrate(self, pipeline_report):
        benchmark = pipeline_report.benchmark
        if len(benchmark) < 2:
            pytest.skip("tiny corpus produced too few samples")
        evaluator = BenchmarkEvaluator(benchmark, rate_fps=2.0)
        low = evaluator.evaluate(40_000.0, context_aware=False)
        high = evaluator.evaluate(800_000.0, context_aware=False)
        assert high.accuracy >= low.accuracy

    def test_context_aware_no_worse_than_baseline(self, pipeline_report):
        benchmark = pipeline_report.benchmark
        if len(benchmark) < 2:
            pytest.skip("tiny corpus produced too few samples")
        evaluator = BenchmarkEvaluator(benchmark, rate_fps=2.0)
        baseline = evaluator.evaluate(60_000.0, context_aware=False)
        ours = evaluator.evaluate(60_000.0, context_aware=True)
        assert ours.accuracy >= baseline.accuracy

    def test_coarse_qa_breakage_structure(self, collection):
        result = coarse_qa_breakage_rate(collection)
        assert set(result) == {"total_coarse_qa", "flipped", "flip_rate", "paper_flip_rate"}
        assert 0.0 <= result["flip_rate"] <= 1.0
