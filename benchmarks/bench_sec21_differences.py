"""Section 2.1 — the four differences between AI Video Chat and traditional RTC.

* QoE becomes MLLM accuracy (exercised throughout Figure 9's bench).
* Jitter has no impact: the MLLM orders frames by capture timestamp, so a
  jittered delivery produces an identical model input while a human-oriented
  jitter buffer pays real latency.
* Receiver (MLLM-perceived) throughput is far below sender throughput.
* Uplink is more pressing than downlink: the reply is a few hundred tokens.
"""

from repro.analysis import (
    format_mapping,
    run_section21_jitter_invariance,
    run_section21_throughput_asymmetry,
)


def test_sec21_jitter_has_no_impact(benchmark):
    result = benchmark.pedantic(run_section21_jitter_invariance, rounds=1, iterations=1)
    print()
    print(format_mapping("Section 2.1 — jitter invariance", result))

    # The human-oriented jitter buffer pays tens of milliseconds; the
    # AI-oriented passthrough pays nothing and the MLLM input is unchanged.
    assert result["jitter_buffer_added_latency_ms"] > 10.0
    assert result["passthrough_added_latency_ms"] == 0.0
    assert result["mllm_input_identical"] == 1.0


def test_sec21_uplink_dominates_downlink(benchmark):
    result = benchmark.pedantic(run_section21_throughput_asymmetry, rounds=1, iterations=1)
    print()
    print(format_mapping("Section 2.1 — throughput asymmetry", result))

    assert result["receiver_perceived_bps"] < result["sender_throughput_bps"] / 10
    assert result["uplink_to_downlink_ratio"] > 100
