"""Benchmark the vectorized simulation fast path against the scalar baseline.

Times the canonical hot-path workloads (single 10 s sessions under three
loss models, a dense-trace session, an 18-cell smoke sweep through the
multiprocessing pool, and FEC encode/decode at scale) twice — once with
``REPRO_NET_FASTPATH=0`` (scalar reference: per-packet RNG draws,
linear-scan trace lookups) and once with the vectorized fast path — after
asserting that both paths produce bit-identical statistics for identical
seeds.  Emits the ``BENCH_sweep.json`` trajectory snapshot at the repo
root.

Run with:
    PYTHONPATH=src python benchmarks/bench_perf_hotpath.py            # full run
    PYTHONPATH=src python benchmarks/bench_perf_hotpath.py --smoke    # CI-sized run

See docs/PERFORMANCE.md for how to read the output and add workloads.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.perfbench import (  # noqa: E402 (path bootstrap above)
    DEFAULT_BENCH_PATH,
    profile_workloads,
    render_table,
    run_benchmarks,
    write_bench_json,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: 2 s sessions, 1 s sweep cells, single repeat",
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_BENCH_PATH,
        help=f"output JSON path (default: {DEFAULT_BENCH_PATH} in the CWD)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timing repetitions per workload (default: best-of-3, median reported)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="sweep pool size (default: one per cell up to the CPU count)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "cProfile each fast-path workload and print the top-20 functions "
            "by cumulative time, so the next perf PR starts from data "
            "(skips timing/gates; the sweep profile mostly shows pool wait)"
        ),
    )
    args = parser.parse_args()

    if args.profile:
        profile_workloads(smoke=args.smoke, processes=args.processes)
        return 0

    payload = run_benchmarks(smoke=args.smoke, repeats=args.repeats, processes=args.processes)
    destination = write_bench_json(payload, args.out)
    print(render_table(payload))
    print(f"\nwrote {destination}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
