"""Figure 8 — distribution of DeViBench QA samples.

Outer ring: category mix (text-rich understanding dominates at ~55 % in the
paper).  Inner ring: single-frame vs multi-frame questions (~34 % multi).
"""

from repro.devibench import figure8_distribution, figure8_temporal_split, format_figure8
from repro.video.scene import CATEGORY_TEXT_RICH


def test_fig8_distribution(benchmark, devibench):
    rows = benchmark.pedantic(lambda: figure8_distribution(devibench), rounds=1, iterations=1)
    print()
    print(format_figure8(devibench))

    fractions = {row.category: row.reproduced_fraction for row in rows}
    # Text-rich understanding is the dominant accepted category, as in the paper.
    assert fractions[CATEGORY_TEXT_RICH] == max(fractions.values())
    # Several distinct categories survive the funnel.
    assert sum(1 for value in fractions.values() if value > 0) >= 4

    split = figure8_temporal_split(devibench)
    # Both temporal types are present and single-frame questions dominate,
    # matching the paper's 65.55 % / 34.45 % split direction.
    assert 0.0 < split["multi_frame_fraction"] < 0.6
