"""Compare a fresh benchmark snapshot against the committed baseline.

CI runs the smoke benchmark on every push; this script fails the step when
any workload regresses by more than the tolerance against the committed
baseline.  The compared metric depends on where the snapshots came from:

* **Same host fingerprint** (cpu_count + platform): fast-path *throughput*
  — workload units per wall second (simulated seconds for sessions, frames
  for the FEC codec, cell-seconds for the sweep).  Units are
  size-independent, so a 2 s smoke session is comparable with a 10 s one.
* **Different hosts** (a shared CI runner vs the container the baseline
  was generated on): absolute wall seconds are not comparable, so the
  *speedup* (scalar / fast on the same machine, itself host-normalised) is
  compared instead.

Equivalence failures already abort inside the harness; this adds the
performance floor the previous CI step lacked (it only failed on crash or
broken equivalence).

Usage:
    python benchmarks/compare_bench.py BENCH_sweep.smoke.json BENCH_sweep.json
    python benchmarks/compare_bench.py fresh.json baseline.json --tolerance 0.25
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Fraction of committed throughput/speedup a workload may lose before CI fails.
DEFAULT_TOLERANCE = 0.25


def host_fingerprint(payload: dict) -> tuple:
    host = payload.get("host", {})
    return (host.get("cpu_count"), host.get("platform"))


def load_payload(path: Path) -> dict:
    return json.loads(path.read_text(encoding="utf-8"))


def extract_metric(payload: dict, metric: str) -> dict[str, float]:
    out: dict[str, float] = {}
    for entry in payload.get("benchmarks", []):
        if metric == "throughput":
            units = entry.get("units") or 0.0
            after = entry.get("after_s") or 0.0
            if units > 0.0 and after > 0.0:
                out[entry["name"]] = units / after
        else:
            speedup = entry.get("speedup") or 0.0
            if speedup > 0.0:
                out[entry["name"]] = speedup
    return out


def compare(
    fresh: dict[str, float],
    baseline: dict[str, float],
    tolerance: float,
    unit: str = "u/s",
) -> tuple[list[str], list[str]]:
    """Returns (report lines, failure lines)."""
    lines: list[str] = []
    failures: list[str] = []
    for name in sorted(baseline):
        base = baseline[name]
        now = fresh.get(name)
        if now is None:
            lines.append(f"{name:<32} baseline {base:9.2f} {unit}  (absent from fresh run)")
            continue
        ratio = now / base if base > 0 else float("inf")
        status = "ok"
        if ratio < 1.0 - tolerance:
            status = f"REGRESSION (>{tolerance:.0%} loss)"
            failures.append(
                f"{name}: {now:.2f} {unit} vs committed {base:.2f} {unit} "
                f"({ratio:.2f}x, floor {1.0 - tolerance:.2f}x)"
            )
        lines.append(
            f"{name:<32} baseline {base:9.2f} {unit}  fresh {now:9.2f} {unit}  "
            f"({ratio:5.2f}x) {status}"
        )
    for name in sorted(set(fresh) - set(baseline)):
        lines.append(f"{name:<32} fresh-only {fresh[name]:9.2f} {unit}")
    return lines, failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", type=Path, help="snapshot from this run")
    parser.add_argument("baseline", type=Path, help="committed snapshot to compare against")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"allowed fractional metric loss (default {DEFAULT_TOLERANCE})",
    )
    args = parser.parse_args()

    fresh_payload = load_payload(args.fresh)
    baseline_payload = load_payload(args.baseline)
    same_host = host_fingerprint(fresh_payload) == host_fingerprint(baseline_payload)
    metric = "throughput" if same_host else "speedup"
    unit = "u/s" if same_host else "x speedup"
    if not same_host:
        print(
            "host differs from the baseline's; comparing scalar/fast speedups "
            "(absolute wall seconds are not comparable across machines)"
        )
    baseline = extract_metric(baseline_payload, metric)
    if not baseline:
        # An old-schema snapshot carries no comparable data yet.
        print(f"no {metric} data in {args.baseline}; skipping comparison")
        return 0
    fresh = extract_metric(fresh_payload, metric)
    lines, failures = compare(fresh, baseline, args.tolerance, unit)
    print("\n".join(lines))
    if failures:
        print(f"\nperf-smoke {metric} regression:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
