"""Shared fixtures for the benchmark harness.

The DeViBench construction is the most expensive shared step (it encodes a
corpus of synthetic scenes at 200 Kbps and runs three simulated MLLMs), so a
single session-scoped build is shared by the Table 1, Figure 8 and Figure 9
benches.  Benches that only need one scene build their own inputs.
"""

from __future__ import annotations

import pytest

from repro.devibench import build_benchmark

#: Corpus size used by the benchmark harness.  Larger values sharpen the
#: statistics (and slow the run roughly linearly); 8 keeps the whole harness
#: to a few minutes while producing a benchmark with every category present.
BENCH_VIDEO_COUNT = 8
BENCH_SEED = 0


@pytest.fixture(scope="session")
def devibench_report():
    """One DeViBench pipeline run shared across the harness."""
    return build_benchmark(video_count=BENCH_VIDEO_COUNT, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def devibench(devibench_report):
    return devibench_report.benchmark
