"""Figure 2 — sender throughput versus what the MLLM actually perceives.

The paper's point: the sender captures 30-60 FPS at full resolution, but the
MLLM ingests at most 2 FPS and ≤602,112 pixels per frame, so most of what a
traditional RTC stack would ship is redundancy the receiver cannot perceive.
"""

from repro.analysis import format_mapping, run_experiment


def test_fig2_redundancy(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("figure2_redundancy", capture_fps=60.0, duration_s=1.0),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_mapping("Figure 2 — sender vs MLLM-perceived throughput", result))

    # Paper claim: the MLLM processes at most 2 FPS, so at a 60 FPS capture
    # rate ~97 % of frames are redundant (Figure 2's red frames).
    assert result["mllm_fps"] <= 2.0
    assert result["frame_redundancy"] > 0.9
    assert result["pixel_redundancy"] > 0.9
    # Receiver-perceived throughput is more than an order of magnitude below
    # the sender's raw throughput.
    assert result["perceived_throughput_bps"] < result["sender_throughput_bps"] / 10
