"""Figure 3 — frame transmission latency vs bitrate and packet loss.

Reproduces the paper's prototype measurement on the emulated 10 Mbps /
30 ms path: latency rises with bitrate even below the bandwidth (more
packets per frame ⇒ more retransmission rounds under loss) and explodes
once the bitrate exceeds the bandwidth.  The grey region is where
traditional ABR operates; the yellow region (ultra-low bitrate) is the
operating point AI Video Chat can exploit.
"""

from repro.analysis import format_figure3, run_experiment


def _rows():
    return run_experiment(
        "figure3_latency",
        bitrates_bps=(200_000, 1_000_000, 4_000_000, 8_000_000, 12_000_000),
        loss_rates=(0.0, 0.01, 0.05),
        duration_s=15.0,
    )


def test_fig3_latency_vs_bitrate_and_loss(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    print()
    print(format_figure3(rows))

    def mean(bitrate, loss):
        return next(r.mean_latency_ms for r in rows if r.bitrate_bps == bitrate and r.loss_rate == loss)

    # Below the bandwidth, latency grows with bitrate under loss.
    assert mean(200_000, 0.05) < mean(4_000_000, 0.05) < mean(8_000_000, 0.05)
    # Loss increases latency at a fixed bitrate.
    assert mean(4_000_000, 0.05) > mean(4_000_000, 0.0)
    # Above the bandwidth (12 Mbps > 10 Mbps), latency blows up (grey→overload).
    assert mean(12_000_000, 0.0) > 5 * mean(8_000_000, 0.0)
    # The ultra-low-bitrate (yellow region) point stays near the propagation delay.
    assert mean(200_000, 0.01 if any(r.loss_rate == 0.01 for r in rows) else 0.0) < 60.0
