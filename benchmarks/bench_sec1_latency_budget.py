"""Section 1 — the 300 ms response budget and the ≤68 ms left for transmission.

Reproduces the paper's opening arithmetic (300 ms target − ≥232 ms inference
⇒ ≤68 ms for the whole RTC pipeline) and assembles measured latency budgets
for traditional-ABR and AI-oriented operating points, including one full
end-to-end dialogue turn over the emulated network.
"""

from repro.analysis import format_mapping, run_end_to_end_turn, run_section1_latency_budget


def test_sec1_latency_budget(benchmark):
    result = benchmark.pedantic(run_section1_latency_budget, rounds=1, iterations=1)
    print()
    print(format_mapping("Section 1 — response latency budgets", result))

    headline = result["headline"]
    assert headline["transmission_budget_ms"] <= 68.0 + 1e-6
    assert headline["inference_floor_ms"] >= 232.0 - 1e-6

    traditional = result["traditional-abr-8mbps-lossy"]
    ai_oriented = result["ai-oriented-context-aware-200kbps"]
    # Traditional operating points blow through the 300 ms target; the
    # AI-oriented ultra-low-bitrate point keeps transmission within budget.
    assert traditional["total_ms"] > ai_oriented["total_ms"]
    assert ai_oriented["transmission_ms"] < 68.0


def test_sec1_end_to_end_turn(benchmark):
    result = benchmark.pedantic(
        lambda: run_end_to_end_turn(context_aware=True, target_bitrate_bps=300_000.0),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_mapping("Section 1 — one measured dialogue turn", result))

    # Inference dominates the response latency, and uplink transmission fits
    # in a small slice of the budget at the AI-oriented bitrate.
    assert result["inference_ms"] > result["transmission_ms"]
    assert result["transmission_ms"] < 100.0
    assert result["correct"] == 1.0
