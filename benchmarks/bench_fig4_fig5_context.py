"""Figures 4 and 5 — why video should be context-aware.

Figure 4: the same 200 Kbps degradation leaves a coarse question answerable
but breaks a detail question — quality sensitivity depends on the chat
context.  Figure 5: CLIP-style correlation between the user's words and
video patches points at the chat-relevant region, including indirectly
(season → grass).
"""

from repro.analysis import (
    format_figure5,
    format_mapping,
    run_figure4_context_dependence,
    run_figure5_correlation_maps,
)


def test_fig4_context_dependence(benchmark):
    result = benchmark.pedantic(run_figure4_context_dependence, rounds=1, iterations=1)
    print()
    print(format_mapping("Figure 4 — quality sensitivity depends on the question", result))

    # At high bitrate both questions are answered correctly.
    assert result["high_bitrate"]["coarse_question_correct"]
    assert result["high_bitrate"]["detail_question_correct"]
    # At 200 Kbps the coarse question still works but the detail question breaks.
    assert result["low_bitrate"]["coarse_question_correct"]
    assert not result["low_bitrate"]["detail_question_correct"]


def test_fig5_correlation_maps(benchmark):
    cases = benchmark.pedantic(run_figure5_correlation_maps, rounds=1, iterations=1)
    print()
    print(format_figure5(cases))

    # Every dialogue's expected region is the most correlated one, including
    # the indirect season→grass inference of Figure 5's third dialogue.
    for case in cases:
        assert case.target_is_most_relevant, case.question
        assert case.target_correlation > 0.3
