"""Section 2.3 — existing (coarse) QA barely notices 200 Kbps degradation.

The paper transcodes StreamingBench videos to 200 Kbps and finds only ~8 %
of its QA samples flip from correct to wrong — existing benchmarks are too
coarse-grained to measure streaming-quality damage, which is why DeViBench
is needed.
"""

from repro.analysis import format_mapping, run_section23_coarse_qa


def test_sec23_coarse_qa_breakage(benchmark):
    result = benchmark.pedantic(
        lambda: run_section23_coarse_qa(video_count=6, seed=0), rounds=1, iterations=1
    )
    print()
    print(format_mapping("Section 2.3 — coarse-QA flip rate at 200 Kbps", result))

    # The large majority of coarse questions survive 200 Kbps: the flip rate
    # stays far below 50 % and in the neighbourhood of the paper's 8 %.
    assert result["total_coarse_qa"] > 0
    assert result["flip_rate"] <= 0.25
