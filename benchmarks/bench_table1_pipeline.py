"""Table 1 / Figure 6 — the DeViBench automatic construction pipeline.

Runs the five-step pipeline (collect → preprocess → generate → filter →
cross-verify) over the synthetic corpus and reports the Table 1 rows plus
the acceptance funnel (paper: 11.16 % filter acceptance, 70.61 %
cross-verification pass, ≈7.8 % overall yield).
"""

from repro.devibench import format_table1


def test_table1_pipeline_funnel(benchmark, devibench_report):
    # The construction itself happens once in the shared fixture; benchmark
    # the (cheap) summary so pytest-benchmark still reports a timing row.
    report = devibench_report
    benchmark.pedantic(lambda: report.funnel(), rounds=1, iterations=1)
    print()
    print(format_table1(report))

    funnel = report.funnel()
    assert len(report.benchmark) > 0
    # Filtering is the aggressive stage: acceptance stays low, within a few
    # fold of the paper's 11.16 %.
    assert 0.02 <= funnel["filter_acceptance_rate"] <= 0.35
    # Cross-verification removes a minority of accepted samples (paper 70.61 % pass).
    assert 0.5 <= funnel["verification_approval_rate"] <= 1.0
    # Overall yield is a small fraction of generated candidates (paper 7.8 %).
    assert funnel["overall_yield"] <= 0.25
    # Every benchmark sample is a four-option (or fewer) multiple-choice question.
    assert all(2 <= len(sample.options) <= 4 for sample in report.benchmark)
