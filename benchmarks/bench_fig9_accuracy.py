"""Figure 9 — context-aware streaming keeps MLLM accuracy at half the bitrate.

Paper numbers (free-response DeViBench, Kvazaar encodes): the baseline drops
from 0.73 accuracy at 827.9 Kbps to 0.33 at 426.4 Kbps, while context-aware
streaming only drops from 0.93 at 850.1 Kbps to 0.87 at 432.7 Kbps.  We are
on a simulated codec and a synthetic corpus, so absolute bitrates differ,
but the shape must hold: when the bitrate is halved into the scarce regime,
the uniform baseline loses most of its headroom while the context-aware
encoder keeps accuracy close to its high-bitrate level.
"""

from repro.analysis import format_figure9, run_experiment

BITRATES = (850_000.0, 430_000.0, 200_000.0, 120_000.0)


def _series(devibench):
    return run_experiment("figure9_accuracy", benchmark=devibench, bitrates_bps=BITRATES)


def test_fig9_accuracy_vs_bitrate(benchmark, devibench):
    points = benchmark.pedantic(lambda: _series(devibench), rounds=1, iterations=1)
    print()
    print(format_figure9(points))

    def accuracy(method, bitrate):
        return next(
            p.accuracy for p in points if p.method == method and p.target_bitrate_bps == bitrate
        )

    high, half = BITRATES[0], BITRATES[1]
    baseline_halving_drop = accuracy("baseline", high) - accuracy("baseline", half)
    ours_halving_drop = accuracy("context-aware", high) - accuracy("context-aware", half)

    # Who wins: context-aware is at least as accurate as the baseline at every
    # scarce-bitrate operating point.
    for bitrate in BITRATES[1:]:
        assert accuracy("context-aware", bitrate) >= accuracy("baseline", bitrate)
    # Shape: halving the bitrate (the paper's 850→430 Kbps move) costs the
    # baseline more accuracy than context-aware streaming...
    assert baseline_halving_drop >= ours_halving_drop
    # ...and somewhere in the scarce regime context-aware holds a clear lead.
    best_gap = max(
        accuracy("context-aware", bitrate) - accuracy("baseline", bitrate)
        for bitrate in BITRATES[1:]
    )
    assert best_gap >= 0.05
    # Context-aware accuracy stays close to its high-bitrate level at half rate.
    assert ours_halving_drop <= 0.1
