"""Figure 10 — where the bits go at a matched bitrate.

At roughly the same total bitrate (the paper's 430 vs 425 Kbps example), the
context-aware encoder spends more bits on chat-important regions (purple
circles) and fewer on chat-irrelevant regions (yellow circles), which is
what lifts MLLM accuracy.
"""

from repro.analysis import format_mapping, run_figure10_qp_allocation


def test_fig10_bit_allocation(benchmark):
    result = benchmark.pedantic(
        lambda: run_figure10_qp_allocation(target_bitrate_bps=430_000.0), rounds=1, iterations=1
    )
    print()
    print(format_mapping("Figure 10 — matched-bitrate bit allocation", result))

    ours = result["context_aware"]
    base = result["baseline"]

    # Matched bitrates (the rate controller holds both near the target).
    assert abs(ours["bitrate_bps"] - base["bitrate_bps"]) / base["bitrate_bps"] < 0.25
    # More bits on the chat-important region, fewer on the irrelevant region.
    assert ours["important_region_bits"] > base["important_region_bits"]
    assert ours["irrelevant_region_bits"] < base["irrelevant_region_bits"]
    # And correspondingly better quality where it matters for the answer.
    assert ours["important_region_quality"] >= base["important_region_quality"]
    # The context-aware QP map actually varies across the frame.
    assert ours["qp_std_qp"] > base["qp_std_qp"]
