"""Section 4 ablations and feasibility analyses.

Covers the design choices and next steps the paper discusses: the γ
temperature of Equation (2), the CLIP patch size (client-side compute),
proactive context awareness without user words, context-aware token pruning,
semantic layered streaming, and the client-side tokenizer / token-streaming
feasibility analysis (continuous vs discrete token bitrates, loss
resilience).
"""

from repro.analysis import (
    format_mapping,
    run_ablation_gamma,
    run_ablation_patch_size,
    run_ablation_proactive,
    run_ablation_semantic_layers,
    run_ablation_token_pruning,
    run_token_streaming_feasibility,
)


def test_ablation_gamma_temperature(benchmark):
    result = benchmark.pedantic(run_ablation_gamma, rounds=1, iterations=1)
    print()
    print(format_mapping("γ temperature vs important-region quality", result))
    # At a fixed bitrate budget the chat-important region keeps near-full
    # quality across temperatures (the paper's γ=3 aggressively penalises
    # irrelevant regions without hurting the important one).
    assert result[3.0] >= result[1.0] - 0.12
    assert result[3.0] >= 0.85
    assert all(0.0 <= value <= 1.0 for value in result.values())


def test_ablation_patch_size_compute(benchmark):
    result = benchmark.pedantic(run_ablation_patch_size, rounds=1, iterations=1)
    print()
    print(format_mapping("CLIP patch size vs client compute (ms)", result))
    # Finer patches cost more client-side compute (Section 4's concern).
    assert result[16] > result[32] > result[64]


def test_ablation_proactive_policies(benchmark):
    result = benchmark.pedantic(run_ablation_proactive, rounds=1, iterations=1)
    print()
    print(format_mapping("Proactive vs reactive importance margin", result))
    # The reactive (user-word) map separates the relevant region best, but the
    # proactive policies still rank it above the median region.
    assert result["reactive_margin"] > 0
    assert result["hybrid_margin"] > 0


def test_ablation_token_pruning(benchmark):
    result = benchmark.pedantic(run_ablation_token_pruning, rounds=1, iterations=1)
    print()
    print(format_mapping("Context-aware token pruning", result))
    # Pruning saves inference latency monotonically...
    assert result[0.1]["latency_saving_ms"] > result[0.5]["latency_saving_ms"]
    # ...while keeping the chat-important region's tokens.
    assert result[0.3]["important_region_kept"] >= 0.9


def test_ablation_semantic_layers(benchmark):
    result = benchmark.pedantic(run_ablation_semantic_layers, rounds=1, iterations=1)
    print()
    print(format_mapping("Semantic layered streaming", result))
    # The latency-critical base layer is a minority of the total bitrate yet
    # already delivers the chat-important region at (near) full quality.
    assert result["base_fraction_of_total"] < 0.6
    assert result["base_only_important_quality"] >= result["full_important_quality"] - 0.05


def test_token_streaming_feasibility(benchmark):
    result = benchmark.pedantic(run_token_streaming_feasibility, rounds=1, iterations=1)
    print()
    print(format_mapping("Client-side tokenizer feasibility", result))
    bitrates = result["bitrates"]
    # Continuous tokens are far too heavy to stream; discrete tokens are
    # orders of magnitude lighter (the paper's core feasibility observation).
    assert bitrates["continuous_bps"] > 20 * bitrates["discrete_bps"]
    # Discrete tokens are loss-resilient for coarse content: even at 82.8 %
    # token loss the recovered coarse region remains largely readable.
    recovery = result["recovery_quality"]
    assert recovery[0.828] >= 0.5 * recovery[0.0]
