"""Autoregressive MLLM inference latency model and the response-latency budget.

The paper's core latency argument (Section 1): a fluent video chat needs the
response to arrive within ~300 ms, but autoregressive MLLM inference takes at
least ~232 ms even for audio-only input (GPT-4o), leaving at most ~68 ms for
the whole RTC pipeline — and transmission must fit inside that.  This module
provides the latency model used throughout the benchmarks to convert token
counts into inference time and to compute the remaining transmission budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Response latency above which users perceive the peer as "not a real person".
DEFAULT_RESPONSE_BUDGET_MS = 300.0
#: Minimum computational latency for audio-only input reported for GPT-4o.
DEFAULT_AUDIO_ONLY_FLOOR_MS = 232.0


@dataclass
class InferenceConfig:
    """Latency model of a cloud MLLM serving stack."""

    #: Fixed cost per request: scheduling, tokenisation, audio encoding.
    base_latency_ms: float = 180.0
    #: Prefill cost per visual token (vision tower + attention over context).
    per_visual_token_ms: float = 0.035
    #: Prefill cost per audio/text input token.
    per_input_token_ms: float = 0.010
    #: Decode cost per generated output token (autoregressive step).
    per_output_token_ms: float = 6.5
    #: Number of output tokens before the first audio chunk can be played.
    first_chunk_output_tokens: int = 8

    def __post_init__(self) -> None:
        for name in (
            "base_latency_ms",
            "per_visual_token_ms",
            "per_input_token_ms",
            "per_output_token_ms",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.first_chunk_output_tokens < 1:
            raise ValueError("first_chunk_output_tokens must be >= 1")

    def prefill_latency_ms(self, visual_tokens: int, input_tokens: int = 32) -> float:
        return (
            self.base_latency_ms
            + visual_tokens * self.per_visual_token_ms
            + input_tokens * self.per_input_token_ms
        )

    def first_response_latency_ms(self, visual_tokens: int, input_tokens: int = 32) -> float:
        """Time until the first audible/displayable chunk of the reply exists."""
        return (
            self.prefill_latency_ms(visual_tokens, input_tokens)
            + self.first_chunk_output_tokens * self.per_output_token_ms
        )

    def full_response_latency_ms(
        self, visual_tokens: int, output_tokens: int, input_tokens: int = 32
    ) -> float:
        return (
            self.prefill_latency_ms(visual_tokens, input_tokens)
            + output_tokens * self.per_output_token_ms
        )


def default_inference_config() -> InferenceConfig:
    """A configuration whose audio-only first response lands at ~232 ms.

    232 ms = base + 32 input tokens * 0.010 + 8 output tokens * 6.5
           = 180  + 0.32            + 52 ≈ 232.3 ms — matching the GPT-4o
    floor cited in Section 1 of the paper.
    """
    return InferenceConfig()


@dataclass
class LatencyBudget:
    """Decomposition of the end-to-end response latency (Section 1).

    All values in milliseconds.  ``transmission_budget_ms`` is what remains
    for the network once every other stage is accounted for — the paper's
    "at most 68 ms".
    """

    response_target_ms: float = DEFAULT_RESPONSE_BUDGET_MS
    capture_ms: float = 0.0
    encode_ms: float = 0.0
    transmission_ms: float = 0.0
    decode_ms: float = 0.0
    jitter_buffer_ms: float = 0.0
    inference_ms: float = DEFAULT_AUDIO_ONLY_FLOOR_MS
    downlink_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        return (
            self.capture_ms
            + self.encode_ms
            + self.transmission_ms
            + self.decode_ms
            + self.jitter_buffer_ms
            + self.inference_ms
            + self.downlink_ms
        )

    @property
    def meets_target(self) -> bool:
        return self.total_ms <= self.response_target_ms

    @property
    def transmission_budget_ms(self) -> float:
        """Time left for uplink transmission after every other stage."""
        other = self.total_ms - self.transmission_ms
        return self.response_target_ms - other

    def breakdown(self) -> dict[str, float]:
        return {
            "capture_ms": self.capture_ms,
            "encode_ms": self.encode_ms,
            "transmission_ms": self.transmission_ms,
            "decode_ms": self.decode_ms,
            "jitter_buffer_ms": self.jitter_buffer_ms,
            "inference_ms": self.inference_ms,
            "downlink_ms": self.downlink_ms,
            "total_ms": self.total_ms,
            "target_ms": self.response_target_ms,
            "transmission_budget_ms": self.transmission_budget_ms,
        }


def transmission_budget_ms(
    inference_ms: float = DEFAULT_AUDIO_ONLY_FLOOR_MS,
    response_target_ms: float = DEFAULT_RESPONSE_BUDGET_MS,
    other_pipeline_ms: float = 0.0,
) -> float:
    """The paper's headline subtraction: 300 ms − 232 ms − other = ≤68 ms."""
    if response_target_ms <= 0:
        raise ValueError("response_target_ms must be positive")
    return response_target_ms - inference_ms - other_pipeline_ms
