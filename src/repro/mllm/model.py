"""A simulated multimodal large language model (MLLM).

The experiments in the paper treat the MLLM (Qwen2.5-Omni for evaluation,
Qwen3-VL-plus as a QA generator, GLM-4.5V as a cross-verifier) as a black
box with one behavioural property that everything else depends on: **whether
it answers a question correctly is governed by how much of the relevant
visual evidence survived compression**.  Coarse questions ("what is the
player doing?") survive heavy quantisation; detail questions ("what number
is on the license plate?") do not (Section 2.3, Figure 4).

:class:`SimulatedMLLM` reproduces exactly that behaviour on top of the
synthetic scene ground truth:

* the evidence for a question is the decoded quality of the region holding
  the fact it asks about (second-best frame for multi-frame questions);
* the question is answerable when the evidence exceeds a threshold that
  grows with the fact's ``detail_scale``;
* an answerable question is answered correctly up to a small profile-specific
  error rate; an unanswerable one falls back to guessing — uniformly over
  the A/B/C/D options in multiple-choice mode (the ≥25 % floor the paper
  notes), or over the open answer space in free-response mode.

All randomness is derived deterministically from the profile seed and the
question, so experiments are exactly reproducible.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..video.frames import VideoFrame
from ..video.quality import region_quality
from ..video.scene import Scene, SceneFact
from .inference import InferenceConfig, default_inference_config
from .sampler import ReceiverSampler, SamplerConfig

MODE_MULTIPLE_CHOICE = "multiple_choice"
MODE_FREE_RESPONSE = "free_response"


@dataclass(frozen=True)
class MllmProfile:
    """Behavioural profile of one MLLM."""

    name: str
    #: Error rate on questions whose evidence is fully visible.
    base_error_rate: float = 0.05
    #: Multiplier on the evidence score (stronger models read more from less).
    detail_competence: float = 1.0
    #: Probability mass shifted towards the correct option when guessing in
    #: multiple-choice mode (language priors / option elimination).
    guess_bias: float = 0.05
    #: Probability of producing *any* plausible answer in free-response mode
    #: when the evidence is missing (otherwise it answers "unclear").
    free_response_guess_rate: float = 0.6

    def __post_init__(self) -> None:
        if not 0.0 <= self.base_error_rate < 1.0:
            raise ValueError("base_error_rate must be in [0, 1)")
        if self.detail_competence <= 0:
            raise ValueError("detail_competence must be positive")
        if not 0.0 <= self.guess_bias < 1.0:
            raise ValueError("guess_bias must be in [0, 1)")
        if not 0.0 <= self.free_response_guess_rate <= 1.0:
            raise ValueError("free_response_guess_rate must be in [0, 1]")


#: Profiles standing in for the models named in the paper.
QWEN2_5_OMNI = MllmProfile("qwen2.5-omni", base_error_rate=0.05, detail_competence=1.00)
QWEN3_VL_PLUS = MllmProfile("qwen3-vl-plus-thinking", base_error_rate=0.03, detail_competence=1.08)
GLM_4_5V = MllmProfile("glm-4.5v-thinking", base_error_rate=0.04, detail_competence=1.04)
MOBILE_MLLM = MllmProfile(
    "mobile-mllm", base_error_rate=0.12, detail_competence=0.70, guess_bias=0.02
)

UNCLEAR_ANSWER = "unclear"


@dataclass
class MllmAnswer:
    """The outcome of asking the simulated MLLM one question."""

    question: str
    answer: str
    ground_truth: str
    correct: bool
    knows: bool
    guessed: bool
    evidence_quality: float
    required_quality: float
    mode: str
    visual_tokens: int = 0
    inference_latency_ms: float = 0.0


class SimulatedMLLM:
    """Answers scene questions through a quality-gated evidence model."""

    def __init__(
        self,
        profile: MllmProfile = QWEN2_5_OMNI,
        seed: int = 0,
        sampler: Optional[ReceiverSampler] = None,
        inference_config: Optional[InferenceConfig] = None,
    ) -> None:
        self.profile = profile
        self.seed = seed
        self.sampler = sampler or ReceiverSampler(SamplerConfig())
        self.inference_config = inference_config or default_inference_config()

    # -- internals -----------------------------------------------------------

    def _rng_for(self, fact: SceneFact, salt: str = "", scene_name: str = "") -> np.random.Generator:
        key = (
            f"{self.seed}|{self.profile.name}|{scene_name}|{fact.object_name}|{fact.key}"
            f"|{fact.question}|{salt}"
        )
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return np.random.default_rng(int.from_bytes(digest[:8], "little"))

    def required_quality(self, detail_scale: float) -> float:
        """Evidence quality needed to answer a question of a given granularity."""
        return float(np.clip(0.30 + 0.60 * detail_scale, 0.0, 0.95))

    def evidence_quality(
        self,
        fact: SceneFact,
        scene: Scene,
        decoded_frames: Sequence[VideoFrame],
        original_frames: Sequence[VideoFrame],
    ) -> float:
        """Quality of the visual evidence for a fact across the visible frames.

        Single-frame questions use the best frame; multi-frame questions use
        the second best (at least two usable observations are needed).
        """
        if len(decoded_frames) != len(original_frames):
            raise ValueError("decoded and original frame lists must align")
        if not decoded_frames:
            return 0.0
        obj = scene.object_by_name(fact.object_name)
        scores = []
        for decoded, original in zip(decoded_frames, original_frames):
            if decoded.pixels.shape != original.pixels.shape:
                raise ValueError("decoded/original frame shape mismatch")
            region = obj.pixel_region(
                decoded.height, decoded.width, time_s=original.timestamp
            )
            report = region_quality(original.pixels, decoded.pixels, region)
            scores.append(report.readable_score)
        scores.sort(reverse=True)
        if fact.multi_frame:
            raw = scores[1] if len(scores) >= 2 else 0.0
        else:
            raw = scores[0]
        return float(np.clip(raw * self.profile.detail_competence, 0.0, 1.0))

    def _build_choices(self, fact: SceneFact, choices: Optional[Sequence[str]]) -> list[str]:
        if choices is not None:
            # The caller (e.g. the DeViBench filter) supplies the options as
            # generated; the true answer may be absent when the generator
            # hallucinated — the model then simply cannot score by knowledge.
            return list(choices)
        rng = self._rng_for(fact, salt="choices")  # choices need not vary by scene
        distractors = [value for value in fact.domain if value != fact.value]
        rng.shuffle(distractors)
        options = [fact.value] + distractors[:3]
        rng.shuffle(options)
        return options

    # -- public API ------------------------------------------------------------

    def answer_question(
        self,
        fact: SceneFact,
        scene: Scene,
        decoded_frames: Sequence[VideoFrame],
        original_frames: Sequence[VideoFrame],
        mode: str = MODE_MULTIPLE_CHOICE,
        choices: Optional[Sequence[str]] = None,
        apply_frame_sampling: bool = True,
        salt: str = "",
    ) -> MllmAnswer:
        """Ask the model one question about the decoded video."""
        if mode not in (MODE_MULTIPLE_CHOICE, MODE_FREE_RESPONSE):
            raise ValueError(f"unknown mode {mode!r}")

        decoded = list(decoded_frames)
        originals = list(original_frames)
        if apply_frame_sampling and decoded:
            selected = self.sampler.select_frames(decoded)
            selected_ids = {frame.frame_id for frame in selected}
            pairs = [
                (d, o) for d, o in zip(decoded, originals) if d.frame_id in selected_ids
            ]
            if pairs:
                decoded, originals = map(list, zip(*pairs))

        evidence = self.evidence_quality(fact, scene, decoded, originals)
        required = self.required_quality(fact.detail_scale)
        knows = evidence >= required

        rng = self._rng_for(fact, salt=salt or mode, scene_name=scene.name)
        visual_tokens = sum(self.sampler.visual_token_count(frame) for frame in decoded)
        latency = self.inference_config.first_response_latency_ms(visual_tokens)

        if knows and rng.random() >= self.profile.base_error_rate:
            answer = fact.value
            guessed = False
        elif mode == MODE_MULTIPLE_CHOICE:
            options = self._build_choices(fact, choices)
            if rng.random() < self.profile.guess_bias:
                answer = fact.value
            else:
                answer = str(rng.choice(options))
            guessed = True
        else:  # free response
            if rng.random() < self.profile.free_response_guess_rate:
                answer = str(rng.choice(list(fact.domain)))
            else:
                answer = UNCLEAR_ANSWER
            guessed = True

        return MllmAnswer(
            question=fact.question,
            answer=answer,
            ground_truth=fact.value,
            correct=answer == fact.value,
            knows=knows,
            guessed=guessed,
            evidence_quality=evidence,
            required_quality=required,
            mode=mode,
            visual_tokens=visual_tokens,
            inference_latency_ms=latency,
        )

    def answer_multiple_choice(self, *args, **kwargs) -> MllmAnswer:
        kwargs["mode"] = MODE_MULTIPLE_CHOICE
        return self.answer_question(*args, **kwargs)

    def answer_free_response(self, *args, **kwargs) -> MllmAnswer:
        kwargs["mode"] = MODE_FREE_RESPONSE
        return self.answer_question(*args, **kwargs)

    def accuracy_over(
        self,
        facts: Sequence[SceneFact],
        scene: Scene,
        decoded_frames: Sequence[VideoFrame],
        original_frames: Sequence[VideoFrame],
        mode: str = MODE_MULTIPLE_CHOICE,
    ) -> float:
        """Fraction of the given facts answered correctly on this decoded video."""
        if not facts:
            raise ValueError("facts must not be empty")
        answers = [
            self.answer_question(fact, scene, decoded_frames, original_frames, mode=mode)
            for fact in facts
        ]
        return float(np.mean([answer.correct for answer in answers]))
