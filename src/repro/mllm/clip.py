"""A MobileCLIP-style text/patch encoder pair and correlation maps.

Implements Equation (1) of the paper: the frame is partitioned into
non-overlapping N×N patches, each patch is encoded by a visual encoder, the
user words are encoded by a language encoder sharing the same feature space,
and the semantic correlation of a patch is the cosine similarity of the two
features.

Offline we substitute the real MobileCLIP with encoders built on the
deterministic :class:`~repro.mllm.embedding.ConceptSpace`:

* the **text encoder** extracts vocabulary concepts from the user's words
  (plus any explicit query concepts) and averages their vectors;
* the **patch encoder** averages the concept vectors of the scene objects
  overlapping the patch, weighted by overlap area and attenuated when the
  patch's fine detail has been blurred away (mirroring the paper's
  observation that CLIP "ignores the blurry grass in the distance").

The resulting correlation maps have the property every downstream experiment
needs: patches containing chat-relevant objects score higher than the rest,
including for indirect queries (season → grass).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..video.quality import high_frequency_retention
from ..video.scene import Scene, SceneObject
from .embedding import ConceptSpace, cosine_similarity


@dataclass
class ClipConfig:
    """Configuration of the CLIP-substitute."""

    patch_size: int = 32
    #: Weight of a neutral "background" component added to every patch so
    #: empty patches are not exactly zero vectors.
    background_weight: float = 0.15
    #: Detail visibility below which fine-grained object concepts fade out.
    visibility_floor: float = 0.2
    #: Per-patch compute cost of the visual encoder (MobileCLIP-class), used
    #: in the client-side computation discussion of Section 4.
    encode_cost_ms_per_patch: float = 0.035
    text_encode_cost_ms: float = 3.0

    def __post_init__(self) -> None:
        if self.patch_size <= 0:
            raise ValueError("patch_size must be positive")
        if not 0.0 <= self.background_weight <= 1.0:
            raise ValueError("background_weight must be in [0, 1]")


@dataclass
class CorrelationMap:
    """Per-patch semantic correlation of a frame against the user's words."""

    values: np.ndarray  # (patches_y, patches_x), in [-1, 1]
    patch_size: int
    frame_shape: tuple[int, int]
    query: str
    query_concepts: tuple[str, ...]
    compute_latency_ms: float = 0.0

    @property
    def grid_shape(self) -> tuple[int, int]:
        return self.values.shape

    def top_patches(self, count: int = 5) -> list[tuple[int, int, float]]:
        """The ``count`` most chat-relevant patches as (row, col, correlation)."""
        flat = self.values.ravel()
        order = np.argsort(flat)[::-1][:count]
        rows, cols = np.unravel_index(order, self.values.shape)
        return [(int(r), int(c), float(self.values[r, c])) for r, c in zip(rows, cols)]

    def region_mean(self, pixel_region: tuple[int, int, int, int]) -> float:
        """Mean correlation over the patches overlapping a pixel region."""
        row0, row1, col0, col1 = pixel_region
        p = self.patch_size
        pr0, pr1 = row0 // p, max(row0 // p + 1, int(np.ceil(row1 / p)))
        pc0, pc1 = col0 // p, max(col0 // p + 1, int(np.ceil(col1 / p)))
        pr1 = min(pr1, self.values.shape[0])
        pc1 = min(pc1, self.values.shape[1])
        return float(self.values[pr0:pr1, pc0:pc1].mean())

    def to_block_grid(self, block_size: int, frame_shape: Optional[tuple[int, int]] = None) -> np.ndarray:
        """Resample the patch-level map onto a codec block grid.

        The context-aware streamer computes correlation on CLIP patches but
        the encoder applies QP per codec block; this nearest-patch resampling
        bridges the two grids.
        """
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        height, width = frame_shape if frame_shape is not None else self.frame_shape
        blocks_y = int(np.ceil(height / block_size))
        blocks_x = int(np.ceil(width / block_size))
        rows = np.minimum(
            (np.arange(blocks_y) * block_size + block_size // 2) // self.patch_size,
            self.values.shape[0] - 1,
        )
        cols = np.minimum(
            (np.arange(blocks_x) * block_size + block_size // 2) // self.patch_size,
            self.values.shape[1] - 1,
        )
        return self.values[np.ix_(rows, cols)]


class ClipTextEncoder:
    """Language side of the CLIP substitute."""

    def __init__(self, space: Optional[ConceptSpace] = None, config: Optional[ClipConfig] = None) -> None:
        self.space = space or ConceptSpace()
        self.config = config or ClipConfig()

    def encode(self, text: str, extra_concepts: Sequence[str] = ()) -> np.ndarray:
        concepts = self.space.extract_concepts(text)
        for concept in extra_concepts:
            if concept not in concepts:
                concepts.append(concept)
        return self.space.encode_concepts(concepts)

    def concepts(self, text: str, extra_concepts: Sequence[str] = ()) -> tuple[str, ...]:
        concepts = self.space.extract_concepts(text)
        for concept in extra_concepts:
            if concept not in concepts:
                concepts.append(concept)
        return tuple(concepts)


class ClipPatchEncoder:
    """Vision side of the CLIP substitute.

    Encodes one patch given the scene ground truth (which objects overlap the
    patch) and the decoded pixels (which determine how much of each object's
    fine detail is still visible).
    """

    def __init__(self, space: Optional[ConceptSpace] = None, config: Optional[ClipConfig] = None) -> None:
        self.space = space or ConceptSpace()
        self.config = config or ClipConfig()

    @staticmethod
    def _overlap_fraction(
        patch_box: tuple[int, int, int, int], object_box: tuple[int, int, int, int]
    ) -> float:
        pr0, pr1, pc0, pc1 = patch_box
        orow0, orow1, ocol0, ocol1 = object_box
        rows = max(0, min(pr1, orow1) - max(pr0, orow0))
        cols = max(0, min(pc1, ocol1) - max(pc0, ocol0))
        patch_area = max(1, (pr1 - pr0) * (pc1 - pc0))
        return rows * cols / patch_area

    def encode_patch(
        self,
        scene: Scene,
        patch_box: tuple[int, int, int, int],
        decoded_patch: Optional[np.ndarray] = None,
        original_patch: Optional[np.ndarray] = None,
        time_s: float = 0.0,
    ) -> np.ndarray:
        """Feature vector for the patch at ``patch_box`` (row0, row1, col0, col1)."""
        concepts: list[str] = ["background"]
        weights: list[float] = [self.config.background_weight]

        visibility = 1.0
        if decoded_patch is not None and original_patch is not None and original_patch.size > 0:
            visibility = high_frequency_retention(original_patch, decoded_patch)

        for obj in scene.objects:
            object_box = obj.pixel_region(scene.height, scene.width, time_s)
            overlap = self._overlap_fraction(patch_box, object_box)
            if overlap <= 0.0:
                continue
            # Fine-detail objects fade from the embedding when their detail is
            # blurred away; coarse objects stay recognisable.
            detail_penalty = 1.0
            if visibility < 1.0:
                floor = self.config.visibility_floor
                effective = max(visibility, floor)
                detail_penalty = effective ** (0.5 + 2.0 * obj.detail_scale)
            weight = overlap * detail_penalty
            for concept in obj.concepts:
                concepts.append(concept)
                weights.append(weight)
        return self.space.encode_concepts(concepts, weights)


class MobileClip:
    """The full CLIP substitute: correlation maps per Equation (1)."""

    def __init__(self, space: Optional[ConceptSpace] = None, config: Optional[ClipConfig] = None) -> None:
        self.space = space or ConceptSpace()
        self.config = config or ClipConfig()
        self.text_encoder = ClipTextEncoder(self.space, self.config)
        self.patch_encoder = ClipPatchEncoder(self.space, self.config)

    def correlation_map(
        self,
        scene: Scene,
        user_words: str,
        frame_pixels: Optional[np.ndarray] = None,
        original_pixels: Optional[np.ndarray] = None,
        extra_concepts: Sequence[str] = (),
        time_s: float = 0.0,
    ) -> CorrelationMap:
        """Compute the patch-wise semantic correlation ρ of Equation (1)."""
        patch = self.config.patch_size
        height, width = scene.height, scene.width
        patches_y = int(np.ceil(height / patch))
        patches_x = int(np.ceil(width / patch))

        text_feature = self.text_encoder.encode(user_words, extra_concepts)
        query_concepts = self.text_encoder.concepts(user_words, extra_concepts)

        values = np.zeros((patches_y, patches_x))
        for row in range(patches_y):
            for col in range(patches_x):
                row0, row1 = row * patch, min((row + 1) * patch, height)
                col0, col1 = col * patch, min((col + 1) * patch, width)
                decoded_patch = None
                original_patch = None
                if frame_pixels is not None:
                    decoded_patch = frame_pixels[row0:row1, col0:col1]
                if original_pixels is not None:
                    original_patch = original_pixels[row0:row1, col0:col1]
                patch_feature = self.patch_encoder.encode_patch(
                    scene,
                    (row0, row1, col0, col1),
                    decoded_patch=decoded_patch,
                    original_patch=original_patch,
                    time_s=time_s,
                )
                values[row, col] = cosine_similarity(patch_feature, text_feature)

        latency = (
            self.config.text_encode_cost_ms
            + patches_y * patches_x * self.config.encode_cost_ms_per_patch
        )
        return CorrelationMap(
            values=values,
            patch_size=patch,
            frame_shape=(height, width),
            query=user_words,
            query_concepts=query_concepts,
            compute_latency_ms=latency,
        )
