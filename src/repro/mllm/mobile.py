"""Client/cloud model collaboration (Section 4, "Client-side computation").

The paper suggests spending spare client compute on a small on-device MLLM
that answers easy questions locally, so only challenging video needs to be
transmitted to the cloud model.  This module implements that collaboration
policy on top of two :class:`~repro.mllm.model.SimulatedMLLM` instances: a
weak local model and a strong cloud model, with a confidence rule deciding
where each question is served and an accounting of the uplink bytes and
latency saved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..video.frames import VideoFrame
from ..video.scene import Scene, SceneFact
from .inference import InferenceConfig
from .model import MODE_MULTIPLE_CHOICE, MOBILE_MLLM, MllmAnswer, MllmProfile, QWEN2_5_OMNI, SimulatedMLLM


@dataclass
class CollaborationConfig:
    """Policy knobs for local-versus-cloud routing."""

    #: A question is served locally when the local model's evidence exceeds
    #: its requirement by this margin (confidence proxy).
    local_confidence_margin: float = 0.10
    #: Questions with detail above this level always go to the cloud model.
    max_local_detail_scale: float = 0.5
    #: Latency of the local model (no network, small model).
    local_inference_ms: float = 90.0
    #: One-way network latency to reach the cloud model.
    network_rtt_ms: float = 60.0

    def __post_init__(self) -> None:
        if self.local_confidence_margin < 0:
            raise ValueError("local_confidence_margin must be non-negative")
        if not 0.0 <= self.max_local_detail_scale <= 1.0:
            raise ValueError("max_local_detail_scale must be in [0, 1]")


@dataclass
class RoutedAnswer:
    """An answer plus where it was served and what it cost."""

    answer: MllmAnswer
    served_by: str  # "local" or "cloud"
    uplink_bytes: int
    response_latency_ms: float


class ModelCollaboration:
    """Routes questions between an on-device MLLM and the cloud MLLM."""

    def __init__(
        self,
        local_profile: MllmProfile = MOBILE_MLLM,
        cloud_profile: MllmProfile = QWEN2_5_OMNI,
        config: Optional[CollaborationConfig] = None,
        seed: int = 0,
        cloud_inference: Optional[InferenceConfig] = None,
    ) -> None:
        self.config = config or CollaborationConfig()
        self.local = SimulatedMLLM(local_profile, seed=seed)
        self.cloud = SimulatedMLLM(cloud_profile, seed=seed + 1, inference_config=cloud_inference)

    def should_serve_locally(
        self,
        fact: SceneFact,
        scene: Scene,
        local_frames: Sequence[VideoFrame],
        original_frames: Sequence[VideoFrame],
    ) -> bool:
        """Decide whether the local model is confident enough for this question."""
        if fact.detail_scale > self.config.max_local_detail_scale:
            return False
        evidence = self.local.evidence_quality(fact, scene, local_frames, original_frames)
        required = self.local.required_quality(fact.detail_scale)
        return evidence >= required + self.config.local_confidence_margin

    def answer(
        self,
        fact: SceneFact,
        scene: Scene,
        local_frames: Sequence[VideoFrame],
        original_frames: Sequence[VideoFrame],
        uplink_frame_bytes: int,
        cloud_frames: Optional[Sequence[VideoFrame]] = None,
        mode: str = MODE_MULTIPLE_CHOICE,
    ) -> RoutedAnswer:
        """Answer one question, locally when confident, otherwise via the cloud.

        ``local_frames`` are the full-quality frames available on the device;
        ``cloud_frames`` are what the cloud model would receive after encoding
        and transmission (defaults to the local frames when omitted, i.e. a
        lossless uplink).
        """
        serve_local = self.should_serve_locally(fact, scene, local_frames, original_frames)
        if serve_local:
            answer = self.local.answer_question(
                fact, scene, local_frames, original_frames, mode=mode
            )
            return RoutedAnswer(
                answer=answer,
                served_by="local",
                uplink_bytes=0,
                response_latency_ms=self.config.local_inference_ms,
            )

        frames_for_cloud = list(cloud_frames) if cloud_frames is not None else list(local_frames)
        answer = self.cloud.answer_question(
            fact, scene, frames_for_cloud, original_frames, mode=mode
        )
        latency = self.config.network_rtt_ms + answer.inference_latency_ms
        return RoutedAnswer(
            answer=answer,
            served_by="cloud",
            uplink_bytes=int(uplink_frame_bytes),
            response_latency_ms=latency,
        )

    def evaluate(
        self,
        facts: Sequence[SceneFact],
        scene: Scene,
        local_frames: Sequence[VideoFrame],
        original_frames: Sequence[VideoFrame],
        uplink_frame_bytes: int,
        cloud_frames: Optional[Sequence[VideoFrame]] = None,
    ) -> dict[str, float]:
        """Aggregate accuracy / offload ratio / uplink savings over many questions."""
        if not facts:
            raise ValueError("facts must not be empty")
        routed = [
            self.answer(
                fact,
                scene,
                local_frames,
                original_frames,
                uplink_frame_bytes,
                cloud_frames=cloud_frames,
            )
            for fact in facts
        ]
        local_count = sum(1 for r in routed if r.served_by == "local")
        return {
            "accuracy": float(np.mean([r.answer.correct for r in routed])),
            "local_fraction": local_count / len(routed),
            "mean_latency_ms": float(np.mean([r.response_latency_ms for r in routed])),
            "total_uplink_bytes": float(sum(r.uplink_bytes for r in routed)),
        }
