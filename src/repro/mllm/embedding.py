"""A deterministic shared concept-embedding space.

The paper uses CLIP (MobileCLIP on the client) to place user words and video
patches in one feature space so that cosine similarity measures how relevant
a patch is to the current chat (Equation 1).  Offline we cannot run CLIP, so
this module builds the property the experiments actually rely on: a shared
vector space where

* every concept word has a reproducible unit vector,
* semantically related concepts (grass→season, dog head→ears, scoreboard→
  score) have correlated vectors, so indirect questions still light up the
  right regions (the Figure 5 "season" example), and
* unrelated concepts are nearly orthogonal (high dimension + random vectors).
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

#: Semantic relations used to mix concept vectors.  Keys "lean towards" their
#: related concepts, which is what lets an abstract query (season) correlate
#: with a concrete region (grass).
DEFAULT_CONCEPT_RELATIONS: dict[str, tuple[str, ...]] = {
    # Abstract → concrete evidence
    "season": ("grass", "tree", "plants", "nature", "weather"),
    "weather": ("sky", "season"),
    "score": ("scoreboard", "numbers", "text", "game"),
    "game": ("player", "court", "scoreboard"),
    "ears": ("dog", "head", "animal"),
    "head": ("ears", "dog"),
    "brand": ("logo", "jersey", "emblem"),
    "logo": ("brand", "jersey", "emblem"),
    "numbers": ("text", "plate", "timer", "scoreboard"),
    "text": ("numbers", "sign", "label", "slide", "title"),
    "count": ("spectators", "crowd", "car", "ingredients", "bullets"),
    "crowd": ("spectators", "people", "audience"),
    "spectators": ("crowd", "people", "audience"),
    "people": ("person", "crowd", "pedestrian"),
    "person": ("people", "player", "cook", "lecturer", "pedestrian", "body"),
    "action": ("person", "body", "walking", "hands"),
    "position": ("left", "right", "spatial"),
    "plate": ("numbers", "car", "text"),
    "car": ("vehicles", "traffic", "plate"),
    "vehicles": ("car", "traffic"),
    "sign": ("text", "road", "traffic"),
    "label": ("text", "jar", "ingredient"),
    "timer": ("numbers", "clock", "text"),
    "clock": ("timer", "numbers"),
    "slide": ("text", "title", "bullets", "lecture"),
    "title": ("slide", "text"),
    "equation": ("math", "formula", "text", "slide"),
    "formula": ("equation", "math"),
    "math": ("equation", "formula", "numbers"),
    "bullets": ("list", "slide", "text"),
    "list": ("bullets", "slide"),
    "ingredient": ("food", "ingredients", "label"),
    "ingredients": ("food", "vegetables", "ingredient"),
    "food": ("ingredients", "vegetables"),
    "dog": ("animal", "pet", "ears", "head", "body"),
    "animal": ("dog", "pet"),
    "pet": ("dog", "animal"),
    "grass": ("lawn", "plants", "nature", "season"),
    "lawn": ("grass", "plants"),
    "plants": ("grass", "tree", "nature"),
    "tree": ("plants", "nature"),
    "player": ("person", "athlete", "game", "jersey"),
    "athlete": ("player", "person"),
    "jersey": ("player", "logo", "brand"),
    "scoreboard": ("score", "numbers", "game", "text"),
    "pedestrian": ("person", "walking", "road"),
    "walking": ("action", "pedestrian"),
    "cook": ("person", "hands", "food"),
    "hands": ("cook", "action", "person"),
    "lecturer": ("person", "speaker", "lecture"),
    "speaker": ("lecturer", "person"),
    "lecture": ("slide", "lecturer"),
    "road": ("traffic", "sign", "street"),
    "street": ("road", "city", "traffic"),
    "traffic": ("road", "car", "sign"),
    "emblem": ("logo", "brand"),
    "jar": ("label", "ingredient"),
    "audience": ("spectators", "crowd"),
    "body": ("person", "dog", "action"),
}

#: Phrases commonly found in questions, mapped onto vocabulary concepts.
DEFAULT_SYNONYMS: dict[str, tuple[str, ...]] = {
    "erect-eared": ("ears", "dog"),
    "floppy-eared": ("ears", "dog"),
    "spectator": ("spectators",),
    "cars": ("car",),
    "doing": ("action",),
    "do": ("action",),
    "many": ("count",),
    "number": ("numbers",),
    "written": ("text",),
    "say": ("text",),
    "says": ("text",),
    "wearing": ("jersey",),
    "mouth": ("person", "head"),
    "left": ("position",),
    "right": ("position",),
    "side": ("position",),
    "time": ("timer", "clock"),
    "license": ("plate",),
    "ingredients": ("ingredients",),
    "bullet": ("bullets",),
    "points": ("bullets",),
}


def _stable_seed(text: str, salt: int = 0) -> int:
    digest = hashlib.sha256(f"{salt}:{text}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass
class ConceptSpace:
    """Deterministic concept vectors with semantic mixing."""

    dim: int = 64
    relations: Mapping[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_CONCEPT_RELATIONS)
    )
    synonyms: Mapping[str, tuple[str, ...]] = field(default_factory=lambda: dict(DEFAULT_SYNONYMS))
    relation_weight: float = 0.6
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dim < 8:
            raise ValueError("dim must be at least 8 for near-orthogonality")
        if not 0.0 <= self.relation_weight <= 1.0:
            raise ValueError("relation_weight must be in [0, 1]")
        self._base_cache: dict[str, np.ndarray] = {}
        self._mixed_cache: dict[str, np.ndarray] = {}

    # -- vectors ------------------------------------------------------------

    def _base_vector(self, concept: str) -> np.ndarray:
        concept = concept.lower()
        if concept not in self._base_cache:
            rng = np.random.default_rng(_stable_seed(concept, self.seed))
            vector = rng.normal(0, 1, self.dim)
            self._base_cache[concept] = vector / np.linalg.norm(vector)
        return self._base_cache[concept]

    def vector(self, concept: str) -> np.ndarray:
        """Unit vector for a concept, mixed with its related concepts."""
        concept = concept.lower()
        if concept not in self._mixed_cache:
            base = self._base_vector(concept)
            related = self.relations.get(concept, ())
            if related:
                neighbour = np.mean([self._base_vector(other) for other in related], axis=0)
                mixed = (1 - self.relation_weight) * base + self.relation_weight * neighbour
            else:
                mixed = base
            self._mixed_cache[concept] = mixed / np.linalg.norm(mixed)
        return self._mixed_cache[concept]

    def encode_concepts(self, concepts: Iterable[str], weights: Optional[Sequence[float]] = None) -> np.ndarray:
        """Weighted mean of concept vectors, re-normalised to unit length.

        Returns the zero vector when no concepts are supplied (callers treat
        that as "no signal": correlation collapses to 0).
        """
        concepts = [c for c in concepts if c]
        if not concepts:
            return np.zeros(self.dim)
        if weights is None:
            weights = [1.0] * len(concepts)
        weights = np.asarray(list(weights), dtype=float)
        if weights.shape[0] != len(concepts) or (weights < 0).any():
            raise ValueError("weights must be non-negative and match the concept count")
        if weights.sum() <= 0:
            return np.zeros(self.dim)
        stacked = np.stack([self.vector(c) for c in concepts])
        combined = (weights[:, None] * stacked).sum(axis=0)
        norm = np.linalg.norm(combined)
        if norm <= 1e-12:
            return np.zeros(self.dim)
        return combined / norm

    def similarity(self, first: str, second: str) -> float:
        """Cosine similarity between two concepts."""
        return float(np.dot(self.vector(first), self.vector(second)))

    # -- text handling --------------------------------------------------------

    @property
    def vocabulary(self) -> set[str]:
        vocab = set(self.relations.keys())
        for related in self.relations.values():
            vocab.update(related)
        return vocab

    def extract_concepts(self, text: str) -> list[str]:
        """Pull vocabulary concepts (and synonym-mapped concepts) out of text."""
        vocab = self.vocabulary
        words = re.findall(r"[a-zA-Z][a-zA-Z\-']*", text.lower())
        found: list[str] = []
        for word in words:
            candidates = [word]
            if word.endswith("s") and len(word) > 3:
                candidates.append(word[:-1])
            matched = False
            for candidate in candidates:
                if candidate in vocab and candidate not in found:
                    found.append(candidate)
                    matched = True
                    break
            if not matched and word in self.synonyms:
                for mapped in self.synonyms[word]:
                    if mapped in vocab and mapped not in found:
                        found.append(mapped)
        return found


def cosine_similarity(first: np.ndarray, second: np.ndarray) -> float:
    """Cosine similarity, defined as 0 when either vector is (near) zero."""
    first = np.asarray(first, dtype=float)
    second = np.asarray(second, dtype=float)
    norms = np.linalg.norm(first) * np.linalg.norm(second)
    if norms <= 1e-12:
        return 0.0
    return float(np.dot(first, second) / norms)
