"""Receiver-side downsampling of the incoming video before MLLM ingestion.

Section 2.1 of the paper: the MLLM cannot consume the full sender stream —
existing systems process at most 2 frames per second, and every frame is
resized so it contains no more than 602,112 pixels (the Qwen2.5-Omni limit).
The gap between what the sender transmits and what the model perceives is
the redundancy plotted in Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from ..video.frames import VideoFrame, downsample_frame

#: Maximum pixels per frame after downsampling (Qwen2.5-Omni, Section 2.1).
DEFAULT_MAX_PIXELS = 602_112
#: Maximum frame rate existing AI video chat systems process (Section 2.1).
DEFAULT_MAX_FPS = 2.0
#: Vision-tower patch size used to convert pixels to visual tokens.
VISION_PATCH_PIXELS = 28 * 28


@dataclass
class SamplerConfig:
    """Configuration of the receiver-side sampler."""

    max_fps: float = DEFAULT_MAX_FPS
    max_pixels_per_frame: int = DEFAULT_MAX_PIXELS
    vision_patch_pixels: int = VISION_PATCH_PIXELS

    def __post_init__(self) -> None:
        if self.max_fps <= 0:
            raise ValueError("max_fps must be positive")
        if self.max_pixels_per_frame <= 0:
            raise ValueError("max_pixels_per_frame must be positive")
        if self.vision_patch_pixels <= 0:
            raise ValueError("vision_patch_pixels must be positive")


@dataclass
class SamplingReport:
    """Accounting of how much of the sender's stream the MLLM actually sees."""

    input_frames: int
    selected_frames: int
    input_pixels: int
    perceived_pixels: int

    @property
    def frame_redundancy(self) -> float:
        """Fraction of transmitted frames the MLLM never looks at (Figure 2)."""
        if self.input_frames == 0:
            return 0.0
        return 1.0 - self.selected_frames / self.input_frames

    @property
    def pixel_redundancy(self) -> float:
        """Fraction of transmitted pixels the MLLM never perceives."""
        if self.input_pixels == 0:
            return 0.0
        return 1.0 - self.perceived_pixels / self.input_pixels


class ReceiverSampler:
    """Selects and resizes frames the way the MLLM ingestion path does.

    Frame selection is based on the *capture timestamp* (positional encoding),
    not on arrival time — which is exactly why network jitter does not change
    what the model sees (Section 2.1).
    """

    def __init__(self, config: Optional[SamplerConfig] = None) -> None:
        self.config = config or SamplerConfig()

    def select_frames(self, frames: Sequence[VideoFrame]) -> list[VideoFrame]:
        """Pick at most ``max_fps`` frames per second of capture time."""
        if not frames:
            return []
        ordered = sorted(frames, key=lambda frame: (frame.timestamp, frame.frame_id))
        interval = 1.0 / self.config.max_fps
        selected: list[VideoFrame] = []
        next_slot = ordered[0].timestamp
        for frame in ordered:
            if frame.timestamp + 1e-9 >= next_slot:
                selected.append(frame)
                next_slot = frame.timestamp + interval
        return selected

    def prepare_frame(self, frame: VideoFrame) -> VideoFrame:
        """Resize one frame to the per-frame pixel cap."""
        return downsample_frame(frame, self.config.max_pixels_per_frame)

    def prepare(self, frames: Sequence[VideoFrame]) -> tuple[list[VideoFrame], SamplingReport]:
        """Select and resize frames; report the induced redundancy."""
        selected = self.select_frames(frames)
        prepared = [self.prepare_frame(frame) for frame in selected]
        report = SamplingReport(
            input_frames=len(frames),
            selected_frames=len(prepared),
            input_pixels=sum(frame.pixel_count for frame in frames),
            perceived_pixels=sum(frame.pixel_count for frame in prepared),
        )
        return prepared, report

    def visual_token_count(self, frame: VideoFrame) -> int:
        """Number of visual tokens one prepared frame contributes."""
        prepared = self.prepare_frame(frame)
        return max(1, int(np.ceil(prepared.pixel_count / self.config.vision_patch_pixels)))

    def tokens_for(self, frames: Sequence[VideoFrame]) -> int:
        prepared, _ = self.prepare(frames)
        return sum(
            max(1, int(np.ceil(frame.pixel_count / self.config.vision_patch_pixels)))
            for frame in prepared
        )


def perceived_throughput_bps(
    report: SamplingReport, duration_s: float, bits_per_pixel: float = 8.0
) -> float:
    """Effective pixel throughput the MLLM perceives (receiver side of Figure 2)."""
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    return report.perceived_pixels * bits_per_pixel / duration_s


def sender_throughput_bps(
    report: SamplingReport, duration_s: float, bits_per_pixel: float = 8.0
) -> float:
    """Raw pixel throughput the sender captured (sender side of Figure 2)."""
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    return report.input_pixels * bits_per_pixel / duration_s
