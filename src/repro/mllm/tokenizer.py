"""Video tokenizers: continuous embeddings versus discrete (VQ) indices.

Section 4 of the paper ("Client-side tokenizer and token streaming") asks
whether the video tokenizer could move to the client so that tokens — not
pixels — are streamed.  The argument hinges on the bitrate gap between the
two token families and on the loss-resilience of tokens:

* **continuous tokens** (what MLLMs actually consume) are uncompressed
  floating-point tensors whose bitrate is far too high to stream;
* **discrete tokens** (VQ codebook indices) are compact — better than HEVC in
  some regimes — and tolerate heavy loss (the paper cites 82.8 % token loss
  with 98 % retained accuracy), but state-of-the-art MLLMs no longer use
  them because quantisation costs accuracy.

This module implements both tokenizers over the block-DCT feature space so
the feasibility analysis can be run quantitatively, plus the masked-recovery
step used to patch missing tokens at the receiver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np
from scipy.fft import dctn, idctn


@dataclass
class TokenizerConfig:
    """Shared configuration of the video tokenizers."""

    patch_size: int = 16
    #: Embedding dimension kept per token (leading DCT coefficients).
    token_dim: int = 32
    #: Bits per float component when a continuous token is serialised.
    bits_per_component: int = 32
    #: Codebook size of the discrete tokenizer (bits per token = log2(size)).
    codebook_size: int = 8192
    seed: int = 0

    def __post_init__(self) -> None:
        if self.patch_size <= 0:
            raise ValueError("patch_size must be positive")
        if not 1 <= self.token_dim <= self.patch_size * self.patch_size:
            raise ValueError("token_dim must be within the patch coefficient count")
        if self.codebook_size < 2:
            raise ValueError("codebook_size must be at least 2")

    @property
    def bits_per_discrete_token(self) -> float:
        return float(np.log2(self.codebook_size))

    @property
    def bits_per_continuous_token(self) -> float:
        return float(self.token_dim * self.bits_per_component)


@dataclass
class TokenizedFrame:
    """Tokens extracted from one frame."""

    tokens: np.ndarray          # continuous: (n, dim) float; discrete: (n,) int
    grid_shape: tuple[int, int]
    frame_shape: tuple[int, int]
    discrete: bool
    total_bits: float

    @property
    def token_count(self) -> int:
        return int(self.tokens.shape[0])

    def bitrate_bps(self, fps: float) -> float:
        if fps <= 0:
            raise ValueError("fps must be positive")
        return self.total_bits * fps


def _patch_features(pixels: np.ndarray, config: TokenizerConfig) -> tuple[np.ndarray, tuple[int, int]]:
    """Leading DCT coefficients of each patch, zig-zag-free (row-major) order."""
    pixels = np.asarray(pixels, dtype=np.float64)
    if pixels.ndim != 2:
        raise ValueError("expected a 2-D luma array")
    p = config.patch_size
    height = pixels.shape[0] - pixels.shape[0] % p
    width = pixels.shape[1] - pixels.shape[1] % p
    if height == 0 or width == 0:
        raise ValueError(f"frame {pixels.shape} smaller than patch size {p}")
    trimmed = pixels[:height, :width]
    blocks = trimmed.reshape(height // p, p, width // p, p).transpose(0, 2, 1, 3)
    coefficients = dctn(blocks, axes=(2, 3), norm="ortho")
    flat = coefficients.reshape(height // p * (width // p), p * p)
    return flat[:, : config.token_dim], (height // p, width // p)


class ContinuousTokenizer:
    """Produces the embedding tokens modern MLLMs consume."""

    def __init__(self, config: Optional[TokenizerConfig] = None) -> None:
        self.config = config or TokenizerConfig()

    def tokenize(self, pixels: np.ndarray) -> TokenizedFrame:
        features, grid = _patch_features(pixels, self.config)
        total_bits = features.shape[0] * self.config.bits_per_continuous_token
        return TokenizedFrame(
            tokens=features,
            grid_shape=grid,
            frame_shape=pixels.shape,
            discrete=False,
            total_bits=total_bits,
        )

    def reconstruct(self, tokenized: TokenizedFrame) -> np.ndarray:
        """Approximate reconstruction from the retained coefficients."""
        return _reconstruct_from_features(tokenized.tokens, tokenized, self.config)


class DiscreteTokenizer:
    """A VQ-VAE-style tokenizer: each patch becomes a codebook index."""

    def __init__(self, config: Optional[TokenizerConfig] = None) -> None:
        self.config = config or TokenizerConfig()
        rng = np.random.default_rng(self.config.seed)
        # A fixed random codebook over the DCT feature space.  Real systems
        # learn it; a random-but-fixed codebook preserves the quantities the
        # feasibility analysis needs (bits/token and quantisation error).
        scale = np.ones(self.config.token_dim)
        scale[0] = 2000.0  # DC coefficients span a much larger range
        scale[1:] = 300.0
        self._codebook = rng.uniform(-1, 1, (self.config.codebook_size, self.config.token_dim)) * scale

    @property
    def codebook(self) -> np.ndarray:
        return self._codebook

    def tokenize(self, pixels: np.ndarray) -> TokenizedFrame:
        features, grid = _patch_features(pixels, self.config)
        indices = self._nearest_codeword(features)
        total_bits = indices.shape[0] * self.config.bits_per_discrete_token
        return TokenizedFrame(
            tokens=indices,
            grid_shape=grid,
            frame_shape=pixels.shape,
            discrete=True,
            total_bits=total_bits,
        )

    def _nearest_codeword(self, features: np.ndarray) -> np.ndarray:
        # Chunked nearest-neighbour search to bound memory.
        indices = np.empty(features.shape[0], dtype=np.int64)
        chunk = 512
        for start in range(0, features.shape[0], chunk):
            block = features[start : start + chunk]
            distances = (
                np.sum(block**2, axis=1, keepdims=True)
                - 2 * block @ self._codebook.T
                + np.sum(self._codebook**2, axis=1)[None, :]
            )
            indices[start : start + chunk] = np.argmin(distances, axis=1)
        return indices

    def reconstruct(self, tokenized: TokenizedFrame) -> np.ndarray:
        if not tokenized.discrete:
            raise ValueError("expected a discrete TokenizedFrame")
        features = self._codebook[np.asarray(tokenized.tokens, dtype=np.int64)]
        return _reconstruct_from_features(features, tokenized, self.config)


def _reconstruct_from_features(
    features: np.ndarray, tokenized: TokenizedFrame, config: TokenizerConfig
) -> np.ndarray:
    p = config.patch_size
    rows, cols = tokenized.grid_shape
    coefficients = np.zeros((rows * cols, p * p))
    coefficients[:, : config.token_dim] = features
    blocks = coefficients.reshape(rows, cols, p, p)
    pixels = idctn(blocks, axes=(2, 3), norm="ortho")
    frame = pixels.transpose(0, 2, 1, 3).reshape(rows * p, cols * p)
    return np.clip(frame, 0, 255)


@dataclass
class TokenLossResult:
    """Outcome of dropping a fraction of tokens and recovering the rest."""

    loss_fraction: float
    recovered_tokens: np.ndarray
    dropped_indices: np.ndarray


def drop_and_recover_tokens(
    tokenized: TokenizedFrame,
    loss_fraction: float,
    seed: int = 0,
) -> TokenLossResult:
    """Drop a random fraction of tokens and patch them from spatial neighbours.

    This models the masked-recovery argument of Section 4: missing discrete
    tokens can be re-synthesised at the receiver (the paper cites masked
    language models); we use nearest-surviving-neighbour substitution on the
    token grid, which preserves coarse content but not fine detail — the same
    qualitative trade-off.
    """
    if not 0.0 <= loss_fraction < 1.0:
        raise ValueError("loss_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    count = tokenized.token_count
    dropped = rng.random(count) < loss_fraction
    dropped_indices = np.flatnonzero(dropped)
    tokens = np.array(tokenized.tokens, copy=True)
    if dropped_indices.size and dropped_indices.size < count:
        rows, cols = tokenized.grid_shape
        grid_dropped = dropped.reshape(rows, cols)
        surviving = np.argwhere(~grid_dropped)
        for index in dropped_indices:
            row, col = divmod(int(index), cols)
            distances = np.abs(surviving[:, 0] - row) + np.abs(surviving[:, 1] - col)
            nearest = surviving[int(np.argmin(distances))]
            source = int(nearest[0] * cols + nearest[1])
            tokens[index] = tokens[source]
    return TokenLossResult(
        loss_fraction=loss_fraction,
        recovered_tokens=tokens,
        dropped_indices=dropped_indices,
    )


def compare_token_stream_bitrates(
    pixels: np.ndarray,
    fps: float = 2.0,
    config: Optional[TokenizerConfig] = None,
) -> dict[str, float]:
    """Bitrate comparison backing the Section 4 feasibility table.

    Returns the per-second bitrate of streaming continuous tokens, discrete
    tokens, and the raw pixels, for one frame at the MLLM ingestion rate.
    """
    config = config or TokenizerConfig()
    continuous = ContinuousTokenizer(config).tokenize(pixels)
    discrete = DiscreteTokenizer(config).tokenize(pixels)
    raw_bits = float(np.asarray(pixels).size * 8)
    return {
        "continuous_bps": continuous.bitrate_bps(fps),
        "discrete_bps": discrete.bitrate_bps(fps),
        "raw_pixels_bps": raw_bits * fps,
        "tokens_per_frame": float(continuous.token_count),
    }
