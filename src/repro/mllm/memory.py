"""Long-term memory over streamed video (Section 4, "MLLM long-term memory").

Context-aware streaming discards most video content that is irrelevant to the
*current* chat.  But MLLMs with long-term memory may later be asked about
content that was never important before — which is why the paper proposes
semantic layered streaming: a latency-critical base layer for the current
context plus enhancement layers that are shipped lazily and ingested offline
into memory.

This module provides that memory: facts observed from delivered video are
stored with the quality they were observed at, and recall is gated on that
stored quality just like live answering is gated on decoded quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..video.scene import Scene, SceneFact
from .embedding import ConceptSpace, cosine_similarity


@dataclass
class MemoryEntry:
    """One remembered observation."""

    fact: SceneFact
    observed_quality: float
    observed_at: float
    scene_name: str
    layer: str = "base"

    @property
    def recallable(self) -> bool:
        """Whether the stored observation is good enough to answer from."""
        required = 0.30 + 0.60 * self.fact.detail_scale
        return self.observed_quality >= required


class LongTermMemory:
    """Stores observations and answers later questions from them."""

    def __init__(self, space: Optional[ConceptSpace] = None) -> None:
        self.space = space or ConceptSpace()
        self._entries: list[MemoryEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> list[MemoryEntry]:
        return list(self._entries)

    def ingest(
        self,
        fact: SceneFact,
        observed_quality: float,
        observed_at: float,
        scene: Scene,
        layer: str = "base",
    ) -> MemoryEntry:
        """Store one observation (typically from an enhancement layer)."""
        if not 0.0 <= observed_quality <= 1.0:
            raise ValueError("observed_quality must be in [0, 1]")
        entry = MemoryEntry(
            fact=fact,
            observed_quality=float(observed_quality),
            observed_at=float(observed_at),
            scene_name=scene.name,
            layer=layer,
        )
        # Keep only the best observation of each fact.
        for index, existing in enumerate(self._entries):
            if (
                existing.fact.object_name == fact.object_name
                and existing.fact.key == fact.key
                and existing.scene_name == scene.name
            ):
                if observed_quality > existing.observed_quality:
                    self._entries[index] = entry
                return self._entries[index]
        self._entries.append(entry)
        return entry

    def recall(self, query: str, top_k: int = 3) -> list[MemoryEntry]:
        """Entries most semantically relevant to a query, best first."""
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        if not self._entries:
            return []
        query_vector = self.space.encode_concepts(self.space.extract_concepts(query))
        scored = []
        for entry in self._entries:
            concepts = list(entry.fact.query_concepts) or [entry.fact.object_name]
            entry_vector = self.space.encode_concepts(concepts)
            scored.append((cosine_similarity(query_vector, entry_vector), entry))
        scored.sort(key=lambda pair: pair[0], reverse=True)
        return [entry for _, entry in scored[:top_k]]

    def answer_from_memory(self, fact: SceneFact, scene_name: str) -> Optional[str]:
        """Answer a question purely from memory, or None when not recallable."""
        for entry in self._entries:
            if (
                entry.fact.object_name == fact.object_name
                and entry.fact.key == fact.key
                and entry.scene_name == scene_name
            ):
                return entry.fact.value if entry.recallable else None
        return None

    def coverage(self, facts: Sequence[SceneFact], scene_name: str) -> float:
        """Fraction of the given facts answerable from memory."""
        if not facts:
            raise ValueError("facts must not be empty")
        hits = sum(
            1 for fact in facts if self.answer_from_memory(fact, scene_name) == fact.value
        )
        return hits / len(facts)
