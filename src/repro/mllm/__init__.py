"""MLLM substrate: embeddings, CLIP substitute, sampling, tokenizers, model.

Everything the paper needs from the AI side of AI Video Chat, simulated so
that it runs offline on a laptop: a shared text/image concept space, a
MobileCLIP-style correlation map (Equation 1), the receiver-side frame
sampler (≤2 FPS, ≤602,112 pixels), continuous/discrete video tokenizers, a
quality-gated simulated MLLM, the inference latency model, long-term memory,
and client/cloud model collaboration.
"""

from .clip import ClipConfig, ClipPatchEncoder, ClipTextEncoder, CorrelationMap, MobileClip
from .embedding import (
    DEFAULT_CONCEPT_RELATIONS,
    DEFAULT_SYNONYMS,
    ConceptSpace,
    cosine_similarity,
)
from .inference import (
    DEFAULT_AUDIO_ONLY_FLOOR_MS,
    DEFAULT_RESPONSE_BUDGET_MS,
    InferenceConfig,
    LatencyBudget,
    default_inference_config,
    transmission_budget_ms,
)
from .memory import LongTermMemory, MemoryEntry
from .mobile import CollaborationConfig, ModelCollaboration, RoutedAnswer
from .model import (
    GLM_4_5V,
    MODE_FREE_RESPONSE,
    MODE_MULTIPLE_CHOICE,
    MOBILE_MLLM,
    QWEN2_5_OMNI,
    QWEN3_VL_PLUS,
    UNCLEAR_ANSWER,
    MllmAnswer,
    MllmProfile,
    SimulatedMLLM,
)
from .sampler import (
    DEFAULT_MAX_FPS,
    DEFAULT_MAX_PIXELS,
    ReceiverSampler,
    SamplerConfig,
    SamplingReport,
    perceived_throughput_bps,
    sender_throughput_bps,
)
from .tokenizer import (
    ContinuousTokenizer,
    DiscreteTokenizer,
    TokenizedFrame,
    TokenizerConfig,
    TokenLossResult,
    compare_token_stream_bitrates,
    drop_and_recover_tokens,
)

__all__ = [
    "CollaborationConfig",
    "ClipConfig",
    "ClipPatchEncoder",
    "ClipTextEncoder",
    "ConceptSpace",
    "ContinuousTokenizer",
    "CorrelationMap",
    "DEFAULT_AUDIO_ONLY_FLOOR_MS",
    "DEFAULT_CONCEPT_RELATIONS",
    "DEFAULT_MAX_FPS",
    "DEFAULT_MAX_PIXELS",
    "DEFAULT_RESPONSE_BUDGET_MS",
    "DEFAULT_SYNONYMS",
    "DiscreteTokenizer",
    "GLM_4_5V",
    "InferenceConfig",
    "LatencyBudget",
    "LongTermMemory",
    "MemoryEntry",
    "MllmAnswer",
    "MllmProfile",
    "MobileClip",
    "MODE_FREE_RESPONSE",
    "MODE_MULTIPLE_CHOICE",
    "MOBILE_MLLM",
    "ModelCollaboration",
    "QWEN2_5_OMNI",
    "QWEN3_VL_PLUS",
    "ReceiverSampler",
    "RoutedAnswer",
    "SamplerConfig",
    "SamplingReport",
    "SimulatedMLLM",
    "TokenLossResult",
    "TokenizedFrame",
    "TokenizerConfig",
    "UNCLEAR_ANSWER",
    "compare_token_stream_bitrates",
    "cosine_similarity",
    "default_inference_config",
    "drop_and_recover_tokens",
    "perceived_throughput_bps",
    "sender_throughput_bps",
    "transmission_budget_ms",
]
