"""The end-to-end AI Video Chat pipeline (Figure 1 of the paper).

One :class:`AIVideoChatSession` wires every substrate together for a single
user↔MLLM dialogue turn:

1. the client captures frames of the scene and (optionally) runs the
   context-aware streamer so chat-important regions keep their quality;
2. the encoded frames are packetised and shipped over the emulated uplink
   with NACK-based loss recovery;
3. the receiver hands the delivered frames — ordered by capture timestamp,
   with or without a jitter buffer — to the receiver-side sampler;
4. the simulated MLLM answers the user's question from whatever visual
   evidence survived compression and transmission;
5. the response-latency budget of Section 1 is assembled from the measured
   pieces (encode, transmission, decode, buffering, inference).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..mllm.inference import LatencyBudget
from ..mllm.model import MODE_MULTIPLE_CHOICE, MllmAnswer, SimulatedMLLM
from ..mllm.sampler import ReceiverSampler
from ..net.emulator import PathConfig
from ..net.jitter_buffer import JitterBuffer, PassthroughBuffer, frames_in_capture_order
from ..net.transport import TransportConfig, VideoTransportSession
from ..video.frames import VideoFrame
from ..video.scene import Scene, SceneFact
from .context_aware import ContextAwareStreamer, EncodeOutcome, StreamingConfig, UniformStreamer


@dataclass
class ChatSessionConfig:
    """Configuration of one AI Video Chat session."""

    #: Target uplink video bitrate; None lets Equation (2) set the rate freely.
    target_bitrate_bps: Optional[float] = 400_000.0
    #: Whether the sender runs context-aware streaming or the uniform baseline.
    context_aware: bool = True
    #: Frame rate of the frames actually encoded and transmitted to the MLLM.
    mllm_fps: float = 2.0
    #: Seconds of video preceding the question that are streamed for context.
    window_s: float = 1.5
    #: Whether the receiver holds frames in a jitter buffer before the MLLM.
    use_jitter_buffer: bool = False
    #: Answer mode for the MLLM (multiple choice or free response).
    answer_mode: str = MODE_MULTIPLE_CHOICE
    #: Client-side encode and receiver-side decode costs per frame.
    encode_ms_per_frame: float = 8.0
    decode_ms_per_frame: float = 4.0
    #: How long the transport simulation keeps running after the last frame.
    drain_s: float = 3.0


@dataclass
class ChatTurnResult:
    """Everything measured during one dialogue turn."""

    question: str
    answer: MllmAnswer
    context_aware: bool
    frames_sent: int
    frames_delivered: int
    achieved_bitrate_bps: float
    mean_transmission_latency_s: float
    last_frame_transmission_latency_s: float
    client_compute_ms: float
    jitter_buffer_delay_ms: float
    latency_budget: LatencyBudget
    encode_outcomes: list[EncodeOutcome] = field(default_factory=list)

    @property
    def correct(self) -> bool:
        return self.answer.correct

    @property
    def response_latency_ms(self) -> float:
        return self.latency_budget.total_ms

    @property
    def meets_300ms_target(self) -> bool:
        return self.latency_budget.meets_target


class AIVideoChatSession:
    """A single-scene AI Video Chat endpoint pair (client + cloud MLLM)."""

    def __init__(
        self,
        scene: Scene,
        session_config: Optional[ChatSessionConfig] = None,
        uplink_config: Optional[PathConfig] = None,
        transport_config: Optional[TransportConfig] = None,
        streamer: Optional[ContextAwareStreamer] = None,
        baseline: Optional[UniformStreamer] = None,
        mllm: Optional[SimulatedMLLM] = None,
        sampler: Optional[ReceiverSampler] = None,
    ) -> None:
        self.scene = scene
        self.config = session_config or ChatSessionConfig()
        self.uplink_config = uplink_config or PathConfig()
        self.transport_config = transport_config or TransportConfig()
        self.streamer = streamer or ContextAwareStreamer(StreamingConfig())
        self.baseline = baseline or UniformStreamer(StreamingConfig())
        self.mllm = mllm or SimulatedMLLM()
        self.sampler = sampler or ReceiverSampler()

    # -- frame selection -------------------------------------------------------

    def _frames_for_turn(self) -> list[VideoFrame]:
        """Frames at the MLLM ingestion rate covering the context window."""
        source = self.scene.to_source()
        stride = max(1, int(round(self.scene.fps / self.config.mllm_fps)))
        count = max(1, int(round(self.config.window_s * self.config.mllm_fps)))
        last_index = source.frame_count() - 1
        indices = [max(0, last_index - stride * offset) for offset in range(count)][::-1]
        return [source.frame_at(index) for index in dict.fromkeys(indices)]

    # -- one turn ----------------------------------------------------------------

    def run_turn(
        self,
        fact: SceneFact,
        user_words: Optional[str] = None,
        extra_concepts: Sequence[str] = (),
    ) -> ChatTurnResult:
        """Run one full dialogue turn for a question about ``fact``."""
        words = user_words if user_words is not None else fact.question
        originals = self._frames_for_turn()
        per_frame_fps = self.config.mllm_fps

        # 1. client-side encoding -------------------------------------------------
        outcomes: list[EncodeOutcome] = []
        for frame in originals:
            if self.config.context_aware:
                outcome = self.streamer.encode_frame(
                    self.scene,
                    frame,
                    words,
                    target_bitrate_bps=self.config.target_bitrate_bps,
                    fps=per_frame_fps,
                    extra_concepts=extra_concepts,
                )
            else:
                outcome = self.baseline.encode_frame(
                    frame,
                    target_bitrate_bps=self.config.target_bitrate_bps,
                    fps=per_frame_fps,
                )
            outcomes.append(outcome)

        # 2. transmission over the emulated uplink --------------------------------
        session = VideoTransportSession(
            uplink_config=self.uplink_config, transport_config=self.transport_config
        )
        interval = 1.0 / per_frame_fps
        for order, (frame, outcome) in enumerate(zip(originals, outcomes)):
            send_at = order * interval

            def _send(frame_id=frame.frame_id, size=outcome.encoded.size_bytes, t=send_at) -> None:
                session.send_frame(frame_id, size, capture_time=t)

            session.loop.schedule_at(send_at, _send)
        horizon = len(originals) * interval + self.config.drain_s
        session.run(until=horizon)

        records = {record.frame_id: record for record in session.stats.frames}
        delivered_ids = {fid for fid, record in records.items() if record.delivered}

        # 3. receiver-side buffering and ordering ----------------------------------
        buffer = JitterBuffer() if self.config.use_jitter_buffer else PassthroughBuffer()
        buffered = []
        for frame, outcome in zip(originals, outcomes):
            record = records.get(frame.frame_id)
            if record is None or not record.delivered:
                continue
            buffered.append(
                buffer.push(
                    frame.frame_id,
                    capture_time=record.capture_time,
                    arrival_time=record.complete_time,
                    payload=(frame, outcome),
                )
            )
        ordered = frames_in_capture_order(buffered)
        delivered_originals = [entry.payload[0] for entry in ordered]
        delivered_decoded = [
            VideoFrame(
                frame_id=entry.frame_id,
                timestamp=entry.payload[0].timestamp,
                pixels=entry.payload[1].decoded,
            )
            for entry in ordered
        ]

        # 4. MLLM answer -------------------------------------------------------------
        answer = self.mllm.answer_question(
            fact,
            self.scene,
            delivered_decoded,
            delivered_originals,
            mode=self.config.answer_mode,
            apply_frame_sampling=False,
        )

        # 5. latency budget ------------------------------------------------------------
        latencies = [
            records[fid].transmission_latency
            for fid in delivered_ids
            if records[fid].transmission_latency is not None
        ]
        last_latency = 0.0
        if ordered:
            last_record = records[ordered[-1].frame_id]
            if last_record.transmission_latency is not None:
                last_latency = last_record.transmission_latency
        jitter_delay_ms = buffer.added_latency() * 1000.0
        total_bits = sum(outcome.encoded.total_bits for outcome in outcomes)
        achieved_bitrate = total_bits / max(len(outcomes), 1) * per_frame_fps

        budget = LatencyBudget(
            capture_ms=0.5 * 1000.0 / max(self.scene.fps, 1.0),
            encode_ms=self.config.encode_ms_per_frame
            + (outcomes[-1].client_compute_ms if self.config.context_aware else 0.0),
            transmission_ms=last_latency * 1000.0,
            decode_ms=self.config.decode_ms_per_frame,
            jitter_buffer_ms=jitter_delay_ms,
            inference_ms=answer.inference_latency_ms,
            downlink_ms=self.uplink_config.propagation_delay_s * 1000.0,
        )

        return ChatTurnResult(
            question=words,
            answer=answer,
            context_aware=self.config.context_aware,
            frames_sent=len(originals),
            frames_delivered=len(delivered_ids),
            achieved_bitrate_bps=achieved_bitrate,
            mean_transmission_latency_s=float(np.mean(latencies)) if latencies else float("nan"),
            last_frame_transmission_latency_s=last_latency,
            client_compute_ms=outcomes[-1].client_compute_ms if outcomes else 0.0,
            jitter_buffer_delay_ms=jitter_delay_ms,
            latency_budget=budget,
            encode_outcomes=outcomes,
        )

    def run_dialogue(
        self, facts: Sequence[SceneFact], user_words: Optional[Sequence[str]] = None
    ) -> list[ChatTurnResult]:
        """Run one turn per fact (a multi-turn dialogue over the same scene)."""
        if user_words is not None and len(user_words) != len(facts):
            raise ValueError("user_words must align with facts")
        results = []
        for index, fact in enumerate(facts):
            words = user_words[index] if user_words is not None else None
            results.append(self.run_turn(fact, user_words=words))
        return results
