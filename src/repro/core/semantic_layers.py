"""Semantic layered video streaming (Section 4, "MLLM long-term memory").

Scalable video coding (SVC) layers a stream by *quality*; the paper proposes
layering by *semantic correlation* instead:

* the **base layer** carries the regions most important to the current chat
  context at high quality and must arrive with low latency;
* one or more **enhancement layers** carry the remaining detail, are not
  latency-sensitive, and are ingested offline to build the MLLM's long-term
  memory so that future questions about currently-irrelevant content can
  still be answered.

The implementation splits the context-aware QP map by correlation quantiles
into per-layer QP maps (regions outside a layer are pushed to the maximum
QP), encodes each layer with the shared block codec, and reconstructs by
taking, per block, the best-quality layer received so far.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..mllm.clip import CorrelationMap
from ..video.codec import MAX_QP, BlockCodec, EncodedFrame
from .qp_map import QpMapConfig, correlation_to_qp


@dataclass
class LayerConfig:
    """Configuration of the semantic layering."""

    #: Correlation thresholds splitting blocks into layers: the base layer
    #: holds blocks with correlation >= thresholds[0], layer 1 holds blocks
    #: in [thresholds[1], thresholds[0]), and so on; the final enhancement
    #: layer holds everything below the last threshold.
    thresholds: tuple[float, ...] = (0.45, 0.0)
    #: QP used inside each layer for the blocks it owns (base first).  Must
    #: have one more entry than ``thresholds``.
    layer_qps: tuple[float, ...] = (16.0, 30.0, 40.0)
    gamma: float = 3.0

    def __post_init__(self) -> None:
        if len(self.layer_qps) != len(self.thresholds) + 1:
            raise ValueError("layer_qps must have exactly one more entry than thresholds")
        if list(self.thresholds) != sorted(self.thresholds, reverse=True):
            raise ValueError("thresholds must be strictly decreasing")
        if any(not 0 <= qp <= MAX_QP for qp in self.layer_qps):
            raise ValueError("layer QPs must lie in the codec QP range")

    @property
    def layer_count(self) -> int:
        return len(self.layer_qps)


@dataclass
class SemanticLayer:
    """One encoded layer plus its block ownership mask."""

    index: int
    name: str
    encoded: EncodedFrame
    block_mask: np.ndarray  # True where this layer owns the block
    latency_sensitive: bool

    @property
    def size_bytes(self) -> int:
        # Only the blocks this layer owns count towards its payload; the rest
        # are encoded at the maximum QP and carry negligible bits, but we
        # charge them anyway to stay conservative.
        return self.encoded.size_bytes


@dataclass
class LayeredEncodeResult:
    """All layers of one frame."""

    layers: list[SemanticLayer]
    correlation: CorrelationMap
    block_assignment: np.ndarray  # layer index per block

    @property
    def base_layer(self) -> SemanticLayer:
        return self.layers[0]

    @property
    def enhancement_layers(self) -> list[SemanticLayer]:
        return self.layers[1:]

    @property
    def total_bytes(self) -> int:
        return sum(layer.size_bytes for layer in self.layers)


class SemanticLayeredEncoder:
    """Splits a frame into semantic layers and reconstructs from any subset."""

    def __init__(
        self,
        config: Optional[LayerConfig] = None,
        codec: Optional[BlockCodec] = None,
    ) -> None:
        self.config = config or LayerConfig()
        self.codec = codec or BlockCodec()

    def _assign_blocks(self, correlation_blocks: np.ndarray) -> np.ndarray:
        assignment = np.full(correlation_blocks.shape, self.config.layer_count - 1, dtype=int)
        for layer_index, threshold in enumerate(self.config.thresholds):
            mask = (correlation_blocks >= threshold) & (assignment == self.config.layer_count - 1)
            # Blocks not yet claimed by a more important layer and above this
            # threshold belong to this layer.
            claimed_by_earlier = np.zeros_like(assignment, dtype=bool)
            for earlier in range(layer_index):
                claimed_by_earlier |= assignment == earlier
            mask &= ~claimed_by_earlier
            assignment[mask] = layer_index
        return assignment

    def encode(
        self,
        pixels: np.ndarray,
        correlation: CorrelationMap,
        frame_id: int = 0,
        timestamp: float = 0.0,
    ) -> LayeredEncodeResult:
        """Encode one frame into semantic layers."""
        pixels = np.asarray(pixels, dtype=float)
        blocks = correlation.to_block_grid(self.codec.config.block_size, pixels.shape)
        assignment = self._assign_blocks(blocks)

        layers: list[SemanticLayer] = []
        for index in range(self.config.layer_count):
            mask = assignment == index
            qp_map = np.full(blocks.shape, float(MAX_QP))
            qp_map[mask] = self.config.layer_qps[index]
            encoded = self.codec.encode(pixels, qp_map, frame_id=frame_id, timestamp=timestamp)
            name = "base" if index == 0 else f"enhancement_{index}"
            layers.append(
                SemanticLayer(
                    index=index,
                    name=name,
                    encoded=encoded,
                    block_mask=mask,
                    latency_sensitive=index == 0,
                )
            )
        return LayeredEncodeResult(layers=layers, correlation=correlation, block_assignment=assignment)

    def reconstruct(
        self, result: LayeredEncodeResult, received_layers: Sequence[int]
    ) -> np.ndarray:
        """Reconstruct a frame from whichever layers have been received.

        Each block is taken from the received layer that owns it; blocks whose
        owning layer is missing fall back to the best received layer (which
        encoded them at maximum QP, i.e. heavily blurred) — mirroring how the
        base layer alone shows crisp important regions and coarse background.
        """
        received = sorted(set(received_layers))
        if not received:
            raise ValueError("at least one layer must be received")
        unknown = [index for index in received if not 0 <= index < self.config.layer_count]
        if unknown:
            raise ValueError(f"unknown layer indices: {unknown}")

        block = self.codec.config.block_size
        decoded_by_layer = {index: self.codec.decode(result.layers[index].encoded) for index in received}
        # Start from the lowest-index received layer as the canvas.
        canvas = decoded_by_layer[received[0]].copy()
        assignment = result.block_assignment
        for block_row in range(assignment.shape[0]):
            for block_col in range(assignment.shape[1]):
                owner = int(assignment[block_row, block_col])
                source = owner if owner in decoded_by_layer else received[0]
                row0, row1 = block_row * block, (block_row + 1) * block
                col0, col1 = block_col * block, (block_col + 1) * block
                row1 = min(row1, canvas.shape[0])
                col1 = min(col1, canvas.shape[1])
                canvas[row0:row1, col0:col1] = decoded_by_layer[source][row0:row1, col0:col1]
        return canvas

    def layer_bitrates_bps(self, result: LayeredEncodeResult, fps: float) -> dict[str, float]:
        """Per-layer bitrate at a given frame rate."""
        return {layer.name: layer.encoded.bitrate_bps(fps) for layer in result.layers}
