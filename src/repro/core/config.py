"""Top-level configuration bundle for the whole AI Video Chat stack.

A convenience aggregation so examples and benchmarks can configure the full
pipeline (network, transport, streaming, session) from one object, with the
paper's measurement defaults (10 Mbps uplink, 30 ms one-way delay, 2 FPS
MLLM ingestion, γ = 3) baked in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..net.emulator import BernoulliLoss, PathConfig
from ..net.transport import TransportConfig
from .context_aware import StreamingConfig
from .pipeline import ChatSessionConfig


@dataclass
class AiVideoChatConfig:
    """One object holding every knob of the reproduction stack."""

    #: Paper measurement setup: 10 Mbps uplink bandwidth.
    uplink_bandwidth_bps: float = 10_000_000.0
    #: Paper measurement setup: 30 ms one-way network delay.
    one_way_delay_s: float = 0.030
    packet_loss_rate: float = 0.0
    seed: int = 0

    streaming: StreamingConfig = field(default_factory=StreamingConfig)
    session: ChatSessionConfig = field(default_factory=ChatSessionConfig)
    transport: TransportConfig = field(default_factory=TransportConfig)

    def __post_init__(self) -> None:
        if self.uplink_bandwidth_bps <= 0:
            raise ValueError("uplink_bandwidth_bps must be positive")
        if self.one_way_delay_s < 0:
            raise ValueError("one_way_delay_s must be non-negative")
        if not 0.0 <= self.packet_loss_rate < 1.0:
            raise ValueError("packet_loss_rate must be in [0, 1)")

    def uplink_path(self) -> PathConfig:
        """The emulated uplink path described by this configuration."""
        return PathConfig(
            bandwidth_bps=self.uplink_bandwidth_bps,
            propagation_delay_s=self.one_way_delay_s,
            loss_model=BernoulliLoss(self.packet_loss_rate),
            seed=self.seed,
        )

    def with_loss(self, packet_loss_rate: float) -> "AiVideoChatConfig":
        """A copy of this configuration with a different loss rate."""
        return AiVideoChatConfig(
            uplink_bandwidth_bps=self.uplink_bandwidth_bps,
            one_way_delay_s=self.one_way_delay_s,
            packet_loss_rate=packet_loss_rate,
            seed=self.seed,
            streaming=self.streaming,
            session=self.session,
            transport=self.transport,
        )

    def with_bitrate(self, target_bitrate_bps: Optional[float]) -> "AiVideoChatConfig":
        """A copy of this configuration with a different target bitrate."""
        session = ChatSessionConfig(
            target_bitrate_bps=target_bitrate_bps,
            context_aware=self.session.context_aware,
            mllm_fps=self.session.mllm_fps,
            window_s=self.session.window_s,
            use_jitter_buffer=self.session.use_jitter_buffer,
            answer_mode=self.session.answer_mode,
            encode_ms_per_frame=self.session.encode_ms_per_frame,
            decode_ms_per_frame=self.session.decode_ms_per_frame,
            drain_s=self.session.drain_s,
        )
        return AiVideoChatConfig(
            uplink_bandwidth_bps=self.uplink_bandwidth_bps,
            one_way_delay_s=self.one_way_delay_s,
            packet_loss_rate=self.packet_loss_rate,
            seed=self.seed,
            streaming=self.streaming,
            session=session,
            transport=self.transport,
        )
