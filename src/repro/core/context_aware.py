"""Context-Aware Video Streaming — the paper's primary contribution (Section 3.2).

The streamer takes the current user words and the latest frame, computes the
semantic correlation of every video region against the words with the
CLIP-style encoder (Equation 1), converts correlation to a per-region QP map
(Equation 2), and encodes the frame so that chat-important regions keep
their quality while chat-irrelevant regions are compressed away.  A uniform-
QP encoder with the same rate-control loop provides the context-agnostic
baseline used throughout the evaluation (Figures 9 and 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from ..mllm.clip import ClipConfig, CorrelationMap, MobileClip
from ..video.codec import BlockCodec, EncodedFrame
from ..video.frames import VideoFrame
from ..video.rate_control import RateControlResult, encode_at_target_bitrate
from ..video.scene import Scene, SceneFact
from .qp_map import PAPER_GAMMA, QpMapConfig, correlation_to_qp, uniform_qp_map


@dataclass
class StreamingConfig:
    """Configuration of the context-aware streamer."""

    patch_size: int = 32
    gamma: float = PAPER_GAMMA
    #: QP used by the context-agnostic baseline when no bitrate target is given.
    baseline_qp: float = 35.0
    #: Rate-control tolerance when a target bitrate is requested.
    rate_tolerance: float = 0.05
    rate_iterations: int = 10
    #: Optional ceiling so no region is compressed beyond recognition.
    qp_ceiling: Optional[float] = None
    #: Stretch each frame's correlation map to the full [-1, 1] range before
    #: applying Equation (2).  The concept-embedding CLIP substitute produces
    #: similarities in a narrower, higher band than real CLIP, so without the
    #: stretch Equation (2) would under-penalise irrelevant regions; the
    #: stretch restores the paper's "almost exclusively important regions"
    #: allocation (documented as a substitution detail in DESIGN.md).
    normalize_correlation: bool = True

    def qp_config(self) -> QpMapConfig:
        return QpMapConfig(gamma=self.gamma, qp_ceiling=self.qp_ceiling)


@dataclass
class EncodeOutcome:
    """Everything produced when one frame is encoded for the current context."""

    encoded: EncodedFrame
    decoded: np.ndarray
    qp_map: np.ndarray
    correlation: Optional[CorrelationMap]
    rate_control: Optional[RateControlResult]
    client_compute_ms: float

    @property
    def size_bytes(self) -> int:
        return self.encoded.size_bytes

    def bitrate_bps(self, fps: float) -> float:
        return self.encoded.bitrate_bps(fps)


class ContextAwareStreamer:
    """Implements Equations (1) and (2): user words → QP map → encoded frame."""

    def __init__(
        self,
        config: Optional[StreamingConfig] = None,
        clip: Optional[MobileClip] = None,
        codec: Optional[BlockCodec] = None,
    ) -> None:
        self.config = config or StreamingConfig()
        self.clip = clip or MobileClip(config=ClipConfig(patch_size=self.config.patch_size))
        self.codec = codec or BlockCodec()

    # -- Equation (1): correlation --------------------------------------------

    def correlation_for(
        self,
        scene: Scene,
        user_words: str,
        frame: Optional[Union[VideoFrame, np.ndarray]] = None,
        extra_concepts: Sequence[str] = (),
        time_s: float = 0.0,
    ) -> CorrelationMap:
        """Semantic correlation of every patch against the current user words."""
        pixels = frame.pixels if isinstance(frame, VideoFrame) else frame
        return self.clip.correlation_map(
            scene,
            user_words,
            frame_pixels=pixels,
            original_pixels=pixels,
            extra_concepts=extra_concepts,
            time_s=time_s,
        )

    # -- Equation (2): QP map -----------------------------------------------

    def qp_map_for(
        self, correlation: CorrelationMap, frame_shape: tuple[int, int]
    ) -> np.ndarray:
        """Per-codec-block QP map derived from a correlation map."""
        block_grid = correlation.to_block_grid(self.codec.config.block_size, frame_shape)
        if self.config.normalize_correlation:
            low, high = float(block_grid.min()), float(block_grid.max())
            if high - low > 1e-9:
                block_grid = 2.0 * (block_grid - low) / (high - low) - 1.0
        return np.asarray(
            correlation_to_qp(block_grid, self.config.qp_config()), dtype=float
        )

    # -- encoding -------------------------------------------------------------

    def encode_frame(
        self,
        scene: Scene,
        frame: Union[VideoFrame, np.ndarray],
        user_words: str,
        target_bitrate_bps: Optional[float] = None,
        fps: float = 2.0,
        extra_concepts: Sequence[str] = (),
        frame_id: int = 0,
        timestamp: float = 0.0,
    ) -> EncodeOutcome:
        """Encode one frame with context-aware bit allocation.

        Without a target bitrate the QP map from Equation (2) is used as-is;
        with a target bitrate the same trial-and-error offset search as the
        baseline is applied on top of the map so matched-bitrate comparisons
        (Figure 9/10) are apples-to-apples.
        """
        pixels = frame.pixels if isinstance(frame, VideoFrame) else np.asarray(frame, dtype=float)
        timestamp = frame.timestamp if isinstance(frame, VideoFrame) else timestamp
        frame_id = frame.frame_id if isinstance(frame, VideoFrame) else frame_id

        correlation = self.correlation_for(
            scene, user_words, pixels, extra_concepts=extra_concepts, time_s=timestamp
        )
        qp_map = self.qp_map_for(correlation, pixels.shape)

        rate_result: Optional[RateControlResult] = None
        if target_bitrate_bps is None:
            encoded = self.codec.encode(
                pixels, qp_map, frame_id=frame_id, timestamp=timestamp
            )
        else:
            rate_result = encode_at_target_bitrate(
                self.codec,
                pixels,
                target_bitrate_bps,
                fps=fps,
                base_qp_map=qp_map,
                tolerance=self.config.rate_tolerance,
                max_iterations=self.config.rate_iterations,
                frame_id=frame_id,
                timestamp=timestamp,
            )
            encoded = rate_result.encoded
        decoded = self.codec.decode(encoded)
        return EncodeOutcome(
            encoded=encoded,
            decoded=decoded,
            qp_map=encoded.qp_map,
            correlation=correlation,
            rate_control=rate_result,
            client_compute_ms=correlation.compute_latency_ms,
        )

    # -- helpers for ABR integration ------------------------------------------

    def accuracy_predictor(
        self,
        scene: Scene,
        frame: Union[VideoFrame, np.ndarray],
        fact: SceneFact,
        fps: float = 2.0,
        required_quality_fn=None,
    ):
        """Build a bitrate→predicted-accuracy callable for :class:`AiOrientedAbr`.

        The prediction encodes the frame at the candidate bitrate with the
        context-aware QP map and checks whether the fact's region would still
        be readable; it returns 1.0 or the multiple-choice guess floor 0.25.
        """
        from ..video.quality import region_quality  # local import to avoid cycles

        pixels = frame.pixels if isinstance(frame, VideoFrame) else np.asarray(frame, dtype=float)
        required = (
            required_quality_fn(fact.detail_scale)
            if required_quality_fn is not None
            else 0.30 + 0.60 * fact.detail_scale
        )
        obj = scene.object_by_name(fact.object_name)
        region = obj.pixel_region(pixels.shape[0], pixels.shape[1])

        def predict(bitrate_bps: float) -> float:
            outcome = self.encode_frame(
                scene, pixels, fact.question, target_bitrate_bps=bitrate_bps, fps=fps
            )
            report = region_quality(pixels, outcome.decoded, region)
            return 1.0 if report.readable_score >= required else 0.25

        return predict


class UniformStreamer:
    """The context-agnostic baseline: the same codec with a single QP everywhere."""

    def __init__(
        self,
        config: Optional[StreamingConfig] = None,
        codec: Optional[BlockCodec] = None,
    ) -> None:
        self.config = config or StreamingConfig()
        self.codec = codec or BlockCodec()

    def encode_frame(
        self,
        frame: Union[VideoFrame, np.ndarray],
        target_bitrate_bps: Optional[float] = None,
        fps: float = 2.0,
        qp: Optional[float] = None,
        frame_id: int = 0,
        timestamp: float = 0.0,
    ) -> EncodeOutcome:
        """Encode one frame with a uniform QP (optionally rate-controlled)."""
        pixels = frame.pixels if isinstance(frame, VideoFrame) else np.asarray(frame, dtype=float)
        timestamp = frame.timestamp if isinstance(frame, VideoFrame) else timestamp
        frame_id = frame.frame_id if isinstance(frame, VideoFrame) else frame_id
        base_qp = self.config.baseline_qp if qp is None else float(qp)

        rate_result: Optional[RateControlResult] = None
        if target_bitrate_bps is None:
            encoded = self.codec.encode(pixels, base_qp, frame_id=frame_id, timestamp=timestamp)
        else:
            rate_result = encode_at_target_bitrate(
                self.codec,
                pixels,
                target_bitrate_bps,
                fps=fps,
                base_qp_map=base_qp,
                tolerance=self.config.rate_tolerance,
                max_iterations=self.config.rate_iterations,
                frame_id=frame_id,
                timestamp=timestamp,
            )
            encoded = rate_result.encoded
        decoded = self.codec.decode(encoded)
        return EncodeOutcome(
            encoded=encoded,
            decoded=decoded,
            qp_map=encoded.qp_map,
            correlation=None,
            rate_control=rate_result,
            client_compute_ms=0.0,
        )
