"""The paper's contribution: context-aware video streaming for AI receivers.

This package holds the primary contribution (Equations 1 and 2 — user-word /
video-region correlation mapped to per-region QP), the end-to-end AI Video
Chat pipeline, and the Section 4 extensions (proactive context awareness,
semantic layered streaming, and context-aware token pruning).
"""

from .config import AiVideoChatConfig
from .context_aware import (
    ContextAwareStreamer,
    EncodeOutcome,
    StreamingConfig,
    UniformStreamer,
)
from .patches import Patch, PatchGrid
from .pipeline import AIVideoChatSession, ChatSessionConfig, ChatTurnResult
from .proactive import (
    HistoryProactivePolicy,
    HybridProactivePolicy,
    ProactivePolicy,
    SaliencyProactivePolicy,
)
from .qp_map import (
    PAPER_GAMMA,
    QpMapConfig,
    correlation_to_qp,
    qp_map_for_block_grid,
    qp_map_statistics,
    qp_to_expected_correlation,
    uniform_qp_map,
)
from .semantic_layers import (
    LayerConfig,
    LayeredEncodeResult,
    SemanticLayer,
    SemanticLayeredEncoder,
)
from .token_pruning import ContextAwareTokenPruner, PruningConfig, PruningResult

__all__ = [
    "AIVideoChatSession",
    "AiVideoChatConfig",
    "ChatSessionConfig",
    "ChatTurnResult",
    "ContextAwareStreamer",
    "ContextAwareTokenPruner",
    "EncodeOutcome",
    "HistoryProactivePolicy",
    "HybridProactivePolicy",
    "LayerConfig",
    "LayeredEncodeResult",
    "PAPER_GAMMA",
    "Patch",
    "PatchGrid",
    "ProactivePolicy",
    "PruningConfig",
    "PruningResult",
    "QpMapConfig",
    "SaliencyProactivePolicy",
    "SemanticLayer",
    "SemanticLayeredEncoder",
    "StreamingConfig",
    "UniformStreamer",
    "correlation_to_qp",
    "qp_map_for_block_grid",
    "qp_map_statistics",
    "qp_to_expected_correlation",
    "uniform_qp_map",
]
