"""Context-aware token pruning (Section 4, "Token pruning").

MLLM inference is autoregressive, so its latency scales with the number of
input tokens; pruning visual tokens is the standard lever (the paper cites
AIM and TimeChat-Online).  Context-aware streaming has already scored every
region's relevance to the chat, so the natural extension is to prune the
visual tokens of chat-irrelevant regions before they ever reach the model.

The pruner maps the CLIP correlation map onto the vision-tower token grid,
keeps the most relevant tokens (plus an optional uniformly-sampled retention
floor so global context is not lost), and reports the inference-latency
saving through the shared :class:`~repro.mllm.inference.InferenceConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..mllm.clip import CorrelationMap
from ..mllm.inference import InferenceConfig, default_inference_config
from ..video.frames import VideoFrame


@dataclass
class PruningConfig:
    """Configuration of the context-aware token pruner."""

    #: Side length (pixels) of the square image patch behind one visual token.
    token_patch_size: int = 28
    #: Fraction of tokens to keep (by correlation rank).
    keep_ratio: float = 0.3
    #: Fraction of the *pruned* tokens re-added uniformly so the model keeps
    #: a coarse view of the whole frame.
    uniform_floor_ratio: float = 0.05

    def __post_init__(self) -> None:
        if self.token_patch_size <= 0:
            raise ValueError("token_patch_size must be positive")
        if not 0.0 < self.keep_ratio <= 1.0:
            raise ValueError("keep_ratio must be in (0, 1]")
        if not 0.0 <= self.uniform_floor_ratio < 1.0:
            raise ValueError("uniform_floor_ratio must be in [0, 1)")


@dataclass
class PruningResult:
    """Which tokens survive pruning and what that saves."""

    token_grid_shape: tuple[int, int]
    keep_mask: np.ndarray
    token_scores: np.ndarray
    kept_tokens: int
    total_tokens: int
    latency_before_ms: float
    latency_after_ms: float

    @property
    def kept_ratio(self) -> float:
        if self.total_tokens == 0:
            return 0.0
        return self.kept_tokens / self.total_tokens

    @property
    def latency_saving_ms(self) -> float:
        return self.latency_before_ms - self.latency_after_ms

    def region_kept_fraction(self, pixel_region: tuple[int, int, int, int], patch_size: int) -> float:
        """Fraction of the tokens covering a pixel region that survived pruning."""
        row0, row1, col0, col1 = pixel_region
        tr0, tr1 = row0 // patch_size, max(row0 // patch_size + 1, int(np.ceil(row1 / patch_size)))
        tc0, tc1 = col0 // patch_size, max(col0 // patch_size + 1, int(np.ceil(col1 / patch_size)))
        tr1 = min(tr1, self.keep_mask.shape[0])
        tc1 = min(tc1, self.keep_mask.shape[1])
        window = self.keep_mask[tr0:tr1, tc0:tc1]
        if window.size == 0:
            return 0.0
        return float(window.mean())


class ContextAwareTokenPruner:
    """Prunes visual tokens by chat relevance before MLLM ingestion."""

    def __init__(
        self,
        config: Optional[PruningConfig] = None,
        inference_config: Optional[InferenceConfig] = None,
    ) -> None:
        self.config = config or PruningConfig()
        self.inference_config = inference_config or default_inference_config()

    def _token_scores(self, frame: VideoFrame, correlation: CorrelationMap) -> np.ndarray:
        patch = self.config.token_patch_size
        rows = int(np.ceil(frame.height / patch))
        cols = int(np.ceil(frame.width / patch))
        scores = np.zeros((rows, cols))
        for row in range(rows):
            for col in range(cols):
                centre_row = min(frame.height - 1, row * patch + patch // 2)
                centre_col = min(frame.width - 1, col * patch + patch // 2)
                source_row = min(correlation.values.shape[0] - 1, centre_row // correlation.patch_size)
                source_col = min(correlation.values.shape[1] - 1, centre_col // correlation.patch_size)
                scores[row, col] = correlation.values[source_row, source_col]
        return scores

    def prune(self, frame: VideoFrame, correlation: CorrelationMap) -> PruningResult:
        """Decide which visual tokens of this frame survive."""
        scores = self._token_scores(frame, correlation)
        total = scores.size
        keep_count = max(1, int(round(self.config.keep_ratio * total)))

        flat_order = np.argsort(scores.ravel())[::-1]
        keep_mask = np.zeros(total, dtype=bool)
        keep_mask[flat_order[:keep_count]] = True

        # Uniform retention floor over the pruned tokens.
        if self.config.uniform_floor_ratio > 0:
            pruned_indices = np.flatnonzero(~keep_mask)
            floor_count = int(round(self.config.uniform_floor_ratio * pruned_indices.size))
            if floor_count > 0:
                stride = max(1, pruned_indices.size // floor_count)
                keep_mask[pruned_indices[::stride][:floor_count]] = True

        keep_mask = keep_mask.reshape(scores.shape)
        kept = int(keep_mask.sum())
        latency_before = self.inference_config.first_response_latency_ms(total)
        latency_after = self.inference_config.first_response_latency_ms(kept)
        return PruningResult(
            token_grid_shape=scores.shape,
            keep_mask=keep_mask,
            token_scores=scores,
            kept_tokens=kept,
            total_tokens=total,
            latency_before_ms=latency_before,
            latency_after_ms=latency_after,
        )
