"""Proactive context awareness (Section 4, "Proactive context-aware").

The reactive mechanism of Section 3.2 needs the user's words *before* the
frame is encoded, but users may speak at any time — some segments have no
words to condition on.  The paper's proposed next step is a mechanism that
recognises likely-important regions even when the user is silent.

We implement three proactive policies:

* :class:`SaliencyProactivePolicy` — score patches by visual saliency
  (local contrast / fine structure), on the premise that detail-rich regions
  are the ones detail questions will target;
* :class:`HistoryProactivePolicy` — reuse the correlation maps of the recent
  dialogue turns with exponential decay, on the premise that conversations
  have topical locality;
* :class:`HybridProactivePolicy` — a weighted blend of the two, falling back
  to saliency when there is no history.

Each policy produces a pseudo-correlation map in [−1, 1], so it plugs into
the same Equation (2) QP mapping as the reactive streamer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..mllm.clip import CorrelationMap
from ..video.frames import VideoFrame
from .patches import PatchGrid


class ProactivePolicy:
    """Interface: produce a pseudo-correlation map without user words."""

    def importance_map(self, frame: VideoFrame) -> CorrelationMap:  # pragma: no cover
        raise NotImplementedError


@dataclass
class SaliencyProactivePolicy(ProactivePolicy):
    """Visual saliency: regions with fine structure get high importance.

    The score of a patch is its normalised local standard deviation plus a
    gradient-energy term, squashed into [−1, 1] so it can reuse Equation (2).
    """

    patch_size: int = 32
    #: Exponent shaping the saliency distribution (higher → more peaked).
    sharpness: float = 1.0

    def importance_map(self, frame: VideoFrame) -> CorrelationMap:
        grid = PatchGrid(frame.height, frame.width, self.patch_size)
        scores = np.zeros(grid.shape)
        for patch in grid:
            pixels = grid.extract(frame.pixels, patch)
            contrast = float(pixels.std())
            gy, gx = np.gradient(pixels)
            gradient_energy = float(np.mean(np.abs(gx)) + np.mean(np.abs(gy)))
            scores[patch.row, patch.col] = contrast + gradient_energy
        if scores.max() > scores.min():
            normalised = (scores - scores.min()) / (scores.max() - scores.min())
        else:
            normalised = np.full(grid.shape, 0.5)
        normalised = normalised**self.sharpness
        correlation = 2.0 * normalised - 1.0
        return CorrelationMap(
            values=correlation,
            patch_size=self.patch_size,
            frame_shape=(frame.height, frame.width),
            query="<proactive:saliency>",
            query_concepts=(),
        )


@dataclass
class HistoryProactivePolicy(ProactivePolicy):
    """Topical locality: recent questions predict where future questions look."""

    patch_size: int = 32
    decay: float = 0.6
    max_history: int = 8
    _history: list[np.ndarray] = field(default_factory=list)

    def observe(self, correlation: CorrelationMap) -> None:
        """Record the correlation map of a completed dialogue turn."""
        if correlation.patch_size != self.patch_size:
            raise ValueError(
                f"history patch size {correlation.patch_size} does not match policy {self.patch_size}"
            )
        self._history.append(np.asarray(correlation.values, dtype=float))
        if len(self._history) > self.max_history:
            self._history = self._history[-self.max_history :]

    @property
    def history_length(self) -> int:
        return len(self._history)

    def importance_map(self, frame: VideoFrame) -> CorrelationMap:
        grid = PatchGrid(frame.height, frame.width, self.patch_size)
        if not self._history:
            values = np.zeros(grid.shape)
        else:
            weights = np.array([self.decay**age for age in range(len(self._history))][::-1])
            weights /= weights.sum()
            stacked = np.stack([self._resize(h, grid.shape) for h in self._history])
            values = np.tensordot(weights, stacked, axes=1)
        return CorrelationMap(
            values=np.clip(values, -1.0, 1.0),
            patch_size=self.patch_size,
            frame_shape=(frame.height, frame.width),
            query="<proactive:history>",
            query_concepts=(),
        )

    @staticmethod
    def _resize(values: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
        if values.shape == shape:
            return values
        rows = np.minimum(
            (np.arange(shape[0]) * values.shape[0]) // shape[0], values.shape[0] - 1
        )
        cols = np.minimum(
            (np.arange(shape[1]) * values.shape[1]) // shape[1], values.shape[1] - 1
        )
        return values[np.ix_(rows, cols)]


@dataclass
class HybridProactivePolicy(ProactivePolicy):
    """Blend of saliency and dialogue history."""

    patch_size: int = 32
    history_weight: float = 0.6
    saliency: SaliencyProactivePolicy = field(default=None)  # type: ignore[assignment]
    history: HistoryProactivePolicy = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not 0.0 <= self.history_weight <= 1.0:
            raise ValueError("history_weight must be in [0, 1]")
        if self.saliency is None:
            self.saliency = SaliencyProactivePolicy(patch_size=self.patch_size)
        if self.history is None:
            self.history = HistoryProactivePolicy(patch_size=self.patch_size)

    def observe(self, correlation: CorrelationMap) -> None:
        self.history.observe(correlation)

    def importance_map(self, frame: VideoFrame) -> CorrelationMap:
        saliency_map = self.saliency.importance_map(frame)
        if self.history.history_length == 0:
            return saliency_map
        history_map = self.history.importance_map(frame)
        blended = (
            self.history_weight * history_map.values
            + (1.0 - self.history_weight) * saliency_map.values
        )
        return CorrelationMap(
            values=np.clip(blended, -1.0, 1.0),
            patch_size=self.patch_size,
            frame_shape=saliency_map.frame_shape,
            query="<proactive:hybrid>",
            query_concepts=(),
        )
