"""Correlation-to-QP mapping (Equation 2 of the paper).

Given the semantic correlation ρ_mn ∈ [−1, 1] of each region, the paper
derives its quantisation parameter as

    QP_mn = 51 · (1 − ((ρ_mn + 1) / 2)^γ)

with temperature γ = 3 "to aggressively penalise irrelevant regions".
This module implements that mapping, its clamping, optional floors/ceilings
(a minimum quality for every region so the frame stays decodable), and the
resampling from CLIP patch grid to codec block grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..video.codec import MAX_QP, MIN_QP

#: Temperature used in the paper's evaluation.
PAPER_GAMMA = 3.0


@dataclass
class QpMapConfig:
    """Configuration of the correlation→QP mapping."""

    gamma: float = PAPER_GAMMA
    max_qp: float = float(MAX_QP)
    #: Optional QP floor for the most important regions (0 = allow lossless-ish).
    min_qp: float = float(MIN_QP)
    #: Optional cap applied after the mapping so no region is *completely*
    #: destroyed (useful for the semantic-layer base stream); defaults to the
    #: paper's behaviour of allowing QP up to 51.
    qp_ceiling: Optional[float] = None

    def __post_init__(self) -> None:
        if self.gamma <= 0:
            raise ValueError("gamma must be positive")
        if not MIN_QP <= self.min_qp <= MAX_QP:
            raise ValueError(f"min_qp must be within [{MIN_QP}, {MAX_QP}]")
        if not MIN_QP <= self.max_qp <= MAX_QP:
            raise ValueError(f"max_qp must be within [{MIN_QP}, {MAX_QP}]")
        if self.min_qp > self.max_qp:
            raise ValueError("min_qp must not exceed max_qp")
        if self.qp_ceiling is not None and not MIN_QP <= self.qp_ceiling <= MAX_QP:
            raise ValueError("qp_ceiling must be within the QP range")


def correlation_to_qp(
    correlation: Union[float, np.ndarray],
    config: Optional[QpMapConfig] = None,
) -> Union[float, np.ndarray]:
    """Apply Equation (2): map semantic correlation to QP.

    Accepts scalars or arrays; correlations are clipped to [−1, 1] first.
    Larger correlation → smaller QP → more bits for that region.
    """
    config = config or QpMapConfig()
    rho = np.clip(np.asarray(correlation, dtype=float), -1.0, 1.0)
    normalised = (rho + 1.0) / 2.0
    qp = config.max_qp * (1.0 - np.power(normalised, config.gamma))
    qp = np.clip(qp, config.min_qp, config.max_qp)
    if config.qp_ceiling is not None:
        qp = np.minimum(qp, config.qp_ceiling)
    if np.isscalar(correlation):
        return float(qp)
    return qp


def qp_to_expected_correlation(qp: Union[float, np.ndarray], config: Optional[QpMapConfig] = None) -> Union[float, np.ndarray]:
    """Invert Equation (2) (useful for analysing an observed QP map)."""
    config = config or QpMapConfig()
    qp_arr = np.clip(np.asarray(qp, dtype=float), MIN_QP, config.max_qp)
    normalised = np.power(1.0 - qp_arr / config.max_qp, 1.0 / config.gamma)
    rho = 2.0 * normalised - 1.0
    if np.isscalar(qp):
        return float(rho)
    return rho


def qp_map_for_block_grid(
    correlation_block_grid: np.ndarray,
    config: Optional[QpMapConfig] = None,
) -> np.ndarray:
    """Equation (2) applied to a correlation map already on the codec block grid."""
    qp = correlation_to_qp(np.asarray(correlation_block_grid, dtype=float), config)
    return np.asarray(qp, dtype=float)


def uniform_qp_map(shape: tuple[int, int], qp: float) -> np.ndarray:
    """The context-agnostic baseline: one QP everywhere."""
    if not MIN_QP <= qp <= MAX_QP:
        raise ValueError(f"qp must be within [{MIN_QP}, {MAX_QP}]")
    return np.full(shape, float(qp))


def qp_map_statistics(qp_map: np.ndarray) -> dict[str, float]:
    """Summary statistics of a QP map (used in Figure 10-style reports)."""
    qp_map = np.asarray(qp_map, dtype=float)
    return {
        "min_qp": float(qp_map.min()),
        "max_qp": float(qp_map.max()),
        "mean_qp": float(qp_map.mean()),
        "std_qp": float(qp_map.std()),
        "fraction_at_ceiling": float(np.mean(qp_map >= MAX_QP - 0.5)),
        "fraction_high_quality": float(np.mean(qp_map <= 20.0)),
    }
