"""Frame partitioning into non-overlapping patches (Section 3.2).

The context-aware streamer partitions the latest frame F ∈ R^{H×W} into
non-overlapping N×N patches {P_mn}; each patch is a candidate video region
whose semantic correlation against the user's words decides its bitrate
share.  This module owns that partition and the mapping between patch grid,
codec block grid and pixel regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np


@dataclass(frozen=True)
class Patch:
    """One N×N region of a frame."""

    row: int
    col: int
    pixel_region: tuple[int, int, int, int]  # (row0, row1, col0, col1)

    @property
    def height(self) -> int:
        return self.pixel_region[1] - self.pixel_region[0]

    @property
    def width(self) -> int:
        return self.pixel_region[3] - self.pixel_region[2]


class PatchGrid:
    """The non-overlapping patch partition of an H×W frame."""

    def __init__(self, height: int, width: int, patch_size: int) -> None:
        if height <= 0 or width <= 0:
            raise ValueError("frame dimensions must be positive")
        if patch_size <= 0:
            raise ValueError("patch_size must be positive")
        self.height = int(height)
        self.width = int(width)
        self.patch_size = int(patch_size)
        self.rows = int(np.ceil(height / patch_size))
        self.cols = int(np.ceil(width / patch_size))

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def patch_count(self) -> int:
        return self.rows * self.cols

    def patch(self, row: int, col: int) -> Patch:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"patch ({row}, {col}) outside grid {self.shape}")
        row0 = row * self.patch_size
        col0 = col * self.patch_size
        row1 = min(self.height, row0 + self.patch_size)
        col1 = min(self.width, col0 + self.patch_size)
        return Patch(row=row, col=col, pixel_region=(row0, row1, col0, col1))

    def __iter__(self) -> Iterator[Patch]:
        for row in range(self.rows):
            for col in range(self.cols):
                yield self.patch(row, col)

    def extract(self, pixels: np.ndarray, patch: Patch) -> np.ndarray:
        """Pixels of one patch."""
        if pixels.shape[:2] != (self.height, self.width):
            raise ValueError(
                f"pixel array shape {pixels.shape} does not match grid ({self.height}, {self.width})"
            )
        row0, row1, col0, col1 = patch.pixel_region
        return pixels[row0:row1, col0:col1]

    def patches_overlapping(self, pixel_region: tuple[int, int, int, int]) -> list[Patch]:
        """All patches intersecting a pixel region."""
        row0, row1, col0, col1 = pixel_region
        if row1 <= row0 or col1 <= col0:
            raise ValueError(f"empty region {pixel_region}")
        first_row = max(0, row0 // self.patch_size)
        last_row = min(self.rows, int(np.ceil(row1 / self.patch_size)))
        first_col = max(0, col0 // self.patch_size)
        last_col = min(self.cols, int(np.ceil(col1 / self.patch_size)))
        return [
            self.patch(row, col)
            for row in range(first_row, last_row)
            for col in range(first_col, last_col)
        ]

    def value_map_to_pixels(self, values: np.ndarray) -> np.ndarray:
        """Upsample a per-patch value map to pixel resolution (for visualisation)."""
        values = np.asarray(values, dtype=float)
        if values.shape != self.shape:
            raise ValueError(f"value map shape {values.shape} does not match grid {self.shape}")
        pixel_map = np.zeros((self.height, self.width))
        for patch in self:
            row0, row1, col0, col1 = patch.pixel_region
            pixel_map[row0:row1, col0:col1] = values[patch.row, patch.col]
        return pixel_map
