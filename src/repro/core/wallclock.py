"""The only place repro code may read the host's clocks.

Simulated time always comes from the event loop (:class:`repro.net.events.
EventLoop`); reading a wall clock inside simulation code silently breaks
determinism, poisons sweep-cell cache keys, and invalidates the scalar/fast
path equivalence gates.  The few legitimate consumers of real time — the
perfbench harness timing workloads, sweep bookkeeping reporting elapsed
wall time, and the distributed dispatcher's liveness deadlines — route
through the helpers below, which are the *entire* wall-clock allowlist of
``python -m repro.lint`` (rule ``wall-clock``).  Calling ``time.time()``
and friends anywhere else in ``repro`` fails lint; add a helper here (and
to the allowlist) instead of sprinkling new call sites.
"""

from __future__ import annotations

import time as _time


def perf_counter() -> float:
    """High-resolution wall timer for benchmarking (``time.perf_counter``)."""
    return _time.perf_counter()


def monotonic() -> float:
    """Monotonic wall clock for liveness deadlines (``time.monotonic``)."""
    return _time.monotonic()


def unix_time() -> int:
    """Whole-second UNIX timestamp for report provenance (``time.time``)."""
    return int(_time.time())
