"""repro — reproduction of "Chat with AI: The Surprising Turn of Real-time
Video Communication from Human to AI" (HotNets 2025).

Subpackages:

* :mod:`repro.core` — the paper's contribution: context-aware video
  streaming (Equations 1 and 2), the end-to-end AI Video Chat pipeline, and
  the Section 4 extensions.
* :mod:`repro.net` — the RTC transport substrate (event simulation, emulated
  paths, NACK/FEC/ABR/congestion control, jitter buffer) behind Figure 3.
* :mod:`repro.video` — the video substrate: synthetic scenes with semantic
  ground truth, a block-DCT codec with per-block QP, rate control, GOP.
* :mod:`repro.mllm` — the simulated MLLM side: concept embeddings, the
  MobileCLIP substitute, receiver-side sampling, tokenizers, the
  quality-gated answer model, inference latency, memory, mobile models.
* :mod:`repro.devibench` — the DeViBench construction pipeline, data model,
  evaluation harness, and Table 1 / Figure 8 statistics.
* :mod:`repro.analysis` — one experiment runner per paper table/figure.
"""

from . import analysis, core, devibench, mllm, net, video

__version__ = "1.0.0"

__all__ = ["analysis", "core", "devibench", "mllm", "net", "video", "__version__"]
