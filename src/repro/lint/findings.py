"""Finding and suppression primitives shared by the reprolint checkers."""

from __future__ import annotations

import re
from dataclasses import dataclass

#: Inline suppression marker.  ``# reprolint: disable=rule-a,rule-b`` on a
#: line suppresses those rules' findings anchored to that line;
#: ``disable=all`` suppresses every rule.
SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_\-, ]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    #: Path relative to the scanned root, always with forward slashes
    #: (e.g. ``net/transport.py``).
    path: str
    line: int
    col: int
    message: str

    def key(self, source_line: str) -> tuple[str, str, str]:
        """Baseline identity: rule + path + the stripped source line.

        Line *content* rather than line *number* keeps baseline entries
        stable when unrelated edits shift the file around.
        """
        return (self.rule, self.path, source_line.strip())

    def to_jsonable(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


def suppressions_for(text: str) -> dict[int, set[str]]:
    """Map line number -> rules suppressed on that line via inline markers."""
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = SUPPRESS_RE.search(line)
        if match:
            out[lineno] = {part.strip() for part in match.group(1).split(",") if part.strip()}
    return out


def is_suppressed(finding: Finding, suppressions: dict[int, set[str]]) -> bool:
    rules = suppressions.get(finding.line)
    return rules is not None and (finding.rule in rules or "all" in rules)
