"""Committed-baseline support for deliberate, reviewed lint exemptions.

A baseline entry grandfathers exactly one existing finding.  Entries are
keyed by ``(rule, path, stripped source line)`` — content, not line
number — so unrelated edits do not churn the file, while any edit to the
offending line itself invalidates the exemption.  Stale entries (matching
no current finding) fail the run: the baseline may only ever shrink
silently, never rot.

Policy, enforced here rather than by convention: ``net/`` and ``distrib/``
carry **zero** baseline entries.  Those layers are exactly where a stray
wall-clock read or unseeded RNG corrupts cached sweep cells and
equivalence gates, so their violations must be fixed (or, for the rare
deliberate case, suppressed inline where the justification is visible in
the code), never parked in a side file.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from .findings import Finding

BASELINE_VERSION = 1

#: Directories whose findings may never be baselined.
FORBIDDEN_PREFIXES = ("net/", "distrib/")


class BaselineError(ValueError):
    """The baseline file is malformed or violates baseline policy."""


def _entry_key(entry: dict) -> tuple[str, str, str]:
    try:
        return (str(entry["rule"]), str(entry["path"]), str(entry["line"]))
    except (KeyError, TypeError) as exc:
        raise BaselineError(f"malformed baseline entry {entry!r}") from exc


def load_baseline(path: Path) -> Counter:
    """Load a baseline file into a multiset of finding keys."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or not isinstance(data.get("entries"), list):
        raise BaselineError(f"baseline {path} must be an object with an 'entries' list")
    counter: Counter = Counter()
    for entry in data["entries"]:
        if not isinstance(entry, dict):
            raise BaselineError(f"malformed baseline entry {entry!r}")
        counter[_entry_key(entry)] += 1
    return counter


def forbidden_entries(baseline: Counter) -> list[tuple[str, str, str]]:
    """Baseline keys that violate the zero-entries policy for hot layers."""
    return sorted(
        key
        for key in baseline
        if any(key[1].startswith(prefix) for prefix in FORBIDDEN_PREFIXES)
    )


def apply_baseline(
    findings: list[Finding],
    source_lines: dict[tuple[str, int], str],
    baseline: Counter,
) -> tuple[list[Finding], list[Finding], list[tuple[str, str, str]]]:
    """Split ``findings`` into (kept, baselined) and report stale keys.

    ``source_lines`` maps ``(path, lineno)`` to the raw source line, used
    to compute each finding's content key.
    """
    remaining = Counter(baseline)
    kept: list[Finding] = []
    baselined: list[Finding] = []
    for finding in findings:
        key = finding.key(source_lines.get((finding.path, finding.line), ""))
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            baselined.append(finding)
        else:
            kept.append(finding)
    stale = sorted(key for key, count in remaining.items() if count > 0 for _ in range(count))
    return kept, baselined, stale


def render_baseline(
    findings: list[Finding], source_lines: dict[tuple[str, int], str]
) -> str:
    """Serialise ``findings`` as a fresh baseline file (``--write-baseline``)."""
    entries = []
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        rule, path, line = finding.key(source_lines.get((finding.path, finding.line), ""))
        entries.append({"rule": rule, "path": path, "line": line})
    return json.dumps({"version": BASELINE_VERSION, "entries": entries}, indent=2) + "\n"
