"""CLI for reprolint: ``python -m repro.lint [--format text|json] ...``.

Exit status: 0 when the tree is clean (no findings beyond inline
suppressions and live baseline entries), 1 when any finding, stale
baseline entry, or forbidden baseline entry survives, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Optional

from .baseline import FORBIDDEN_PREFIXES, BaselineError, render_baseline
from .checkers import RULES
from .engine import LintResult, lint_root, source_lines_map

#: src/repro — the default scan root.
PACKAGE_ROOT = Path(__file__).resolve().parent.parent

#: <repo>/lint_baseline.json, two levels above the package (src layout).
DEFAULT_BASELINE = PACKAGE_ROOT.parent.parent / "lint_baseline.json"


def _render_text(result: LintResult) -> str:
    lines = [finding.render() for finding in result.findings]
    for rule, path, content in result.stale_baseline:
        lines.append(
            f"{path}: {rule}: stale baseline entry (no current finding matches "
            f"{content!r}) — remove it from the baseline"
        )
    for rule, path, content in result.forbidden_baseline:
        lines.append(
            f"{path}: {rule}: baseline entries are forbidden under "
            f"{'/'.join(p.rstrip('/') for p in FORBIDDEN_PREFIXES)}: fix the "
            "violation or suppress it inline with a visible justification"
        )
    verdict = "clean" if result.clean else f"{len(result.findings)} finding(s)"
    lines.append(
        f"reprolint: {result.files_checked} file(s) checked, {verdict}, "
        f"{len(result.baselined)} baselined, {result.suppressed} suppressed inline"
    )
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based invariant checker for the repro codebase: determinism "
            "(RNG and wall-clock discipline), hot-path slots, dispatcher "
            "protocol exhaustiveness, float-time equality, and hygiene."
        ),
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=PACKAGE_ROOT,
        help="directory tree to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="report format"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=(
            "baseline file of reviewed exemptions (default: the repo's "
            "lint_baseline.json when linting the default root)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline, report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the current findings to FILE as a fresh baseline and exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and rationale"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, rationale in RULES.items():
            print(f"{rule}: {rationale}")
        return 0

    baseline_path: Optional[Path] = None
    if not args.no_baseline:
        if args.baseline is not None:
            baseline_path = args.baseline
        elif args.root == PACKAGE_ROOT and DEFAULT_BASELINE.exists():
            baseline_path = DEFAULT_BASELINE

    try:
        result = lint_root(
            args.root,
            baseline_path=None if args.write_baseline is not None else baseline_path,
        )
    except BaselineError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"reprolint: cannot scan {args.root}: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline is not None:
        blocked = [
            finding
            for finding in result.findings
            if any(finding.path.startswith(prefix) for prefix in FORBIDDEN_PREFIXES)
        ]
        if blocked:
            for finding in blocked:
                print(finding.render(), file=sys.stderr)
            print(
                f"reprolint: refusing to baseline {len(blocked)} finding(s) under "
                "net/ or distrib/ — fix them or suppress inline",
                file=sys.stderr,
            )
            return 1
        args.write_baseline.write_text(
            render_baseline(result.findings, source_lines_map(args.root)), encoding="utf-8"
        )
        print(f"reprolint: wrote {len(result.findings)} entries to {args.write_baseline}")
        return 0

    if args.format == "json":
        print(json.dumps(result.to_jsonable(), indent=2, sort_keys=True))
    else:
        print(_render_text(result))
    return 0 if result.clean else 1


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream closed early (e.g. `... | head`); die quietly with the
        # conventional 128+SIGPIPE status instead of a traceback.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(141)
