"""Per-file AST checkers encoding this codebase's determinism invariants.

Each checker is an :class:`ast.NodeVisitor` over one parsed module.  They
share a small amount of infrastructure: import-alias resolution (so
``import numpy as np`` / ``from time import monotonic`` cannot dodge a
rule) and enclosing-scope tracking (so allowlists can name individual
functions rather than whole files).

The cross-file protocol-exhaustiveness rule lives in
:mod:`repro.lint.protocol_check`; everything single-file lives here.
"""

from __future__ import annotations

import ast
import re
from pathlib import PurePosixPath
from typing import Optional

from .findings import Finding

# ---------------------------------------------------------------------------
# Rule registry (ids + one-line rationale, surfaced by ``--list-rules``)
# ---------------------------------------------------------------------------

RULES: dict[str, str] = {
    "rng-discipline": (
        "all randomness must flow from an explicit seed or a passed-in "
        "np.random.Generator: the stdlib random module, np.random.seed, "
        "legacy module-level np.random draws, and argument-less "
        "np.random.default_rng() all break sweep-cell cache soundness"
    ),
    "wall-clock": (
        "simulation time comes from the event loop; wall-clock reads are "
        "confined to the repro.core.wallclock helpers so determinism and "
        "scalar/fast-path equivalence gates stay meaningful"
    ),
    "fastpath-flag": (
        "REPRO_NET_FASTPATH may only be read at net/emulator.py's "
        "fastpath_enabled() (and toggled by perfbench's fastpath_mode); "
        "ad-hoc parses desynchronise the scalar/vectorized mode switch"
    ),
    "hot-slots": (
        "dataclasses in hot-path modules must declare slots=True — a "
        "measured win on per-packet records (PR 3)"
    ),
    "protocol-exhaustive": (
        "every dispatcher message type declared in distrib/protocol.py must "
        "be sent somewhere and handled somewhere across "
        "coordinator.py/worker.py, and vice versa"
    ),
    "float-time-eq": (
        "==/!= between float-typed time expressions is the ULP bug class "
        "fixed twice in PR 1; compare with tolerances or orderings instead"
    ),
    "mutable-default": "mutable default arguments alias state across calls",
    "broad-except": (
        "bare except: anywhere, and except Exception/BaseException inside "
        "distrib/, swallow protocol and liveness bugs; catch specific "
        "exceptions or suppress with a justification"
    ),
    "socket-timeout": (
        "inside distrib/, every socket must carry a finite timeout: "
        "create_connection needs timeout=, settimeout(None) is banned, and "
        "sockets obtained from socket() or accept() must be given a "
        "settimeout() in the same function — a blocking-forever read turns "
        "one silent peer into a hung fleet"
    ),
    "print-discipline": (
        "bare print() in library code pollutes stdout that tools parse "
        "(JSONL status streams, reports, telemetry exports); only CLI entry "
        "modules (__main__.py, or a module with a top-level "
        "if __name__ == '__main__' guard) may print, and an explicit "
        "print(..., file=...) destination is always allowed"
    ),
}

#: Modules whose dataclasses must declare ``slots=True`` (hot paths where
#: PR 3 measured per-record attribute access and allocation wins).
HOT_SLOTS_MODULES = frozenset(
    {
        "net/packet.py",
        "net/events.py",
        "net/transport.py",
        "net/congestion.py",
        "net/abr.py",
        "net/control.py",
        "distrib/protocol.py",
    }
)

#: ``(relpath, function qualname)`` pairs allowed to read wall clocks.
#: Deliberately function-granular: growing this list means adding a helper
#: to :mod:`repro.core.wallclock`, not blessing a whole file.
WALLCLOCK_ALLOWLIST = frozenset(
    {
        ("core/wallclock.py", "perf_counter"),
        ("core/wallclock.py", "monotonic"),
        ("core/wallclock.py", "unix_time"),
    }
)

#: ``(relpath, function qualname)`` pairs allowed to touch the
#: ``REPRO_NET_FASTPATH`` environment variable: the single read helper and
#: the perfbench context manager that toggles it around timed workloads.
FASTPATH_ALLOWLIST = frozenset(
    {
        ("net/emulator.py", "fastpath_enabled"),
        ("analysis/perfbench.py", "fastpath_mode"),
    }
)

FASTPATH_ENV_NAME = "REPRO_NET_FASTPATH"
#: Conventional constant name for the flag (``repro.net.emulator.FASTPATH_ENV``);
#: reading the environment through the constant is still a read.
FASTPATH_CONST_NAME = "FASTPATH_ENV"

_WALLCLOCK_BANNED = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``np.random.<attr>`` accesses that are part of the seeded-Generator API
#: rather than the legacy global-state one.
_NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)

#: Identifier shapes treated as "a time expression" by ``float-time-eq``:
#: ``*_time``, ``*_s``, ``deadline``/``*_deadline``, ``*_instant``, ``now``.
TIME_NAME_RE = re.compile(r"(?:^|_)(?:time|instant|deadline|now)$|_s$")


def path_matches(relpath: str, candidates: frozenset[str]) -> bool:
    """Whether ``relpath`` names one of ``candidates`` (suffix-tolerant, so
    scanning from a parent directory still matches ``net/packet.py``)."""
    return any(
        relpath == candidate or relpath.endswith("/" + candidate) for candidate in candidates
    )


# ---------------------------------------------------------------------------
# Shared context
# ---------------------------------------------------------------------------


class FileContext:
    """One parsed module plus the alias maps the checkers resolve against."""

    def __init__(self, relpath: str, text: str, tree: ast.Module) -> None:
        self.relpath = relpath
        self.text = text
        self.tree = tree
        self.lines = text.splitlines()
        # local name -> imported module path ("np" -> "numpy")
        self.module_aliases: dict[str, str] = {}
        # local name -> fully qualified name ("default_rng" -> "numpy.random.default_rng")
        self.name_aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.module_aliases[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        self.module_aliases[root] = root
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.name_aliases[local] = f"{node.module}.{alias.name}"

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Resolve a ``Name``/``Attribute`` chain to a dotted path with
        import aliases substituted; None for anything more dynamic."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        root = parts[0]
        if root in self.module_aliases:
            return ".".join([self.module_aliases[root], *parts[1:]])
        if root in self.name_aliases:
            return ".".join([self.name_aliases[root], *parts[1:]])
        return ".".join(parts)


class ScopedVisitor(ast.NodeVisitor):
    """Visitor that tracks the enclosing class/function qualname."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []
        self._scope: list[str] = []

    @property
    def qualname(self) -> str:
        return ".".join(self._scope)

    def emit(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(
                rule=rule,
                path=self.ctx.relpath,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    def _walk_scoped(self, node: ast.AST) -> None:
        self._scope.append(node.name)  # type: ignore[attr-defined]
        self.generic_visit(node)
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._walk_scoped(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._walk_scoped(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._walk_scoped(node)


# ---------------------------------------------------------------------------
# Rule 1: RNG discipline
# ---------------------------------------------------------------------------


class RngDisciplineChecker(ScopedVisitor):
    rule = "rng-discipline"

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self.emit(
                    node,
                    self.rule,
                    "the stdlib random module is banned: draw from a seeded "
                    "np.random.Generator passed in by the caller",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if not node.level and node.module and node.module.split(".")[0] == "random":
            self.emit(
                node,
                self.rule,
                "the stdlib random module is banned: draw from a seeded "
                "np.random.Generator passed in by the caller",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.ctx.resolve(node.func)
        if dotted:
            if dotted.startswith("numpy.random."):
                terminal = dotted[len("numpy.random.") :]
                if terminal == "seed":
                    self.emit(
                        node,
                        self.rule,
                        "np.random.seed mutates hidden global state; seed an "
                        "explicit np.random.default_rng(seed) instead",
                    )
                elif terminal == "default_rng":
                    if self._unseeded(node):
                        self.emit(
                            node,
                            self.rule,
                            "np.random.default_rng() without a seed is "
                            "entropy-seeded: results are unreproducible and "
                            "poison sweep-cell cache keys — pass an explicit "
                            "seed or accept a Generator argument",
                        )
                elif "." not in terminal and terminal not in _NP_RANDOM_ALLOWED:
                    self.emit(
                        node,
                        self.rule,
                        f"legacy module-level np.random.{terminal}() draws from "
                        "hidden global state; use a seeded np.random.Generator",
                    )
        self.generic_visit(node)

    @staticmethod
    def _unseeded(node: ast.Call) -> bool:
        if not node.args and not node.keywords:
            return True
        if len(node.args) == 1 and not node.keywords:
            arg = node.args[0]
            return isinstance(arg, ast.Constant) and arg.value is None
        return False


# ---------------------------------------------------------------------------
# Rule 2: wall-clock discipline
# ---------------------------------------------------------------------------


class WallClockChecker(ScopedVisitor):
    rule = "wall-clock"

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.ctx.resolve(node.func)
        if dotted in _WALLCLOCK_BANNED and not self._allowlisted():
            self.emit(
                node,
                self.rule,
                f"{dotted}() reads the wall clock: simulated time must come "
                "from the event loop; real-time needs go through "
                "repro.core.wallclock's allowlisted helpers",
            )
        self.generic_visit(node)

    def _allowlisted(self) -> bool:
        qual = self.qualname
        return any(
            path_matches(self.ctx.relpath, frozenset({path})) and qual == func
            for path, func in WALLCLOCK_ALLOWLIST
        )


# ---------------------------------------------------------------------------
# Rule 3: fast-path flag discipline
# ---------------------------------------------------------------------------


class FastpathFlagChecker(ScopedVisitor):
    rule = "fastpath-flag"

    def _is_flag(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant) and node.value == FASTPATH_ENV_NAME:
            return True
        return isinstance(node, ast.Name) and node.id == FASTPATH_CONST_NAME

    def _allowlisted(self) -> bool:
        qual = self.qualname
        return any(
            path_matches(self.ctx.relpath, frozenset({path})) and qual == func
            for path, func in FASTPATH_ALLOWLIST
        )

    def _check_key(self, node: ast.AST, key: ast.AST) -> None:
        if self._is_flag(key) and not self._allowlisted():
            self.emit(
                node,
                self.rule,
                f"{FASTPATH_ENV_NAME} may only be read via "
                "repro.net.emulator.fastpath_enabled() (and toggled by "
                "perfbench's fastpath_mode); ad-hoc access desynchronises "
                "the scalar/vectorized mode switch",
            )

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self.ctx.resolve(node.value) == "os.environ":
            self._check_key(node, node.slice)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.ctx.resolve(node.func)
        if dotted in (
            "os.getenv",
            "os.environ.get",
            "os.environ.pop",
            "os.environ.setdefault",
        ):
            if node.args:
                self._check_key(node, node.args[0])
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# Rule 4: slots on hot-path dataclasses
# ---------------------------------------------------------------------------


class HotSlotsChecker(ScopedVisitor):
    rule = "hot-slots"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if path_matches(self.ctx.relpath, HOT_SLOTS_MODULES):
            for decorator in node.decorator_list:
                target = decorator.func if isinstance(decorator, ast.Call) else decorator
                if self.ctx.resolve(target) in ("dataclass", "dataclasses.dataclass"):
                    if not self._has_slots(decorator):
                        self.emit(
                            node,
                            self.rule,
                            f"dataclass {node.name} in a hot-path module must "
                            "declare @dataclass(slots=True) — slotted records "
                            "are a measured per-packet win",
                        )
        self._walk_scoped(node)

    @staticmethod
    def _has_slots(decorator: ast.AST) -> bool:
        if not isinstance(decorator, ast.Call):
            return False
        for keyword in decorator.keywords:
            if keyword.arg == "slots":
                value = keyword.value
                return isinstance(value, ast.Constant) and value.value is True
        return False


# ---------------------------------------------------------------------------
# Rule 6: float time equality
# ---------------------------------------------------------------------------


class FloatTimeEqChecker(ScopedVisitor):
    rule = "float-time-eq"

    @classmethod
    def _terminal_name(cls, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Call):
            return cls._terminal_name(node.func)
        return None

    @classmethod
    def _is_time_like(cls, node: ast.AST) -> bool:
        name = cls._terminal_name(node)
        return name is not None and bool(TIME_NAME_RE.search(name))

    @staticmethod
    def _is_float_literal(node: ast.AST) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            node = node.operand
        return (
            isinstance(node, ast.Constant)
            and isinstance(node.value, float)
            # == 0.0 is an exact sentinel (assigned, never computed), the
            # one float-equality idiom that is reliable.
            and node.value != 0.0
        )

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            pair = (left, right)
            time_like = sum(self._is_time_like(side) for side in pair)
            literalish = any(self._is_float_literal(side) for side in pair)
            if time_like == 2 or (time_like == 1 and literalish):
                self.emit(
                    node,
                    self.rule,
                    "==/!= between float time values is ULP-fragile (the bug "
                    "class fixed twice in PR 1): compare with a tolerance, an "
                    "ordering, or an integer tick count",
                )
                break
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# Rule 7a/7b: hygiene
# ---------------------------------------------------------------------------

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set)
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "collections.defaultdict", "collections.deque"})


class MutableDefaultChecker(ScopedVisitor):
    rule = "mutable-default"

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, _MUTABLE_LITERALS) or (
                isinstance(default, ast.Call)
                and self.ctx.resolve(default.func) in _MUTABLE_CALLS
            )
            if mutable:
                self.emit(
                    default,
                    self.rule,
                    "mutable default argument is shared across calls; default "
                    "to None and construct inside the function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._walk_scoped(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._walk_scoped(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)


class BroadExceptChecker(ScopedVisitor):
    rule = "broad-except"

    def _in_distrib(self) -> bool:
        return "distrib" in PurePosixPath(self.ctx.relpath).parts

    def _names(self, node: Optional[ast.AST]) -> list[str]:
        if node is None:
            return []
        if isinstance(node, ast.Tuple):
            return [name for elt in node.elts for name in self._names(elt)]
        dotted = self.ctx.resolve(node)
        return [dotted] if dotted else []

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.emit(
                node,
                self.rule,
                "bare except: catches SystemExit/KeyboardInterrupt too; name "
                "the exceptions this handler is for",
            )
        elif self._in_distrib():
            broad = [
                name
                for name in self._names(node.type)
                if name in ("Exception", "BaseException", "builtins.Exception", "builtins.BaseException")
            ]
            if broad:
                self.emit(
                    node,
                    self.rule,
                    f"except {broad[0]} in distrib/ swallows protocol and "
                    "liveness bugs; catch the specific exceptions (or suppress "
                    "inline with a justification)",
                )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# Rule 8: print discipline
# ---------------------------------------------------------------------------


class PrintDisciplineChecker(ScopedVisitor):
    """No bare ``print()`` outside CLI entry modules.

    Library stdout is load-bearing here: monitors emit JSONL status frames,
    the report CLI pipes Markdown, and telemetry exports are byte-compared
    by equivalence gates — a stray ``print`` in a library module corrupts
    whichever of those streams happens to share the process.  Exemptions:

    * ``__main__.py`` modules (they *are* the CLI);
    * modules with a top-level ``if __name__ == "__main__":`` guard (the
      conventional CLI-entry shape — ``worker.py``, ``chaos.py``, ...);
    * calls passing an explicit ``file=`` destination, which state where
      the bytes go instead of defaulting to whoever owns stdout.
    """

    rule = "print-discipline"

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._exempt_module = self._is_cli_module(ctx)

    @classmethod
    def _is_cli_module(cls, ctx: FileContext) -> bool:
        if PurePosixPath(ctx.relpath).name == "__main__.py":
            return True
        return any(
            isinstance(node, ast.If) and cls._is_main_guard(node.test)
            for node in ctx.tree.body
        )

    @staticmethod
    def _is_main_guard(test: ast.AST) -> bool:
        if not (isinstance(test, ast.Compare) and len(test.ops) == 1):
            return False
        if not isinstance(test.ops[0], ast.Eq):
            return False
        operands = (test.left, test.comparators[0])
        has_name = any(
            isinstance(side, ast.Name) and side.id == "__name__" for side in operands
        )
        has_main = any(
            isinstance(side, ast.Constant) and side.value == "__main__" for side in operands
        )
        return has_name and has_main

    def visit_Call(self, node: ast.Call) -> None:
        if (
            not self._exempt_module
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
            and not any(keyword.arg == "file" for keyword in node.keywords)
        ):
            self.emit(
                node,
                self.rule,
                "bare print() in a library module writes to stdout that "
                "tools parse; return the value, pass an explicit "
                "print(..., file=...), or move the output to a CLI module "
                "(__main__.py or one with an if __name__ == '__main__' guard)",
            )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# Rule 9: socket timeouts in distrib/
# ---------------------------------------------------------------------------


class SocketTimeoutChecker(ScopedVisitor):
    """No blocking-forever sockets in the dispatcher.

    distrib/-scoped (like broad-except's strict mode).  Three legs:

    * ``socket.create_connection(...)`` must pass a ``timeout`` (second
      positional or keyword);
    * ``settimeout(None)`` — re-enabling blocking mode — is banned outright;
    * a function that obtains a socket from ``socket.socket(...)`` or
      ``.accept()`` must call ``.settimeout(...)`` later in the same
      function, so no socket escapes its creation scope still blocking.
      (Scopes are checked by function; code in nested closures counts
      toward the enclosing function — an acceptable approximation for how
      sockets are actually handled here.)
    """

    rule = "socket-timeout"

    def _in_distrib(self) -> bool:
        return "distrib" in PurePosixPath(self.ctx.relpath).parts

    def visit_Module(self, node: ast.Module) -> None:
        if not self._in_distrib():
            return
        functions = [
            child
            for child in ast.walk(node)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        in_function: set[int] = set()
        for function in functions:
            for child in ast.walk(function):
                if child is not function:
                    in_function.add(id(child))
        # Innermost-function statements must not also count toward their
        # enclosing function twice; scope per top-level-visited function is
        # fine because nested defs are walked as part of the outer one.
        checked: set[int] = set()
        for function in functions:
            if id(function) in checked:
                continue
            scope_nodes = [child for child in ast.walk(function)]
            for child in scope_nodes:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    checked.add(id(child))
            self._check_scope(scope_nodes)
        # Module/class-level statements outside any function.
        self._check_scope(
            [child for child in ast.walk(node) if id(child) not in in_function]
        )

    def _check_scope(self, nodes: list[ast.AST]) -> None:
        creations: list[ast.Call] = []  # socket.socket(...) / .accept() sites
        settimeout_lines: list[int] = []
        for child in nodes:
            if not isinstance(child, ast.Call):
                continue
            dotted = self.ctx.resolve(child.func)
            if dotted == "socket.create_connection":
                if len(child.args) < 2 and not any(
                    keyword.arg == "timeout" for keyword in child.keywords
                ):
                    self.emit(
                        child,
                        self.rule,
                        "socket.create_connection without timeout= blocks "
                        "forever on an unresponsive peer; pass an explicit "
                        "timeout",
                    )
            elif dotted == "socket.socket":
                creations.append(child)
            elif isinstance(child.func, ast.Attribute):
                if child.func.attr == "accept":
                    creations.append(child)
                elif child.func.attr == "settimeout":
                    if (
                        len(child.args) == 1
                        and isinstance(child.args[0], ast.Constant)
                        and child.args[0].value is None
                    ):
                        self.emit(
                            child,
                            self.rule,
                            "settimeout(None) puts the socket back in "
                            "blocking-forever mode; set a finite timeout",
                        )
                    else:
                        settimeout_lines.append(getattr(child, "lineno", 0))
        for creation in creations:
            line = getattr(creation, "lineno", 0)
            if not any(timeout_line > line for timeout_line in settimeout_lines):
                what = (
                    "socket accepted here"
                    if isinstance(creation.func, ast.Attribute)
                    and creation.func.attr == "accept"
                    else "socket created here"
                )
                self.emit(
                    creation,
                    self.rule,
                    f"{what} never gets a settimeout() later in this "
                    "function; a silent peer would block it forever",
                )


#: Single-file checkers, in reporting order.
FILE_CHECKERS = (
    RngDisciplineChecker,
    WallClockChecker,
    FastpathFlagChecker,
    HotSlotsChecker,
    FloatTimeEqChecker,
    MutableDefaultChecker,
    BroadExceptChecker,
    PrintDisciplineChecker,
    SocketTimeoutChecker,
)


def check_file(ctx: FileContext) -> list[Finding]:
    """Run every single-file checker over one parsed module."""
    findings: list[Finding] = []
    for checker_cls in FILE_CHECKERS:
        checker = checker_cls(ctx)
        checker.visit(ctx.tree)
        findings.extend(checker.findings)
    return findings
