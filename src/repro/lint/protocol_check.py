"""Cross-file protocol-exhaustiveness checker (rule ``protocol-exhaustive``).

The dispatcher's wire vocabulary is declared once, as ``MESSAGE_TYPES`` in
``distrib/protocol.py``.  Messages are constructed with
``channel.send("<type>", ...)`` and dispatched by comparing
``message.get("type")`` (directly or via a local variable) against string
literals in ``coordinator.py``/``worker.py``/``monitor.py``.  All three
views must agree:

* every declared type is sent somewhere and handled somewhere;
* every sent type is declared and handled;
* every handled type is actually sent by the other side.

A type that fails any leg is either dead vocabulary or — the dangerous
case — a message a peer can emit that the receiver silently drops on the
floor (the coordinator/worker ignore unknown types for forward
compatibility, so nothing crashes; the sweep just quietly misbehaves).
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Optional

from .checkers import FileContext
from .findings import Finding

RULE = "protocol-exhaustive"

#: The declaration the vocabulary is extracted from.
VOCAB_NAME = "MESSAGE_TYPES"


def _string_elements(node: ast.AST) -> Optional[set[str]]:
    """Constant string elements of a set/list/tuple literal (possibly
    wrapped in ``frozenset(...)``/``set(...)``); None if not that shape."""
    if isinstance(node, ast.Call) and len(node.args) == 1 and not node.keywords:
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("frozenset", "set"):
            return _string_elements(node.args[0])
    if isinstance(node, (ast.Set, ast.List, ast.Tuple)):
        out: set[str] = set()
        for element in node.elts:
            if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
                return None
            out.add(element.value)
        return out
    return None


def extract_vocabulary(ctx: FileContext) -> Optional[tuple[set[str], int]]:
    """``(types, lineno)`` of the ``MESSAGE_TYPES`` declaration, or None."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if VOCAB_NAME in targets:
                elements = _string_elements(node.value)
                if elements is not None:
                    return elements, node.lineno
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name) and node.target.id == VOCAB_NAME:
                elements = _string_elements(node.value)
                if elements is not None:
                    return elements, node.lineno
    return None


def collect_sent(ctx: FileContext) -> dict[str, tuple[str, int]]:
    """Message types constructed in ``ctx``: type -> first (path, line).

    A send site is ``<channel>.send("<type>", ...)`` — the
    :class:`~repro.distrib.protocol.MessageChannel` API — or a literal
    ``{"type": "<type>", ...}`` dict passed to ``send_message``.
    """
    sent: dict[str, tuple[str, int]] = {}

    def record(value: str, lineno: int) -> None:
        sent.setdefault(value, (ctx.relpath, lineno))

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "send" and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                record(first.value, node.lineno)
        dotted = ctx.resolve(func)
        if dotted is not None and dotted.rsplit(".", 1)[-1] == "send_message":
            for arg in node.args:
                if isinstance(arg, ast.Dict):
                    for key, value in zip(arg.keys, arg.values):
                        if (
                            isinstance(key, ast.Constant)
                            and key.value == "type"
                            and isinstance(value, ast.Constant)
                            and isinstance(value.value, str)
                        ):
                            record(value.value, node.lineno)
    return sent


def _is_type_access(node: ast.AST) -> bool:
    """``<expr>.get("type")`` or ``<expr>["type"]``."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr == "get" and node.args:
            first = node.args[0]
            return isinstance(first, ast.Constant) and first.value == "type"
    if isinstance(node, ast.Subscript):
        key = node.slice
        return isinstance(key, ast.Constant) and key.value == "type"
    return False


def collect_handled(ctx: FileContext) -> dict[str, tuple[str, int]]:
    """Message types dispatched on in ``ctx``: type -> first (path, line).

    Covers direct comparisons (``message.get("type") == "hello"``),
    comparisons through a local binding (``kind = message.get("type")``
    then ``kind == "next"``), and membership tests against literal
    collections.
    """
    type_vars: set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign) and _is_type_access(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    type_vars.add(target.id)

    handled: dict[str, tuple[str, int]] = {}

    def record(value: str, lineno: int) -> None:
        handled.setdefault(value, (ctx.relpath, lineno))

    def is_type_expr(node: ast.AST) -> bool:
        if _is_type_access(node):
            return True
        return isinstance(node, ast.Name) and node.id in type_vars

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                for side, other in ((left, right), (right, left)):
                    if is_type_expr(side) and isinstance(other, ast.Constant):
                        if isinstance(other.value, str):
                            record(other.value, node.lineno)
            elif isinstance(op, (ast.In, ast.NotIn)) and is_type_expr(left):
                elements = _string_elements(right)
                if elements:
                    for value in sorted(elements):
                        record(value, node.lineno)
    return handled


def check_protocol(contexts: dict[str, FileContext]) -> list[Finding]:
    """Cross-check vocabulary, send sites and dispatch sites.

    Applies to every scanned directory holding a ``protocol.py`` under a
    ``distrib`` path component; ``coordinator.py``/``worker.py``/
    ``monitor.py`` siblings are the dispatch surfaces.
    """
    findings: list[Finding] = []
    for relpath, ctx in sorted(contexts.items()):
        path = PurePosixPath(relpath)
        if path.name != "protocol.py" or "distrib" not in path.parts:
            continue
        siblings = [
            contexts[str(path.with_name(name))]
            for name in ("coordinator.py", "worker.py", "monitor.py")
            if str(path.with_name(name)) in contexts
        ]
        findings.extend(_check_one(ctx, siblings))
    return findings


def _check_one(protocol_ctx: FileContext, siblings: list[FileContext]) -> list[Finding]:
    findings: list[Finding] = []
    vocabulary = extract_vocabulary(protocol_ctx)
    if vocabulary is None:
        return [
            Finding(
                rule=RULE,
                path=protocol_ctx.relpath,
                line=1,
                col=0,
                message=(
                    f"protocol module declares no {VOCAB_NAME} literal set; "
                    "the wire vocabulary must be statically enumerable"
                ),
            )
        ]
    declared, vocab_line = vocabulary

    sent: dict[str, tuple[str, int]] = {}
    handled: dict[str, tuple[str, int]] = {}
    for ctx in (protocol_ctx, *siblings):
        for value, site in collect_sent(ctx).items():
            sent.setdefault(value, site)
        for value, site in collect_handled(ctx).items():
            handled.setdefault(value, site)

    def emit(path: str, line: int, message: str) -> None:
        findings.append(Finding(rule=RULE, path=path, line=line, col=0, message=message))

    for value in sorted(sent):
        path, line = sent[value]
        if value not in declared:
            emit(
                path,
                line,
                f"message type {value!r} is sent but not declared in "
                f"{VOCAB_NAME} ({protocol_ctx.relpath})",
            )
        if value not in handled:
            emit(
                path,
                line,
                f"message type {value!r} is sent but no dispatch branch in "
                "coordinator.py/worker.py/monitor.py handles it — the "
                "receiver will silently drop it",
            )
    for value in sorted(handled):
        path, line = handled[value]
        if value not in sent:
            emit(
                path,
                line,
                f"message type {value!r} has a dispatch branch but nothing "
                "ever sends it — dead protocol surface or a missing send",
            )
        if value not in declared:
            emit(
                path,
                line,
                f"message type {value!r} is dispatched on but not declared "
                f"in {VOCAB_NAME} ({protocol_ctx.relpath})",
            )
    for value in sorted(declared):
        if value not in sent:
            emit(
                protocol_ctx.relpath,
                vocab_line,
                f"message type {value!r} is declared in {VOCAB_NAME} but "
                "never sent by coordinator.py/worker.py/monitor.py",
            )
        if value not in handled:
            emit(
                protocol_ctx.relpath,
                vocab_line,
                f"message type {value!r} is declared in {VOCAB_NAME} but "
                "never handled by coordinator.py/worker.py/monitor.py",
            )
    return findings
