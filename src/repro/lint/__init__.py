"""reprolint — AST-based invariant checker for the repro codebase.

The subsystems built so far rest on conventions nothing used to enforce:
sweep-cell caching is only sound if all randomness derives from seeded
``np.random.Generator`` streams, scalar/fast-path equivalence gates are
only meaningful if simulation code never reads wall clocks or parses
``REPRO_NET_FASTPATH`` ad hoc, and the distributed dispatcher is only
robust if every protocol message type that can be sent is actually
handled.  ``python -m repro.lint`` verifies those invariants statically on
every commit; see :data:`repro.lint.checkers.RULES` for the rule set and
``docs/LINT.md`` for the suppression/baseline workflow.
"""

from .checkers import RULES, FileContext, check_file
from .engine import LintResult, lint_root
from .findings import Finding

__all__ = [
    "Finding",
    "FileContext",
    "LintResult",
    "RULES",
    "check_file",
    "lint_root",
]
