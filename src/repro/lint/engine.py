"""The reprolint engine: walk a tree, run every checker, apply policy.

Orchestrates the pipeline: discover ``*.py`` files, parse, run the
single-file checkers (:mod:`repro.lint.checkers`) and the cross-file
protocol checker (:mod:`repro.lint.protocol_check`), drop findings
suppressed inline, then match the remainder against the committed baseline
(:mod:`repro.lint.baseline`).  The result object carries everything the
CLI renders and the exit code derives from.
"""

from __future__ import annotations

import ast
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from .baseline import apply_baseline, forbidden_entries, load_baseline
from .checkers import FileContext, check_file
from .findings import Finding, is_suppressed, suppressions_for
from .protocol_check import check_protocol

#: Directory names never scanned (caches, VCS internals).
_SKIP_DIRS = frozenset({"__pycache__", ".git"})


@dataclass
class LintResult:
    """Everything one lint run produced."""

    root: str
    files_checked: int = 0
    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    stale_baseline: list[tuple[str, str, str]] = field(default_factory=list)
    forbidden_baseline: list[tuple[str, str, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.stale_baseline and not self.forbidden_baseline

    def to_jsonable(self) -> dict:
        return {
            "version": 1,
            "root": self.root,
            "files_checked": self.files_checked,
            "clean": self.clean,
            "findings": [finding.to_jsonable() for finding in self.findings],
            "baselined": len(self.baselined),
            "suppressed": self.suppressed,
            "stale_baseline": [
                {"rule": rule, "path": path, "line": line}
                for rule, path, line in self.stale_baseline
            ],
            "forbidden_baseline": [
                {"rule": rule, "path": path, "line": line}
                for rule, path, line in self.forbidden_baseline
            ],
        }


def iter_python_files(root: Path) -> list[Path]:
    return sorted(
        path
        for path in root.rglob("*.py")
        if not any(part in _SKIP_DIRS for part in path.parts)
    )


def parse_tree(root: Path) -> tuple[dict[str, FileContext], list[Finding]]:
    """Parse every python file under ``root``; unparseable files become
    ``parse-error`` findings rather than crashing the run."""
    contexts: dict[str, FileContext] = {}
    errors: list[Finding] = []
    for path in iter_python_files(root):
        relpath = path.relative_to(root).as_posix()
        text = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            errors.append(
                Finding(
                    rule="parse-error",
                    path=relpath,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        contexts[relpath] = FileContext(relpath, text, tree)
    return contexts, errors


def lint_root(root: Path, baseline_path: Optional[Path] = None) -> LintResult:
    """Lint every python file under ``root``."""
    root = root.resolve()
    result = LintResult(root=str(root))
    contexts, findings = parse_tree(root)
    result.files_checked = len(contexts) + len(findings)

    for ctx in contexts.values():
        findings.extend(check_file(ctx))
    findings.extend(check_protocol(contexts))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    surviving: list[Finding] = []
    suppression_cache: dict[str, dict[int, set[str]]] = {}
    for finding in findings:
        ctx = contexts.get(finding.path)
        if ctx is not None:
            if finding.path not in suppression_cache:
                suppression_cache[finding.path] = suppressions_for(ctx.text)
            if is_suppressed(finding, suppression_cache[finding.path]):
                result.suppressed += 1
                continue
        surviving.append(finding)

    baseline = Counter()
    if baseline_path is not None:
        baseline = load_baseline(baseline_path)
        result.forbidden_baseline = forbidden_entries(baseline)
    source_lines = {
        (ctx.relpath, lineno): line
        for ctx in contexts.values()
        for lineno, line in enumerate(ctx.lines, start=1)
    }
    kept, baselined, stale = apply_baseline(surviving, source_lines, baseline)
    result.findings = kept
    result.baselined = baselined
    result.stale_baseline = stale
    return result


def source_lines_map(root: Path) -> dict[tuple[str, int], str]:
    """(path, lineno) -> raw line for every scanned file (baseline writing)."""
    contexts, _ = parse_tree(root.resolve())
    return {
        (ctx.relpath, lineno): line
        for ctx in contexts.values()
        for lineno, line in enumerate(ctx.lines, start=1)
    }
