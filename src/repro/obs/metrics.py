"""Deterministic metric primitives: counters, gauges, fixed-bucket histograms.

Everything in this module is pure bookkeeping — no wall-clock reads, no RNG
draws, no I/O — so instrumenting simulation code with a
:class:`MetricRegistry` cannot perturb determinism: two seeded runs that
execute the same events produce byte-identical serialized streams, and the
scalar and batched delivery paths (which are bit-identical in their
observable stats) emit bit-identical telemetry.  That property is gated in
perfbench next to the stats-equivalence checks.

A *disabled* registry (``MetricRegistry(enabled=False)``, or the shared
:data:`NULL_REGISTRY`) hands out shared no-op instruments, so an
instrumented hot path costs one attribute load and a no-op call when
telemetry is off — cheap enough to live inside ``net/`` without moving the
perfbench throughput gate.

This module is also the home of the **fleet metric vocabulary**: the
canonical names shared by the coordinator's live ``status`` stream, the
per-worker counters in ``repro.distrib.coordinator.WorkerStats``, and the
post-hoc failure-hotspot tables in ``repro.analysis.report`` — one
vocabulary, bookkept once (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Iterable, Mapping, Optional, Sequence, Union


class MetricError(ValueError):
    """A metric was registered or used inconsistently."""


class Counter:
    """A monotonically non-decreasing event count."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def to_jsonable(self) -> dict:
        return {"kind": self.kind, "name": self.name, "value": self.value}


class Gauge:
    """A point-in-time value (queue depth, in-flight count, ...)."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def to_jsonable(self) -> dict:
        return {"kind": self.kind, "name": self.name, "value": self.value}


class Histogram:
    """Fixed-bucket histogram: bucket bounds are part of the metric identity.

    ``bounds`` are inclusive upper edges; observations above the last edge
    land in the overflow bucket, so ``len(counts) == len(bounds) + 1``.
    Fixed buckets (rather than adaptive ones) keep the serialized stream a
    pure function of the observation sequence.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total")

    kind = "histogram"

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        edges = tuple(float(edge) for edge in bounds)
        if not edges:
            raise MetricError(f"histogram {name!r} needs at least one bucket bound")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise MetricError(f"histogram {name!r} bounds must strictly increase: {edges}")
        self.name = name
        self.bounds = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def to_jsonable(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
        }


class _NullInstrument:
    """Shared no-op counter/gauge/histogram handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: Union[int, float]) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()

#: Instruments a registry may hand out (the null variant quacks like all three).
Instrument = Union[Counter, Gauge, Histogram, _NullInstrument]


class MetricRegistry:
    """Named metrics with stable, deterministic serialization.

    Re-requesting a name returns the existing instrument; requesting it as a
    different kind (or a histogram with different bounds) raises, so a
    metric name means one thing across the whole process.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: dict[str, Union[Counter, Gauge, Histogram]] = {}

    def _get(self, name: str, kind: str) -> Optional[Union[Counter, Gauge, Histogram]]:
        existing = self._metrics.get(name)
        if existing is not None and existing.kind != kind:
            raise MetricError(
                f"metric {name!r} already registered as {existing.kind}, not {kind}"
            )
        return existing

    def counter(self, name: str) -> Instrument:
        if not self.enabled:
            return _NULL_INSTRUMENT
        found = self._get(name, "counter")
        if found is None:
            found = self._metrics[name] = Counter(name)
        return found

    def gauge(self, name: str) -> Instrument:
        if not self.enabled:
            return _NULL_INSTRUMENT
        found = self._get(name, "gauge")
        if found is None:
            found = self._metrics[name] = Gauge(name)
        return found

    def histogram(self, name: str, bounds: Sequence[float]) -> Instrument:
        if not self.enabled:
            return _NULL_INSTRUMENT
        found = self._get(name, "histogram")
        if found is None:
            found = self._metrics[name] = Histogram(name, bounds)
        elif found.bounds != tuple(float(edge) for edge in bounds):
            raise MetricError(
                f"histogram {name!r} re-registered with different bounds: "
                f"{found.bounds} vs {tuple(bounds)}"
            )
        return found

    def snapshot(self) -> dict[str, dict]:
        """Name-sorted ``{name: to_jsonable()}`` view of every metric."""
        return {name: self._metrics[name].to_jsonable() for name in sorted(self._metrics)}

    def to_jsonl(self) -> str:
        """One key-sorted JSON object per metric, name-sorted — the stable
        stream format the determinism and equivalence gates compare."""
        return "\n".join(
            json.dumps(record, sort_keys=True) for record in self.snapshot().values()
        )


#: The shared disabled registry: instrumented code defaults to this so
#: telemetry is strictly opt-in and costs a no-op call when off.
NULL_REGISTRY = MetricRegistry(enabled=False)


# --------------------------------------------------------------------------
# Fleet metric vocabulary
#
# One naming scheme for fleet counters, defined here and imported by the
# coordinator (live bookkeeping + ``status`` wire message), the monitor
# dashboard, and report.py's post-hoc hotspot tables — so the live stream
# and the post-hoc report can never disagree about what a counter is called.
# --------------------------------------------------------------------------

#: Per-worker fleet counter fields, in canonical render order.  This is the
#: field list of ``repro.distrib.coordinator.WorkerStats``; its
#: ``to_jsonable`` and the ``status`` stream's per-worker blocks are both
#: generated from this tuple.
WORKER_COUNTER_FIELDS = (
    "sessions",
    "dispatched",
    "completed",
    "failed",
    "lost",
    "requeued_cells",
)

#: Axes along which fleet faults are classified and ranked: ``(record key,
#: human label)`` pairs shared by the ``status`` stream's fault-class block
#: and ``repro.analysis.report``'s failure-hotspot tables.
FAULT_AXES = (
    ("error_type", "fault class"),
    ("cell", "experiment / scenario"),
    ("worker", "worker"),
)


def worker_metric(field: str) -> str:
    """Canonical metric name for a per-worker counter field."""
    if field not in WORKER_COUNTER_FIELDS and field != "inflight":
        raise MetricError(f"unknown worker counter field {field!r}")
    return f"fleet.worker.{field}"


def fault_metric(error_type: str) -> str:
    """Canonical metric name for a fault-class counter (by error type)."""
    return f"fleet.faults.{error_type}"


#: Metric vocabulary: canonical name -> one-line meaning.  Instrumentation
#: and docs/OBSERVABILITY.md both draw from this table; tests assert that
#: emitted names stay inside it.
METRIC_VOCAB: Mapping[str, str] = {
    # net layer — per-session, sim-time, identical across delivery modes
    "net.session.frames_sent": "video frames handed to the sender",
    "net.session.frames_delivered": "frames fully delivered to the receiver",
    "net.session.packets_sent": "data packets sent (excl. retransmissions)",
    "net.session.bytes_sent": "payload bytes sent (excl. retransmissions)",
    "net.session.packets_dropped": "packets dropped by the emulated uplink",
    "net.session.retransmissions_sent": "retransmitted packets sent",
    "net.session.nacks_sent": "NACK feedback messages sent by the receiver",
    "net.session.reports_received": "receiver reports consumed by the sender",
    "net.session.controller_actions": "control actions applied by the sender",
    "net.session.fec.recovered": "packets recovered by FEC parity",
    "net.session.fec.spurious": "FEC recoveries of packets that also arrived",
    "net.session.frame_latency_s": "per-frame delivery latency histogram (s)",
    # sweep layer — per-cell, wall-clock (runner side, never in cell records)
    "sweep.cells.executed": "cells executed this run",
    "sweep.cells.cached": "cells served from the content-hash cache",
    "sweep.cells.failed": "cells that resolved to an error record",
    # fleet layer — streamed by the coordinator `status` message
    "fleet.queue.depth": "cells queued and not yet dispatched",
    "fleet.cells.inflight": "cells dispatched and not yet resolved",
    "fleet.workers.live": "workers currently connected",
    "fleet.faults.*": "fault-class counters keyed by error type",
    "fleet.worker.inflight": "cells in flight on one worker",
}
METRIC_VOCAB = {
    **METRIC_VOCAB,
    **{
        worker_metric(field): f"per-worker counter: WorkerStats.{field}"
        for field in WORKER_COUNTER_FIELDS
    },
}


def vocab_names() -> Iterable[str]:
    """All canonical metric names (docs + tests iterate this)."""
    return sorted(METRIC_VOCAB)
