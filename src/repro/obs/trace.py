"""Nestable spans over two clocks: sim-time for simulation, wall for fleet.

A span is a named interval with attributes.  The *clock* a span carries is
part of its identity:

- ``clock="sim"`` spans take their timestamps from the caller (the event
  loop's ``now``), so they are bit-identical across seeded replays and
  across the scalar/batched delivery paths — the determinism tests and the
  perfbench telemetry gate compare their serialized form byte-for-byte.
- ``clock="wall"`` spans read :mod:`repro.core.wallclock` (the repo's only
  sanctioned wall-clock surface, enforced by reprolint's ``wall-clock``
  rule) and describe fleet work: sweep cells, queue waits, dispatch.

Export is JSONL with a stable schema — one key-sorted JSON object per
span, in finish order::

    {"attrs": {...}, "clock": "sim", "dur": 1.5, "name": "net.session",
     "parent": null, "span": 0, "t0": 0.0, "t1": 1.5}

Span ids are sequential per recorder (never random), and nesting is
tracked with an explicit stack: a span started while another is open
records that span as its parent.  A disabled recorder (the shared
:data:`NULL_TRACE`) hands back a no-op span and never reads any clock.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.core import wallclock

#: The two clocks a span may carry.
CLOCKS = ("sim", "wall")

#: Schema identifier embedded in exported streams (docs/OBSERVABILITY.md).
TRACE_SCHEMA = "repro-trace-v1"


class TraceError(ValueError):
    """A span was used inconsistently (bad clock, double finish, ...)."""


class Span:
    """One named interval.  Create via :class:`TraceRecorder`, not directly."""

    __slots__ = ("name", "span_id", "parent_id", "clock", "t0", "t1", "attrs")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        clock: str,
        t0: float,
        attrs: dict[str, Any],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.clock = clock
        self.t0 = t0
        self.t1: Optional[float] = None
        self.attrs = attrs

    @property
    def finished(self) -> bool:
        return self.t1 is not None

    def to_jsonable(self) -> dict[str, Any]:
        if self.t1 is None:
            raise TraceError(f"span {self.name!r} serialized before finish")
        return {
            "attrs": self.attrs,
            "clock": self.clock,
            "dur": self.t1 - self.t0,
            "name": self.name,
            "parent": self.parent_id,
            "span": self.span_id,
            "t0": self.t0,
            "t1": self.t1,
        }


class _NullSpan:
    """Shared do-nothing span handed out by a disabled recorder."""

    __slots__ = ()

    attrs: dict[str, Any] = {}

    def set(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class TraceRecorder:
    """Collects finished spans; sequential ids; explicit nesting stack."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 0

    # -- core lifecycle ----------------------------------------------------

    def start(self, name: str, t0: float, clock: str = "sim", **attrs: Any):
        """Open a span at explicit time ``t0``; it becomes the nesting parent
        for spans started before its :meth:`finish`."""
        if not self.enabled:
            return _NULL_SPAN
        if clock not in CLOCKS:
            raise TraceError(f"unknown clock {clock!r}; expected one of {CLOCKS}")
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(name, self._next_id, parent, clock, float(t0), dict(attrs))
        self._next_id += 1
        self._stack.append(span)
        return span

    def finish(self, span, t1: float) -> None:
        """Close ``span`` at explicit time ``t1`` and record it."""
        if span is _NULL_SPAN:
            return
        if span.finished:
            raise TraceError(f"span {span.name!r} finished twice")
        if span not in self._stack:
            raise TraceError(f"span {span.name!r} is not open on this recorder")
        span.t1 = float(t1)
        self._stack.remove(span)
        self._spans.append(span)

    def record(self, name: str, t0: float, t1: float, clock: str = "sim", **attrs: Any) -> None:
        """Record an already-elapsed interval (e.g. a cell whose timings
        arrive after the fact).  Parented to the currently open span."""
        if not self.enabled:
            return
        span = self.start(name, t0, clock=clock, **attrs)
        self.finish(span, t1)

    @contextmanager
    def wall_span(self, name: str, **attrs: Any) -> Iterator[Any]:
        """Context manager timing a block on the wall clock (fleet work)."""
        if not self.enabled:
            yield _NULL_SPAN
            return
        span = self.start(name, wallclock.perf_counter(), clock="wall", **attrs)
        try:
            yield span
        finally:
            self.finish(span, wallclock.perf_counter())

    # -- export ------------------------------------------------------------

    def spans(self, clock: Optional[str] = None) -> list[Span]:
        """Finished spans in finish order, optionally filtered by clock."""
        if clock is None:
            return list(self._spans)
        if clock not in CLOCKS:
            raise TraceError(f"unknown clock {clock!r}; expected one of {CLOCKS}")
        return [span for span in self._spans if span.clock == clock]

    def to_jsonl(self, clock: Optional[str] = None) -> str:
        """Stable JSONL export (see module docstring).  Pass ``clock="sim"``
        to get the deterministic subset the equivalence gates compare."""
        return "\n".join(
            json.dumps(span.to_jsonable(), sort_keys=True)
            for span in self.spans(clock)
        )


#: The shared disabled recorder: never reads a clock, never allocates.
NULL_TRACE = TraceRecorder(enabled=False)
