"""repro.obs — the deterministic telemetry spine.

Two primitives and a bundle:

- :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket histograms
  in a :class:`MetricRegistry`, plus the canonical fleet metric vocabulary
  shared by the coordinator's live ``status`` stream and report.py.
- :mod:`repro.obs.trace` — nestable spans carrying sim-time for
  in-simulation work and wall-clock (via ``core/wallclock``) for fleet
  work, exported as stable-schema JSONL.
- :class:`Telemetry` — the pair, threaded through
  ``VideoTransportSession``, ``SweepRunner`` and the dispatcher.  The
  default everywhere is :data:`NULL_TELEMETRY`, whose no-op instruments
  make disabled telemetry free enough for hot paths (gated in perfbench)
  and provably inert: it draws no RNG, reads no clock and changes no
  session stat (gated in tests).

See docs/OBSERVABILITY.md for the vocabulary, span schema and the live
fleet observatory (``python -m repro.distrib.monitor``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .metrics import (
    FAULT_AXES,
    METRIC_VOCAB,
    NULL_REGISTRY,
    WORKER_COUNTER_FIELDS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricRegistry,
    fault_metric,
    vocab_names,
    worker_metric,
)
from .trace import CLOCKS, NULL_TRACE, TRACE_SCHEMA, Span, TraceError, TraceRecorder


@dataclass(frozen=True)
class Telemetry:
    """A metric registry and a trace recorder that travel together."""

    metrics: MetricRegistry = field(default_factory=MetricRegistry)
    trace: TraceRecorder = field(default_factory=TraceRecorder)

    @property
    def enabled(self) -> bool:
        return self.metrics.enabled or self.trace.enabled

    def sim_stream(self) -> str:
        """The deterministic export: metrics JSONL + sim-clock trace JSONL.

        This is the byte-string the determinism tests and the perfbench
        telemetry equivalence gate compare across delivery modes and
        repeated seeded runs (wall spans are excluded by construction).
        """
        return self.metrics.to_jsonl() + "\n---\n" + self.trace.to_jsonl(clock="sim")


#: Shared disabled bundle — the default for every instrumented constructor.
NULL_TELEMETRY = Telemetry(metrics=NULL_REGISTRY, trace=NULL_TRACE)

__all__ = [
    "CLOCKS",
    "Counter",
    "FAULT_AXES",
    "Gauge",
    "Histogram",
    "METRIC_VOCAB",
    "MetricError",
    "MetricRegistry",
    "NULL_REGISTRY",
    "NULL_TELEMETRY",
    "NULL_TRACE",
    "Span",
    "TRACE_SCHEMA",
    "Telemetry",
    "TraceError",
    "TraceRecorder",
    "WORKER_COUNTER_FIELDS",
    "fault_metric",
    "vocab_names",
    "worker_metric",
]
