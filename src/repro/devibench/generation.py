"""DeViBench step 3: automatic QA generation (Section 3.1, Figure 7).

The paper feeds the side-by-side (original | 200 Kbps) video to a strong
MLLM (Qwen3-VL-plus thinking) with a carefully structured prompt — persona,
context, core task, execution steps, constraints, output format — asking it
to produce four-option multiple-choice questions that hinge on details the
low-bitrate rendition has destroyed.

Our simulated generator mirrors the *behaviour* of that step:

* for every scene fact it proposes the fact's own detail question plus
  coarser paraphrases (existence / rough-content questions) — the chaff that
  the later filtering step is designed to reject because it remains
  answerable at 200 Kbps;
* with a small probability it hallucinates the ground-truth answer (the
  paper's spot check found 84 % of generated answers correct), which the
  cross-verification step is designed to catch;
* with a small probability it produces an unanswerable question (95 % of
  generated questions were human-answerable), which is also chaff.

Every candidate records its provenance so the pipeline report can reproduce
the acceptance funnel of Table 1.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..mllm.model import MllmProfile, QWEN3_VL_PLUS
from ..video.scene import CATEGORY_OBJECT, Scene, SceneFact
from .dataset import OPTION_LETTERS, QASample
from .videos import PreparedVideo

#: The structured prompt of Figure 7, kept as the contract the generator follows.
QA_GENERATION_PROMPT = """\
[Persona] You are an expert video-quality analyst and question writer.
[Context] You are shown one video twice, side by side: the left half is the
original high-bitrate version, the right half is the same video transcoded
to 200 Kbps.  Compression has destroyed some fine details on the right.
[Core task] Write multiple-choice questions (four options, A-D) that can be
answered from the left half but NOT from the right half, i.e. questions that
hinge on the details the low bitrate destroyed.
[Execution steps] 1. Compare both halves region by region.  2. Identify
details visible only on the left (text, digits, logos, small counts, fine
shapes).  3. For each such detail, write one question and four options with
exactly one correct answer.  4. Prefer questions that require observing more
than one frame when possible.
[Constraints] Do not ask about overall scene gist, colours of large objects,
or anything still visible at 200 Kbps.  Do not reveal which half you used.
[Output format] JSON list of {question, options[A-D], answer_letter}.
"""


@dataclass
class GenerationConfig:
    """Behavioural knobs of the simulated QA generator."""

    #: Probability that a generated answer is wrong (paper spot check: 84 % correct).
    hallucination_rate: float = 0.16
    #: Probability that a generated question is unanswerable noise
    #: (paper spot check: 95 % answerable).
    unanswerable_rate: float = 0.05
    #: Number of coarse paraphrase candidates generated per fact (the chaff the
    #: filter rejects because they survive 200 Kbps).
    coarse_variants_per_fact: int = 3
    #: Number of detail-targeted candidates generated per fact.
    detail_variants_per_fact: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.hallucination_rate < 1.0:
            raise ValueError("hallucination_rate must be in [0, 1)")
        if not 0.0 <= self.unanswerable_rate < 1.0:
            raise ValueError("unanswerable_rate must be in [0, 1)")
        if self.coarse_variants_per_fact < 0 or self.detail_variants_per_fact < 1:
            raise ValueError("variant counts out of range")


@dataclass
class CandidateQA:
    """A generated QA sample before filtering and verification."""

    sample: QASample
    source_fact: SceneFact
    generator_answer: str
    hallucinated: bool
    unanswerable: bool
    kind: str  # "detail" or "coarse"


class QAGenerator:
    """Simulated Qwen3-VL-plus generator producing candidate QA samples."""

    def __init__(
        self,
        config: Optional[GenerationConfig] = None,
        profile: MllmProfile = QWEN3_VL_PLUS,
    ) -> None:
        self.config = config or GenerationConfig()
        self.profile = profile
        self.prompt = QA_GENERATION_PROMPT

    def _rng(self, scene: Scene, fact: SceneFact, salt: str) -> np.random.Generator:
        key = f"{self.config.seed}|{scene.name}|{fact.object_name}|{fact.key}|{salt}"
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return np.random.default_rng(int.from_bytes(digest[:8], "little"))

    def _options_for(
        self, fact: SceneFact, answer: str, rng: np.random.Generator
    ) -> tuple[tuple[str, ...], str]:
        distractors = [value for value in fact.domain if value != answer]
        rng.shuffle(distractors)
        options = [answer] + distractors[:3]
        if len(options) < 2:
            options.append("none of the above")
        rng.shuffle(options)
        letter = OPTION_LETTERS[options.index(answer)]
        return tuple(options), letter

    def _make_sample(
        self,
        scene: Scene,
        fact: SceneFact,
        question: str,
        detail_scale: float,
        answer: str,
        kind: str,
        index: int,
        hallucinated: bool,
        unanswerable: bool,
    ) -> CandidateQA:
        rng = self._rng(scene, fact, f"options|{kind}|{index}|{question}")
        options, letter = self._options_for(fact, answer, rng)
        sample_id = hashlib.sha1(
            f"{scene.name}|{question}|{answer}|{kind}|{index}".encode("utf-8")
        ).hexdigest()[:12]
        sample = QASample(
            sample_id=sample_id,
            scene_name=scene.name,
            question=question,
            options=options,
            correct_letter=letter,
            category=fact.category,
            multi_frame=fact.multi_frame and kind == "detail",
            detail_scale=detail_scale,
            object_name=fact.object_name,
            fact_key=fact.key,
            ground_truth=answer,
            provenance={"kind": kind, "generator": self.profile.name},
        )
        return CandidateQA(
            sample=sample,
            source_fact=fact,
            generator_answer=answer,
            hallucinated=hallucinated,
            unanswerable=unanswerable,
            kind=kind,
        )

    def generate_for_video(self, prepared: PreparedVideo) -> list[CandidateQA]:
        """Generate all candidate QA samples for one prepared video."""
        scene = prepared.scene
        candidates: list[CandidateQA] = []
        for fact in scene.facts:
            # Detail-targeted candidates: the ones DeViBench wants to keep.
            for index in range(self.config.detail_variants_per_fact):
                rng = self._rng(scene, fact, f"detail|{index}")
                hallucinated = bool(rng.random() < self.config.hallucination_rate)
                unanswerable = bool(rng.random() < self.config.unanswerable_rate)
                answer = fact.value
                if hallucinated:
                    wrong = [value for value in fact.domain if value != fact.value]
                    answer = str(rng.choice(wrong)) if wrong else fact.value
                question = fact.question if index == 0 else f"{fact.question} (look closely)"
                candidates.append(
                    self._make_sample(
                        scene,
                        fact,
                        question,
                        fact.detail_scale,
                        answer,
                        kind="detail",
                        index=index,
                        hallucinated=hallucinated,
                        unanswerable=unanswerable,
                    )
                )
            # Coarse paraphrases: answerable even at 200 Kbps, so the filter
            # step is expected to reject them (this is what makes the paper's
            # acceptance rate low).
            for index in range(self.config.coarse_variants_per_fact):
                rng = self._rng(scene, fact, f"coarse|{index}")
                if index == 0:
                    question = f"Is the {fact.object_name.replace('_', ' ')} visible in the video?"
                    answer = "yes"
                    coarse_fact = SceneFact(
                        object_name=fact.object_name,
                        key=f"{fact.key}_visible",
                        value="yes",
                        domain=("yes", "no"),
                        category=CATEGORY_OBJECT,
                        detail_scale=0.05,
                        question=question,
                    )
                else:
                    prefix = "Roughly speaking" if index == 1 else "At a glance"
                    question = f"{prefix}, {fact.question.lower()}"
                    answer = fact.value
                    coarse_fact = SceneFact(
                        object_name=fact.object_name,
                        key=fact.key,
                        value=fact.value,
                        domain=fact.domain,
                        category=fact.category,
                        detail_scale=max(0.05, fact.detail_scale * 0.3 / index),
                        question=question,
                    )
                candidates.append(
                    self._make_sample(
                        scene,
                        coarse_fact,
                        question,
                        coarse_fact.detail_scale,
                        answer,
                        kind="coarse",
                        index=index,
                        hallucinated=False,
                        unanswerable=False,
                    )
                )
        return candidates

    def generate(self, prepared_videos: Sequence[PreparedVideo]) -> list[CandidateQA]:
        """Generate candidates for a whole corpus."""
        candidates: list[CandidateQA] = []
        for prepared in prepared_videos:
            candidates.extend(self.generate_for_video(prepared))
        return candidates
