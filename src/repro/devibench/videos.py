"""DeViBench step 1 & 2: video collection and preprocessing.

The paper collects the videos of existing streaming-video benchmarks
(discarding their QA) and transcodes each one to a 200 Kbps rendition with
x265; the original and the low-bitrate version are then concatenated side by
side for the QA-generation model.  Our collection is the synthetic scene
corpus, and preprocessing runs the block-codec transcoder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..video.codec import BlockCodec
from ..video.frames import VideoFrame
from ..video.scene import Scene, build_scene_corpus
from ..video.transcode import TranscodeResult, concatenate_side_by_side, transcode_to_bitrate

#: Bitrate of the degraded rendition used throughout Section 3.1.
DEFAULT_LOW_BITRATE_BPS = 200_000.0
#: Frame rate at which the QA-generation / filtering MLLMs look at the video.
DEFAULT_SAMPLING_FPS = 2.0


@dataclass
class PreparedVideo:
    """One corpus entry: the scene, its original frames and the low-bitrate frames."""

    scene: Scene
    original_frames: list[VideoFrame]
    degraded_frames: list[VideoFrame]
    low_bitrate_bps: float
    achieved_bitrate_bps: float

    @property
    def frame_count(self) -> int:
        return len(self.original_frames)

    def concatenated_frames(self) -> list[np.ndarray]:
        """Original|degraded side-by-side frames (the generation-prompt input)."""
        return [
            concatenate_side_by_side(orig.pixels, deg.pixels)
            for orig, deg in zip(self.original_frames, self.degraded_frames)
        ]


class VideoCollection:
    """Builds and preprocesses the DeViBench video corpus."""

    def __init__(
        self,
        scenes: Optional[Sequence[Scene]] = None,
        low_bitrate_bps: float = DEFAULT_LOW_BITRATE_BPS,
        sampling_fps: float = DEFAULT_SAMPLING_FPS,
        frames_per_video: int = 3,
        codec: Optional[BlockCodec] = None,
        rate_fps: Optional[float] = None,
    ) -> None:
        if low_bitrate_bps <= 0:
            raise ValueError("low_bitrate_bps must be positive")
        if frames_per_video < 1:
            raise ValueError("frames_per_video must be >= 1")
        self.scenes = list(scenes) if scenes is not None else []
        self.low_bitrate_bps = float(low_bitrate_bps)
        self.sampling_fps = float(sampling_fps)
        self.frames_per_video = int(frames_per_video)
        self.codec = codec or BlockCodec()
        #: Frame rate used to convert the bitrate into a per-frame bit budget.
        #: Our codec is intra-only and only the MLLM-rate frames are encoded,
        #: so bitrates are accounted over those frames (≈2 FPS); the paper's
        #: inter-predicted full-rate stream at the same kbps delivers roughly
        #: the same budget per sampled frame.
        self.rate_fps = float(rate_fps) if rate_fps is not None else self.sampling_fps

    @classmethod
    def synthetic(
        cls,
        video_count: int,
        seed: int = 0,
        height: int = 360,
        width: int = 640,
        **kwargs,
    ) -> "VideoCollection":
        """Build a synthetic corpus of the requested size (collection step)."""
        scenes = build_scene_corpus(video_count, seed=seed, height=height, width=width)
        return cls(scenes=scenes, **kwargs)

    def _select_frames(self, scene: Scene) -> list[VideoFrame]:
        source = scene.to_source()
        stride = max(1, int(round(scene.fps / self.sampling_fps)))
        indices = list(range(0, source.frame_count(), stride))[: self.frames_per_video]
        return [source.frame_at(index) for index in indices]

    def prepare(self, scene: Scene) -> PreparedVideo:
        """Preprocessing step for one scene: select frames and transcode to 200 Kbps."""
        originals = self._select_frames(scene)
        transcoded: TranscodeResult = transcode_to_bitrate(
            scene.to_source(),
            self.low_bitrate_bps,
            codec=self.codec,
            max_frames=self.frames_per_video,
            frame_stride=max(1, int(round(scene.fps / self.sampling_fps))),
            rate_fps=self.rate_fps,
        )
        degraded = [
            VideoFrame(frame_id=orig.frame_id, timestamp=orig.timestamp, pixels=pixels)
            for orig, pixels in zip(originals, transcoded.frames)
        ]
        return PreparedVideo(
            scene=scene,
            original_frames=originals,
            degraded_frames=degraded,
            low_bitrate_bps=self.low_bitrate_bps,
            achieved_bitrate_bps=transcoded.achieved_bitrate_bps,
        )

    def prepare_all(self) -> list[PreparedVideo]:
        """Preprocess the whole corpus."""
        if not self.scenes:
            raise ValueError("the collection holds no scenes; use synthetic() or pass scenes")
        return [self.prepare(scene) for scene in self.scenes]

    @property
    def total_duration_s(self) -> float:
        return sum(scene.duration_s for scene in self.scenes)
