"""DeViBench step 4: QA filtering (Section 3.1).

Each generated QA pair is answered twice by the filter MLLM (Qwen2.5-Omni in
the paper): once on the original video and once on the 200 Kbps rendition.
The pair is accepted only when the original-video answer is correct and the
low-bitrate answer is wrong — i.e. the question genuinely hinges on detail
the degradation destroyed.  The paper reports an 11.16 % acceptance rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..mllm.model import MODE_MULTIPLE_CHOICE, MllmProfile, QWEN2_5_OMNI, SimulatedMLLM
from .generation import CandidateQA
from .videos import PreparedVideo


@dataclass
class FilterDecision:
    """The filter's verdict on one candidate."""

    candidate: CandidateQA
    accepted: bool
    correct_on_original: bool
    correct_on_degraded: bool


@dataclass
class FilterReport:
    """Aggregate statistics of the filtering stage."""

    decisions: list[FilterDecision]

    @property
    def total(self) -> int:
        return len(self.decisions)

    @property
    def accepted(self) -> list[CandidateQA]:
        return [decision.candidate for decision in self.decisions if decision.accepted]

    @property
    def acceptance_rate(self) -> float:
        if not self.decisions:
            return 0.0
        return len(self.accepted) / len(self.decisions)


class QAFilter:
    """Simulated Qwen2.5-Omni filter implementing the accept rule."""

    def __init__(
        self,
        profile: MllmProfile = QWEN2_5_OMNI,
        seed: int = 101,
    ) -> None:
        self.mllm = SimulatedMLLM(profile=profile, seed=seed)

    def _answer(self, candidate: CandidateQA, prepared: PreparedVideo, degraded: bool, salt: str) -> bool:
        frames = prepared.degraded_frames if degraded else prepared.original_frames
        sample = candidate.sample
        fact = candidate.source_fact
        # An unanswerable (nonsense) question cannot be answered correctly on
        # either rendition except by luck; model that by forcing a guess.
        effective_fact = fact
        if candidate.unanswerable:
            effective_fact = type(fact)(
                object_name=fact.object_name,
                key=fact.key,
                value=fact.value,
                domain=fact.domain,
                category=fact.category,
                detail_scale=1.0,
                question=sample.question,
                multi_frame=fact.multi_frame,
                query_concepts=fact.query_concepts,
            )
        answer = self.mllm.answer_question(
            effective_fact,
            prepared.scene,
            frames,
            prepared.original_frames,
            mode=MODE_MULTIPLE_CHOICE,
            choices=list(sample.options),
            apply_frame_sampling=False,
            salt=salt,
        )
        # The filter grades against the *generated* answer letter, exactly as
        # the real pipeline does (it has no other ground truth).
        return answer.answer == candidate.generator_answer

    def evaluate(self, candidate: CandidateQA, prepared: PreparedVideo) -> FilterDecision:
        correct_on_original = self._answer(candidate, prepared, degraded=False, salt="orig")
        correct_on_degraded = self._answer(candidate, prepared, degraded=True, salt="deg")
        accepted = correct_on_original and not correct_on_degraded
        return FilterDecision(
            candidate=candidate,
            accepted=accepted,
            correct_on_original=correct_on_original,
            correct_on_degraded=correct_on_degraded,
        )

    def run(
        self,
        candidates: Sequence[CandidateQA],
        prepared_by_scene: dict[str, PreparedVideo],
    ) -> FilterReport:
        decisions = []
        for candidate in candidates:
            prepared = prepared_by_scene[candidate.sample.scene_name]
            decisions.append(self.evaluate(candidate, prepared))
        return FilterReport(decisions=decisions)
