"""Evaluation harness: how does streaming quality move DeViBench accuracy?

This is the measurement loop behind Figure 9 of the paper: take the
benchmark's QA samples, encode their videos at a target bitrate either with
the context-agnostic baseline (uniform QP) or with context-aware streaming
(Equation 2 QP maps conditioned on each question), ask the evaluation MLLM,
and report the accuracy.  Free-response grading is also supported because
the paper's Figure 9 was produced with an earlier free-response version of
the benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.context_aware import ContextAwareStreamer, StreamingConfig, UniformStreamer
from ..mllm.model import MODE_FREE_RESPONSE, MODE_MULTIPLE_CHOICE, SimulatedMLLM
from ..video.frames import VideoFrame
from ..video.scene import Scene
from .dataset import DeViBench, QASample
from .videos import VideoCollection


@dataclass
class SampleEvaluation:
    """Evaluation outcome for one QA sample at one operating point."""

    sample: QASample
    correct: bool
    achieved_bitrate_bps: float
    evidence_quality: float
    answer: str


@dataclass
class EvaluationResult:
    """Aggregate accuracy at one operating point."""

    label: str
    target_bitrate_bps: float
    context_aware: bool
    accuracy: float
    mean_achieved_bitrate_bps: float
    evaluations: list[SampleEvaluation] = field(default_factory=list)

    @property
    def sample_count(self) -> int:
        return len(self.evaluations)


class BenchmarkEvaluator:
    """Runs DeViBench QA through an encode→answer loop at chosen bitrates."""

    def __init__(
        self,
        benchmark: DeViBench,
        mllm: Optional[SimulatedMLLM] = None,
        streamer: Optional[ContextAwareStreamer] = None,
        baseline: Optional[UniformStreamer] = None,
        sampling_fps: float = 2.0,
        frames_per_video: int = 3,
        rate_fps: Optional[float] = None,
        mode: str = MODE_MULTIPLE_CHOICE,
    ) -> None:
        if len(benchmark) == 0:
            raise ValueError("cannot evaluate an empty benchmark")
        self.benchmark = benchmark
        self.mllm = mllm or SimulatedMLLM()
        self.streamer = streamer or ContextAwareStreamer(StreamingConfig())
        self.baseline = baseline or UniformStreamer(StreamingConfig())
        self.sampling_fps = sampling_fps
        self.frames_per_video = frames_per_video
        #: Frame rate used to convert a target bitrate into a per-frame bit
        #: budget.  Defaults to the MLLM sampling rate, consistently with the
        #: DeViBench preprocessing (see VideoCollection.rate_fps).
        self.rate_fps = float(rate_fps) if rate_fps is not None else float(sampling_fps)
        self.mode = mode
        self._frame_cache: dict[str, list[VideoFrame]] = {}

    # -- frames ---------------------------------------------------------------

    def _original_frames(self, scene: Scene) -> list[VideoFrame]:
        if scene.name not in self._frame_cache:
            source = scene.to_source()
            stride = max(1, int(round(scene.fps / self.sampling_fps)))
            indices = list(range(0, source.frame_count(), stride))[: self.frames_per_video]
            self._frame_cache[scene.name] = [source.frame_at(index) for index in indices]
        return self._frame_cache[scene.name]

    # -- evaluation -----------------------------------------------------------

    def evaluate_sample(
        self,
        sample: QASample,
        target_bitrate_bps: float,
        context_aware: bool,
    ) -> SampleEvaluation:
        scene = self.benchmark.scene_for(sample)
        originals = self._original_frames(scene)
        fact = sample.to_fact()

        decoded_frames: list[VideoFrame] = []
        total_bits = 0.0
        for frame in originals:
            if context_aware:
                outcome = self.streamer.encode_frame(
                    scene,
                    frame,
                    sample.question,
                    target_bitrate_bps=target_bitrate_bps,
                    fps=self.rate_fps,
                )
            else:
                outcome = self.baseline.encode_frame(
                    frame,
                    target_bitrate_bps=target_bitrate_bps,
                    fps=self.rate_fps,
                )
            total_bits += outcome.encoded.total_bits
            decoded_frames.append(
                VideoFrame(frame_id=frame.frame_id, timestamp=frame.timestamp, pixels=outcome.decoded)
            )

        achieved = total_bits / max(len(originals), 1) * self.rate_fps
        answer = self.mllm.answer_question(
            fact,
            scene,
            decoded_frames,
            originals,
            mode=self.mode,
            choices=list(sample.options) if self.mode == MODE_MULTIPLE_CHOICE else None,
            apply_frame_sampling=False,
        )
        return SampleEvaluation(
            sample=sample,
            correct=sample.is_correct(answer.answer) if self.mode == MODE_MULTIPLE_CHOICE else answer.correct,
            achieved_bitrate_bps=achieved,
            evidence_quality=answer.evidence_quality,
            answer=answer.answer,
        )

    def evaluate(
        self,
        target_bitrate_bps: float,
        context_aware: bool,
        label: Optional[str] = None,
        max_samples: Optional[int] = None,
    ) -> EvaluationResult:
        """Accuracy of the whole benchmark at one bitrate / method."""
        samples = self.benchmark.samples
        if max_samples is not None:
            samples = samples[:max_samples]
        evaluations = [
            self.evaluate_sample(sample, target_bitrate_bps, context_aware) for sample in samples
        ]
        return EvaluationResult(
            label=label
            or ("context-aware" if context_aware else "baseline") + f"@{target_bitrate_bps / 1000:.0f}kbps",
            target_bitrate_bps=target_bitrate_bps,
            context_aware=context_aware,
            accuracy=float(np.mean([e.correct for e in evaluations])),
            mean_achieved_bitrate_bps=float(np.mean([e.achieved_bitrate_bps for e in evaluations])),
            evaluations=evaluations,
        )

    def accuracy_bitrate_curve(
        self,
        target_bitrates_bps: Sequence[float],
        context_aware: bool,
        max_samples: Optional[int] = None,
    ) -> list[EvaluationResult]:
        """Accuracy at each target bitrate — one series of Figure 9."""
        return [
            self.evaluate(bitrate, context_aware, max_samples=max_samples)
            for bitrate in target_bitrates_bps
        ]


def coarse_qa_breakage_rate(
    collection: VideoCollection,
    mllm: Optional[SimulatedMLLM] = None,
) -> dict[str, float]:
    """Reproduce the Section 2.3 measurement on StreamingBench-style coarse QA.

    Existing benchmarks ask coarse questions; the paper finds only ~8 % of
    those flip from correct (high bitrate) to wrong (200 Kbps).  We take the
    corpus's *coarse* facts (detail ≤ 0.3), answer them on the original and on
    the 200 Kbps rendition, and report the flip rate.
    """
    mllm = mllm or SimulatedMLLM(seed=7)
    prepared_videos = collection.prepare_all()
    flips = 0
    total = 0
    for prepared in prepared_videos:
        coarse_facts = [fact for fact in prepared.scene.facts if fact.detail_scale <= 0.3]
        for fact in coarse_facts:
            original = mllm.answer_question(
                fact,
                prepared.scene,
                prepared.original_frames,
                prepared.original_frames,
                apply_frame_sampling=False,
                salt="coarse-orig",
            )
            degraded = mllm.answer_question(
                fact,
                prepared.scene,
                prepared.degraded_frames,
                prepared.original_frames,
                apply_frame_sampling=False,
                salt="coarse-deg",
            )
            total += 1
            if original.correct and not degraded.correct:
                flips += 1
    return {
        "total_coarse_qa": float(total),
        "flipped": float(flips),
        "flip_rate": flips / total if total else 0.0,
        "paper_flip_rate": 0.08,
    }
