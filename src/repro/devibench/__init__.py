"""DeViBench: the Degraded Video Understanding Benchmark (Section 3.1).

The five-step automatic construction pipeline (collect → preprocess →
generate → filter → cross-verify), the benchmark data model, the evaluation
harness used by Figure 9, and Table 1 / Figure 8 statistics.
"""

from .dataset import OPTION_LETTERS, BenchmarkSummary, DeViBench, QASample
from .evaluate import (
    BenchmarkEvaluator,
    EvaluationResult,
    SampleEvaluation,
    coarse_qa_breakage_rate,
)
from .filtering import FilterDecision, FilterReport, QAFilter
from .generation import (
    QA_GENERATION_PROMPT,
    CandidateQA,
    GenerationConfig,
    QAGenerator,
)
from .pipeline import (
    PAPER_FILTER_ACCEPTANCE,
    PAPER_OVERALL_YIELD,
    PAPER_SAMPLE_COUNT,
    PAPER_VERIFICATION_APPROVAL,
    DeViBenchPipeline,
    PipelineReport,
    build_benchmark,
)
from .stats import (
    DistributionRow,
    Table1Row,
    figure8_distribution,
    figure8_temporal_split,
    format_figure8,
    format_table1,
    table1_rows,
)
from .verification import CrossVerifier, VerificationDecision, VerificationReport
from .videos import (
    DEFAULT_LOW_BITRATE_BPS,
    DEFAULT_SAMPLING_FPS,
    PreparedVideo,
    VideoCollection,
)

__all__ = [
    "BenchmarkEvaluator",
    "BenchmarkSummary",
    "CandidateQA",
    "CrossVerifier",
    "DEFAULT_LOW_BITRATE_BPS",
    "DEFAULT_SAMPLING_FPS",
    "DeViBench",
    "DeViBenchPipeline",
    "DistributionRow",
    "EvaluationResult",
    "FilterDecision",
    "FilterReport",
    "GenerationConfig",
    "OPTION_LETTERS",
    "PAPER_FILTER_ACCEPTANCE",
    "PAPER_OVERALL_YIELD",
    "PAPER_SAMPLE_COUNT",
    "PAPER_VERIFICATION_APPROVAL",
    "PipelineReport",
    "PreparedVideo",
    "QAFilter",
    "QAGenerator",
    "QASample",
    "QA_GENERATION_PROMPT",
    "SampleEvaluation",
    "Table1Row",
    "VerificationDecision",
    "VerificationReport",
    "VideoCollection",
    "build_benchmark",
    "coarse_qa_breakage_rate",
    "figure8_distribution",
    "figure8_temporal_split",
    "format_figure8",
    "format_table1",
    "table1_rows",
]
