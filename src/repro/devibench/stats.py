"""Benchmark statistics: Table 1 rows and the Figure 8 distribution.

Table 1 of the paper summarises DeViBench (1,074 samples, 6×2 types,
180,000 s of video, $68.47, 99,471 s); Figure 8 shows the category mix
(text-rich 54.84 %, action 17.03 %, attribute 14.43 %, counting 6 %, object
5.9 %, spatial 1.8 %) and the single-/multi-frame split (34.45 % multi).
This module produces the same rows for a benchmark we construct, side by
side with the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..video.scene import CATEGORIES, PAPER_CATEGORY_DISTRIBUTION, PAPER_MULTI_FRAME_FRACTION
from .dataset import DeViBench
from .pipeline import (
    PAPER_SAMPLE_COUNT,
    PAPER_TOTAL_DURATION_S,
    PAPER_TOTAL_MONEY_USD,
    PAPER_TOTAL_TIME_S,
    PipelineReport,
)


@dataclass
class Table1Row:
    """One row of the Table 1 comparison."""

    metric: str
    paper_value: float
    reproduced_value: float


def table1_rows(report: PipelineReport) -> list[Table1Row]:
    """Build the Table 1 comparison for a constructed benchmark."""
    benchmark = report.benchmark
    return [
        Table1Row("Number of QA samples", float(PAPER_SAMPLE_COUNT), float(len(benchmark))),
        Table1Row("QA sample types", 12.0, float(benchmark.sample_type_count())),
        Table1Row(
            "Total duration (s)", PAPER_TOTAL_DURATION_S, float(report.total_video_duration_s)
        ),
        Table1Row("Total money spent ($)", PAPER_TOTAL_MONEY_USD, float(report.estimated_money_usd)),
        Table1Row("Total time cost (s)", PAPER_TOTAL_TIME_S, float(report.estimated_time_s)),
    ]


@dataclass
class DistributionRow:
    """One slice of the Figure 8 distribution comparison."""

    category: str
    paper_fraction: float
    reproduced_fraction: float
    reproduced_count: int


def figure8_distribution(benchmark: DeViBench) -> list[DistributionRow]:
    """The category distribution of a benchmark next to the paper's Figure 8."""
    distribution = benchmark.category_distribution()
    rows = []
    for category in CATEGORIES:
        rows.append(
            DistributionRow(
                category=category,
                paper_fraction=PAPER_CATEGORY_DISTRIBUTION[category],
                reproduced_fraction=distribution[category],
                reproduced_count=len(benchmark.by_category(category)),
            )
        )
    return rows


def figure8_temporal_split(benchmark: DeViBench) -> dict[str, float]:
    """The single-frame / multi-frame split of Figure 8's inner ring."""
    multi = benchmark.multi_frame_fraction()
    return {
        "multi_frame_fraction": multi,
        "single_frame_fraction": 1.0 - multi,
        "paper_multi_frame_fraction": PAPER_MULTI_FRAME_FRACTION,
        "paper_single_frame_fraction": 1.0 - PAPER_MULTI_FRAME_FRACTION,
    }


def format_table1(report: PipelineReport) -> str:
    """Human-readable Table 1 comparison."""
    lines = [f"{'Metric':<28}{'Paper':>14}{'Reproduced':>14}"]
    for row in table1_rows(report):
        lines.append(f"{row.metric:<28}{row.paper_value:>14.2f}{row.reproduced_value:>14.2f}")
    funnel = report.funnel()
    lines.append("")
    lines.append(f"{'Funnel stage':<28}{'Paper':>14}{'Reproduced':>14}")
    lines.append(
        f"{'Filter acceptance':<28}{funnel['paper_filter_acceptance_rate']:>14.4f}"
        f"{funnel['filter_acceptance_rate']:>14.4f}"
    )
    lines.append(
        f"{'Cross-verification pass':<28}{funnel['paper_verification_approval_rate']:>14.4f}"
        f"{funnel['verification_approval_rate']:>14.4f}"
    )
    lines.append(
        f"{'Overall yield':<28}{funnel['paper_overall_yield']:>14.4f}{funnel['overall_yield']:>14.4f}"
    )
    return "\n".join(lines)


def format_figure8(benchmark: DeViBench) -> str:
    """Human-readable Figure 8 comparison."""
    lines = [f"{'Category':<22}{'Paper':>10}{'Reproduced':>12}{'Count':>8}"]
    for row in figure8_distribution(benchmark):
        lines.append(
            f"{row.category:<22}{row.paper_fraction:>10.3f}{row.reproduced_fraction:>12.3f}"
            f"{row.reproduced_count:>8d}"
        )
    split = figure8_temporal_split(benchmark)
    lines.append("")
    lines.append(
        f"multi-frame: paper {split['paper_multi_frame_fraction']:.3f} "
        f"vs reproduced {split['multi_frame_fraction']:.3f}"
    )
    return "\n".join(lines)
