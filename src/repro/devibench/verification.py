"""DeViBench step 5: cross verification (Section 3.1).

The generator's answer may itself be wrong, and the filter cannot catch that
(it grades against the generated answer).  The paper therefore asks a second
MLLM (GLM-4.5V thinking) the accepted question on the original video; the QA
pair is approved only when the new answer agrees with the generated one.
The paper reports a 70.61 % pass rate for this stage.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

from ..mllm.model import GLM_4_5V, MODE_MULTIPLE_CHOICE, MllmProfile, SimulatedMLLM
from .generation import CandidateQA
from .videos import PreparedVideo


@dataclass
class VerificationDecision:
    """The verifier's verdict on one filter-accepted candidate."""

    candidate: CandidateQA
    approved: bool
    verifier_answer: str


@dataclass
class VerificationReport:
    """Aggregate statistics of the cross-verification stage."""

    decisions: list[VerificationDecision]

    @property
    def total(self) -> int:
        return len(self.decisions)

    @property
    def approved(self) -> list[CandidateQA]:
        return [decision.candidate for decision in self.decisions if decision.approved]

    @property
    def approval_rate(self) -> float:
        if not self.decisions:
            return 0.0
        return len(self.approved) / len(self.decisions)


class CrossVerifier:
    """Simulated GLM-4.5V verifier: agreement with the generated answer.

    ``cross_model_disagreement`` models the fact that two different MLLMs
    reading the *same* fine detail (small digits, logos, counts) frequently
    disagree — the paper's own spot check found only 84 % of generated
    answers correct, and this stage removes roughly 30 % of the candidates
    that survive filtering (70.61 % pass).  The disagreement is deterministic
    per candidate so the pipeline is reproducible.
    """

    def __init__(
        self,
        profile: MllmProfile = GLM_4_5V,
        seed: int = 202,
        cross_model_disagreement: float = 0.25,
        disagreement_detail_threshold: float = 0.6,
    ) -> None:
        if not 0.0 <= cross_model_disagreement < 1.0:
            raise ValueError("cross_model_disagreement must be in [0, 1)")
        self.mllm = SimulatedMLLM(profile=profile, seed=seed)
        self.cross_model_disagreement = cross_model_disagreement
        self.disagreement_detail_threshold = disagreement_detail_threshold
        self._seed = seed

    def _disagrees(self, candidate: CandidateQA) -> bool:
        if candidate.sample.detail_scale < self.disagreement_detail_threshold:
            return False
        key = f"{self._seed}|disagree|{candidate.sample.sample_id}"
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        draw = int.from_bytes(digest[:8], "little") / float(2**64)
        return draw < self.cross_model_disagreement

    def evaluate(self, candidate: CandidateQA, prepared: PreparedVideo) -> VerificationDecision:
        sample = candidate.sample
        fact = candidate.source_fact
        if self._disagrees(candidate):
            others = [option for option in sample.options if option != candidate.generator_answer]
            disagreeing_answer = others[0] if others else candidate.generator_answer
            return VerificationDecision(
                candidate=candidate,
                approved=disagreeing_answer == candidate.generator_answer,
                verifier_answer=disagreeing_answer,
            )
        # An unanswerable question leaves the verifier guessing too.
        effective_fact = fact
        if candidate.unanswerable:
            effective_fact = type(fact)(
                object_name=fact.object_name,
                key=fact.key,
                value=fact.value,
                domain=fact.domain,
                category=fact.category,
                detail_scale=1.0,
                question=sample.question,
                multi_frame=fact.multi_frame,
                query_concepts=fact.query_concepts,
            )
        answer = self.mllm.answer_question(
            effective_fact,
            prepared.scene,
            prepared.original_frames,
            prepared.original_frames,
            mode=MODE_MULTIPLE_CHOICE,
            choices=list(sample.options),
            apply_frame_sampling=False,
            salt="verify",
        )
        approved = answer.answer == candidate.generator_answer
        return VerificationDecision(
            candidate=candidate, approved=approved, verifier_answer=answer.answer
        )

    def run(
        self,
        candidates: Sequence[CandidateQA],
        prepared_by_scene: dict[str, PreparedVideo],
    ) -> VerificationReport:
        decisions = []
        for candidate in candidates:
            prepared = prepared_by_scene[candidate.sample.scene_name]
            decisions.append(self.evaluate(candidate, prepared))
        return VerificationReport(decisions=decisions)
