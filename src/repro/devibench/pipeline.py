"""The five-step DeViBench construction pipeline (Section 3.1, Figure 6).

    Video Collection → Video Preprocessing → QA Generation → QA Filtering
    → Cross Verification

The paper reports the funnel: 11.16 % of generated QA pairs survive the
filter, 70.61 % of those survive cross-verification, for an overall yield of
about 7.8 %; the released benchmark contains 1,074 samples and the whole run
cost $68.47 and ~99,471 s of compute (Table 1).  This module runs the same
funnel over the synthetic corpus and reports the realised numbers next to
the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..video.scene import Scene
from .dataset import DeViBench, QASample
from .filtering import FilterReport, QAFilter
from .generation import CandidateQA, GenerationConfig, QAGenerator
from .verification import CrossVerifier, VerificationReport
from .videos import PreparedVideo, VideoCollection

#: Funnel rates reported by the paper (Table 1 and Section 3.1 text).
PAPER_FILTER_ACCEPTANCE = 0.1116
PAPER_VERIFICATION_APPROVAL = 0.7061
PAPER_OVERALL_YIELD = 0.078
PAPER_SAMPLE_COUNT = 1074
PAPER_TOTAL_DURATION_S = 180_000.0
PAPER_TOTAL_MONEY_USD = 68.47
PAPER_TOTAL_TIME_S = 99_471.0

#: Cost model used to produce Table 1-style totals for our runs: the paper's
#: totals divided by its generated-candidate count imply roughly these
#: per-candidate figures.
MONEY_PER_CANDIDATE_USD = PAPER_TOTAL_MONEY_USD / (PAPER_SAMPLE_COUNT / PAPER_OVERALL_YIELD)
TIME_PER_CANDIDATE_S = PAPER_TOTAL_TIME_S / (PAPER_SAMPLE_COUNT / PAPER_OVERALL_YIELD)


@dataclass
class PipelineReport:
    """Everything measured while constructing a benchmark."""

    benchmark: DeViBench
    generated_candidates: int
    filter_report: FilterReport
    verification_report: VerificationReport
    total_video_duration_s: float
    estimated_money_usd: float
    estimated_time_s: float

    @property
    def filter_acceptance_rate(self) -> float:
        return self.filter_report.acceptance_rate

    @property
    def verification_approval_rate(self) -> float:
        return self.verification_report.approval_rate

    @property
    def overall_yield(self) -> float:
        if self.generated_candidates == 0:
            return 0.0
        return len(self.benchmark) / self.generated_candidates

    def funnel(self) -> dict[str, float]:
        """The acceptance funnel, ours next to the paper's."""
        return {
            "generated": float(self.generated_candidates),
            "filter_accepted": float(len(self.filter_report.accepted)),
            "verified": float(len(self.benchmark)),
            "filter_acceptance_rate": self.filter_acceptance_rate,
            "paper_filter_acceptance_rate": PAPER_FILTER_ACCEPTANCE,
            "verification_approval_rate": self.verification_approval_rate,
            "paper_verification_approval_rate": PAPER_VERIFICATION_APPROVAL,
            "overall_yield": self.overall_yield,
            "paper_overall_yield": PAPER_OVERALL_YIELD,
        }


class DeViBenchPipeline:
    """Runs the full five-step construction pipeline."""

    def __init__(
        self,
        collection: Optional[VideoCollection] = None,
        generator: Optional[QAGenerator] = None,
        qa_filter: Optional[QAFilter] = None,
        verifier: Optional[CrossVerifier] = None,
    ) -> None:
        self.collection = collection or VideoCollection.synthetic(video_count=8)
        self.generator = generator or QAGenerator(GenerationConfig())
        self.qa_filter = qa_filter or QAFilter()
        self.verifier = verifier or CrossVerifier()

    def run(self) -> PipelineReport:
        """Execute collection → preprocessing → generation → filtering → verification."""
        prepared_videos = self.collection.prepare_all()
        prepared_by_scene = {prepared.scene.name: prepared for prepared in prepared_videos}

        candidates = self.generator.generate(prepared_videos)
        filter_report = self.qa_filter.run(candidates, prepared_by_scene)
        verification_report = self.verifier.run(filter_report.accepted, prepared_by_scene)

        samples = [candidate.sample for candidate in verification_report.approved]
        benchmark = DeViBench(samples, scenes=self.collection.scenes)

        return PipelineReport(
            benchmark=benchmark,
            generated_candidates=len(candidates),
            filter_report=filter_report,
            verification_report=verification_report,
            total_video_duration_s=self.collection.total_duration_s,
            estimated_money_usd=MONEY_PER_CANDIDATE_USD * len(candidates),
            estimated_time_s=TIME_PER_CANDIDATE_S * len(candidates),
        )


def build_benchmark(
    video_count: int = 8,
    seed: int = 0,
    height: int = 360,
    width: int = 640,
    frames_per_video: int = 3,
    generation_config: Optional[GenerationConfig] = None,
) -> PipelineReport:
    """One-call construction of a DeViBench instance over a synthetic corpus."""
    collection = VideoCollection.synthetic(
        video_count=video_count,
        seed=seed,
        height=height,
        width=width,
        frames_per_video=frames_per_video,
    )
    generator = QAGenerator(generation_config or GenerationConfig(seed=seed))
    pipeline = DeViBenchPipeline(collection=collection, generator=generator)
    return pipeline.run()
