"""DeViBench dataset containers: QA samples and the benchmark object.

DeViBench (Section 3.1) is a set of multiple-choice QA samples that are
*sensitive to video streaming quality*: each accepted sample is answerable
from the original video but not from the 200 Kbps rendition.  This module
holds the sample/benchmark data model, Table 1-style summaries and JSON
(de)serialisation so a generated benchmark can be shipped as an artifact.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

import numpy as np

from ..video.scene import CATEGORIES, Scene, SceneFact

OPTION_LETTERS = ("A", "B", "C", "D")


@dataclass
class QASample:
    """One multiple-choice question about one video."""

    sample_id: str
    scene_name: str
    question: str
    options: tuple[str, ...]
    correct_letter: str
    category: str
    multi_frame: bool
    detail_scale: float
    object_name: str
    fact_key: str
    ground_truth: str
    provenance: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.options) < 2 or len(self.options) > len(OPTION_LETTERS):
            raise ValueError("options must contain between 2 and 4 entries")
        if self.correct_letter not in OPTION_LETTERS[: len(self.options)]:
            raise ValueError(f"correct_letter {self.correct_letter!r} not among the options")
        if self.category not in CATEGORIES:
            raise ValueError(f"unknown category {self.category!r}")
        if self.options[self.letter_index(self.correct_letter)] != self.ground_truth:
            raise ValueError("the option behind correct_letter must equal ground_truth")

    @staticmethod
    def letter_index(letter: str) -> int:
        return OPTION_LETTERS.index(letter)

    @property
    def correct_option(self) -> str:
        return self.options[self.letter_index(self.correct_letter)]

    def option_letter_for(self, answer_text: str) -> Optional[str]:
        """The letter of the option matching an answer text, if any."""
        for letter, option in zip(OPTION_LETTERS, self.options):
            if option == answer_text:
                return letter
        return None

    def is_correct(self, answer: str) -> bool:
        """Grade an answer given either as a letter or as the option text."""
        answer = answer.strip()
        if answer.upper() in OPTION_LETTERS[: len(self.options)]:
            return answer.upper() == self.correct_letter
        return answer == self.correct_option

    def to_fact(self) -> SceneFact:
        """Rebuild the underlying scene fact (used when re-asking the MLLM)."""
        return SceneFact(
            object_name=self.object_name,
            key=self.fact_key,
            value=self.ground_truth,
            domain=tuple(dict.fromkeys(list(self.options) + [self.ground_truth])),
            category=self.category,
            detail_scale=self.detail_scale,
            question=self.question,
            multi_frame=self.multi_frame,
        )


@dataclass
class BenchmarkSummary:
    """The Table 1 style summary of a generated benchmark."""

    num_samples: int
    num_sample_types: int
    total_duration_s: float
    total_money_spent_usd: float
    total_time_cost_s: float
    category_distribution: dict[str, float]
    multi_frame_fraction: float


class DeViBench:
    """A collection of quality-sensitive QA samples over a scene corpus."""

    def __init__(self, samples: Sequence[QASample], scenes: Optional[Sequence[Scene]] = None) -> None:
        self._samples = list(samples)
        self._scenes = {scene.name: scene for scene in (scenes or [])}

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self):
        return iter(self._samples)

    @property
    def samples(self) -> list[QASample]:
        return list(self._samples)

    def scene_for(self, sample: QASample) -> Scene:
        if sample.scene_name not in self._scenes:
            raise KeyError(f"scene {sample.scene_name!r} not attached to this benchmark")
        return self._scenes[sample.scene_name]

    @property
    def scenes(self) -> list[Scene]:
        return list(self._scenes.values())

    def by_category(self, category: str) -> list[QASample]:
        return [sample for sample in self._samples if sample.category == category]

    def category_distribution(self) -> dict[str, float]:
        if not self._samples:
            return {category: 0.0 for category in CATEGORIES}
        counts = {category: 0 for category in CATEGORIES}
        for sample in self._samples:
            counts[sample.category] += 1
        total = len(self._samples)
        return {category: counts[category] / total for category in CATEGORIES}

    def multi_frame_fraction(self) -> float:
        if not self._samples:
            return 0.0
        return float(np.mean([sample.multi_frame for sample in self._samples]))

    def sample_type_count(self) -> int:
        """Number of (category, temporal-dependency) type combinations present."""
        types = {(sample.category, sample.multi_frame) for sample in self._samples}
        return len(types)

    def summary(
        self,
        scene_duration_s: Optional[float] = None,
        money_per_sample_usd: float = 0.0,
        time_per_sample_s: float = 0.0,
    ) -> BenchmarkSummary:
        duration = 0.0
        if scene_duration_s is not None:
            duration = scene_duration_s * max(len(self._scenes), 1)
        else:
            duration = sum(scene.duration_s for scene in self._scenes.values())
        return BenchmarkSummary(
            num_samples=len(self._samples),
            num_sample_types=self.sample_type_count(),
            total_duration_s=duration,
            total_money_spent_usd=money_per_sample_usd * len(self._samples),
            total_time_cost_s=time_per_sample_s * len(self._samples),
            category_distribution=self.category_distribution(),
            multi_frame_fraction=self.multi_frame_fraction(),
        )

    # -- persistence --------------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "format": "devibench-v1",
            "samples": [
                {**asdict(sample), "options": list(sample.options)} for sample in self._samples
            ],
        }
        return json.dumps(payload, indent=2)

    def save(self, path: Path) -> None:
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def from_json(cls, text: str, scenes: Optional[Sequence[Scene]] = None) -> "DeViBench":
        payload = json.loads(text)
        if payload.get("format") != "devibench-v1":
            raise ValueError("unrecognised DeViBench serialisation format")
        samples = [
            QASample(**{**entry, "options": tuple(entry["options"])})
            for entry in payload["samples"]
        ]
        return cls(samples, scenes=scenes)

    @classmethod
    def load(cls, path: Path, scenes: Optional[Sequence[Scene]] = None) -> "DeViBench":
        return cls.from_json(Path(path).read_text(encoding="utf-8"), scenes=scenes)
