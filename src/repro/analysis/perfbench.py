"""Persistent performance benchmark harness for the simulation fast path.

The ROADMAP's north star is a reproduction that runs "as fast as the
hardware allows"; this module makes that measurable.  It times canonical
workloads twice — once with the vectorized fast path enabled (the default)
and once in scalar reference mode (``REPRO_NET_FASTPATH=0``: per-packet RNG
draws and linear-scan trace lookups, the pre-fast-path algorithms) — and
emits a machine-readable ``BENCH_sweep.json`` so subsequent PRs inherit a
perf trajectory instead of a blank slate.

Workloads:

* ``single_session_*`` — one 10 s fixed-bitrate transport session per loss
  model (clean link, i.i.d. Bernoulli, bursty Gilbert-Elliott; the lossy
  two carry ≥1.8× gates locking in the batched block-delivery transport),
  plus ``single_session_dense_trace`` over a 1 ms-granularity bandwidth
  trace (the resolution of standard cellular trace corpora) with bursty
  loss (≥2× gate), plus ``single_session_fec`` — an XOR-FEC-protected
  bursty session through the batched send path (the send side is batched,
  delivery stays per-packet for decode-order exactness, so the gain is
  modest and the workload is gated on equivalence, not speedup).
* ``closed_loop_session`` — a feedback-driven session: receiver reports
  over the feedback path, a GCC + throughput-ABR controller retuning the
  sender per report.  Like the FEC session it is gated on equivalence
  rather than speedup — the gate proves the *control trajectory* (reports
  delivered, every action, every frame completion) is bit-identical
  between the scalar and fast paths, including over lossy/jittery
  feedback channels and with adaptive FEC.
* ``smoke_sweep`` — an 18-cell ``figure3_latency`` sweep (3 scenarios × 6
  seeds) through the multiprocessing pool with the cell cache disabled,
  the workload the ≥4× target is measured on.
* ``fec_codec`` — XOR-parity encode + payload reconstruction over
  thousands of payload-carrying frames: per-byte Python XOR (scalar
  reference) vs reusable ``numpy.uint8`` views (≥3× gate).

Every workload is timed with best-of-3 repeats and the *median* is
reported (single-shot timings on a 1-CPU host swing with scheduler noise;
a failed gate must mean a regression).  Before timing anything the harness
asserts statistical equivalence between the scalar and vectorized paths:
identical seeds must produce identical drop sequences (Bernoulli and
Gilbert-Elliott), identical ``rate_at`` lookups, identical end-to-end
session statistics — including jittered, single-packet-frame and
FEC-protected sessions that stress the batched delivery path — and
identical FEC parity bytes.  A speedup claimed over a baseline that
computes something different would be meaningless.
"""

from __future__ import annotations

import json
import os
import platform
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Optional

import numpy as np

from ..core import wallclock
from ..net.control import controller_from_spec, preset_controller_spec
from ..net.emulator import (
    FASTPATH_ENV,
    BandwidthTrace,
    BernoulliLoss,
    GilbertElliottLoss,
    LossModel,
    PathConfig,
)
from ..net.fec import FecConfig, FecDecoder, FecEncoder
from ..net.packet import FrameAssembler, Packetizer
from ..net.transport import (
    FixedBitrateWorkload,
    TransportConfig,
    VideoTransportSession,
    drive_closed_loop,
    drive_fixed_bitrate,
    run_fixed_bitrate_session,
)
from ..obs import Telemetry

#: Schema identifier stamped into the emitted JSON.  v2 adds per-workload
#: ``units``/``throughput`` (size-independent work measures for regression
#: comparison across smoke and full runs) and repeat samples in ``detail``.
BENCH_SCHEMA = "repro-perfbench-v2"

#: Default output filename, resolved against the CWD (run the harness from
#: the repo root to refresh the committed snapshot).
DEFAULT_BENCH_PATH = "BENCH_sweep.json"

#: Acceptance targets (speedup = scalar time / fast time).  The lossy
#: single-session floors and the 4x sweep floor lock in the batched
#: transport hot path (block delivery, array bookkeeping, coalesced
#: timers); the FEC floor locks in numpy XOR parity coding.
SPEEDUP_TARGETS = {
    "smoke_sweep": 4.0,
    "single_session_bernoulli": 1.8,
    "single_session_gilbert_elliott": 1.8,
    "single_session_dense_trace": 2.0,
    "fec_codec": 3.0,
}


@contextmanager
def fastpath_mode(enabled: bool) -> Iterator[None]:
    """Force the fast path on or off for objects constructed in the block.

    The flag is read at construction time and inherited by pool workers
    through the environment, so wrapping a whole workload (construction
    included) switches every path and trace it builds.
    """
    previous = os.environ.get(FASTPATH_ENV)
    os.environ[FASTPATH_ENV] = "1" if enabled else "0"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(FASTPATH_ENV, None)
        else:
            os.environ[FASTPATH_ENV] = previous


# ---------------------------------------------------------------------------
# Canonical workload inputs
# ---------------------------------------------------------------------------


def dense_trace(duration_s: float, granularity_s: float = 0.001) -> BandwidthTrace:
    """A sinusoidal bandwidth trace sampled every ``granularity_s`` seconds.

    Cellular trace corpora (Mahimahi and friends) record capacity at
    millisecond granularity; 1 ms over a 10 s session is ~10000 breakpoints,
    which is where the old O(breakpoints) ``rate_at`` scan became the
    dominant cost of a session.
    """
    steps = max(2, int(round(duration_s / granularity_s)))
    times = np.linspace(0.0, duration_s, steps)
    rates = 6e6 + 2e6 * np.sin(np.linspace(0.0, 4.0 * np.pi, steps))
    return BandwidthTrace(times=times.tolist(), rates_bps=rates.tolist())


def _session_loss_models() -> dict[str, Optional[LossModel]]:
    return {
        "clean": None,
        "bernoulli": BernoulliLoss(0.02),
        "gilbert_elliott": GilbertElliottLoss(
            p_good_to_bad=0.02, p_bad_to_good=0.3, loss_in_bad=0.5
        ),
    }


def _run_session(
    duration_s: float,
    loss_model: Optional[LossModel],
    trace: Optional[BandwidthTrace],
    seed: int = 5,
    bitrate_bps: float = 6e6,
    jitter_std_s: float = 0.0,
) -> tuple[int, int, float, float, float]:
    """One fixed-bitrate session; returns a stats tuple for equivalence checks."""
    config = PathConfig(
        loss_model=loss_model if loss_model is not None else BernoulliLoss(0.0),
        bandwidth_trace=trace,
        seed=seed,
        jitter_std_s=jitter_std_s,
    )
    stats = run_fixed_bitrate_session(bitrate_bps, duration_s, uplink_config=config)
    summary = stats.summary()
    return (
        summary.count,
        summary.delivered,
        summary.mean_s,
        summary.p99_s,
        summary.mean_retransmissions,
    )


def _run_fec_session(
    duration_s: float,
    seed: int = 5,
    bitrate_bps: float = 4e6,
    jitter_std_s: float = 0.0,
) -> tuple:
    """One FEC-protected bursty session; returns every observable that must
    match between the scalar path and the batched send path: the latency
    summary, the decoder's recovery counters, and a digest of per-frame
    completion instants (bit-exact, not just statistically close)."""
    config = PathConfig(
        loss_model=GilbertElliottLoss(p_good_to_bad=0.04, p_bad_to_good=0.3, loss_in_bad=0.5),
        seed=seed,
        jitter_std_s=jitter_std_s,
    )
    session = VideoTransportSession(
        uplink_config=config,
        transport_config=TransportConfig(fec=FecConfig(group_size=5)),
    )
    drive_fixed_bitrate(session, FixedBitrateWorkload(bitrate_bps=bitrate_bps), duration_s)
    summary = session.stats.summary()
    completions = tuple(
        (event.frame_id, event.complete_time) for event in session.receiver.delivered_frames
    )
    return (
        summary.count,
        summary.delivered,
        summary.mean_s,
        summary.p99_s,
        summary.mean_retransmissions,
        tuple(sorted(session.fec_summary().items())),
        session.uplink.stats.packets_delivered,
        session.sender.retransmissions_sent,
        hash(completions),
    )


def _run_closed_loop_session(
    duration_s: float,
    seed: int = 5,
    jitter_std_s: float = 0.0,
    feedback_loss_rate: float = 0.0,
    feedback_jitter_std_s: float = 0.0,
    fec: bool = False,
) -> tuple:
    """One feedback-driven session (GCC + throughput ABR over receiver
    reports); returns every observable that must match between the scalar
    path and the batched fast path: the latency summary, the number of
    reports that survived the feedback path, the full controller action
    sequence, and per-frame completion instants (bit-exact)."""
    uplink = PathConfig(
        loss_model=GilbertElliottLoss(p_good_to_bad=0.04, p_bad_to_good=0.3, loss_in_bad=0.5),
        seed=seed,
        jitter_std_s=jitter_std_s,
    )
    feedback = PathConfig(
        loss_model=BernoulliLoss(feedback_loss_rate),
        seed=seed + 1,
        jitter_std_s=feedback_jitter_std_s,
    )
    session = VideoTransportSession(
        uplink_config=uplink,
        feedback_config=feedback,
        transport_config=TransportConfig(
            report_interval_s=0.2,
            fec=FecConfig(group_size=5) if fec else None,
        ),
        controller=controller_from_spec(preset_controller_spec("gcc")),
    )
    drive_closed_loop(session, FixedBitrateWorkload(bitrate_bps=2e6), duration_s)
    summary = session.stats.summary()
    actions = tuple(
        (when, action.target_bitrate_bps, action.fec_overhead_ratio)
        for when, action in session.control_log
    )
    completions = tuple(
        (event.frame_id, event.complete_time) for event in session.receiver.delivered_frames
    )
    return (
        summary.count,
        summary.delivered,
        summary.mean_s,
        summary.p99_s,
        summary.mean_retransmissions,
        session.uplink.stats.packets_delivered,
        session.feedback.stats.packets_delivered,
        session.reports_received,
        len(actions),
        hash(actions),
        hash(completions),
    )


def _run_telemetry_stream(
    duration_s: float,
    fec: bool = False,
    closed_loop: bool = False,
    seed: int = 5,
) -> str:
    """One instrumented session; returns the deterministic telemetry export
    (metric JSONL + sim-clock span JSONL, see ``Telemetry.sim_stream``).

    Same discipline as the report-parity gates of PR 7: the stream is a
    pure function of the seeded simulation, so the scalar and batched
    paths — already bit-identical in their observable stats — must
    serialize bit-identical telemetry, byte for byte.
    """
    telemetry = Telemetry()
    uplink = PathConfig(
        loss_model=GilbertElliottLoss(p_good_to_bad=0.04, p_bad_to_good=0.3, loss_in_bad=0.5),
        seed=seed,
    )
    session = VideoTransportSession(
        uplink_config=uplink,
        transport_config=TransportConfig(
            fec=FecConfig(group_size=5) if fec else None,
            report_interval_s=0.2 if closed_loop else 0.0,
        ),
        controller=(
            controller_from_spec(preset_controller_spec("gcc")) if closed_loop else None
        ),
        telemetry=telemetry,
    )
    if closed_loop:
        drive_closed_loop(session, FixedBitrateWorkload(bitrate_bps=2e6), duration_s)
    else:
        drive_fixed_bitrate(session, FixedBitrateWorkload(bitrate_bps=4e6), duration_s)
    session.finalize_telemetry()
    return telemetry.sim_stream()


def _run_smoke_sweep(results_dir: Path, duration_s: float, processes: Optional[int]) -> int:
    """The 18-cell benchmark sweep; returns the number of executed cells."""
    from .sweeps import Scenario, SweepGrid, SweepRunner

    # Every scenario rides the same millisecond-granularity bandwidth trace
    # (the realistic link model the scenario corpus exists for) under a
    # different loss process, so each cell exercises the full hot path:
    # per-packet drop decisions plus per-packet rate lookups.
    overrides = {"duration_s": duration_s, "height": 160, "width": 288}
    trace = dense_trace(duration_s)
    trace_spec = {"times": list(trace.times), "rates_bps": list(trace.rates_bps)}
    scenarios = (
        Scenario(
            name="bench-trace-clean",
            loss_model={"kind": "bernoulli", "loss_rate": 0.0},
            bandwidth_trace=trace_spec,
            overrides=overrides,
        ),
        Scenario(
            name="bench-trace-iid",
            loss_model={"kind": "bernoulli", "loss_rate": 0.02},
            bandwidth_trace=trace_spec,
            overrides=overrides,
        ),
        Scenario(
            name="bench-trace-bursty",
            loss_model={
                "kind": "gilbert_elliott",
                "p_good_to_bad": 0.03,
                "p_bad_to_good": 0.3,
                "loss_in_bad": 0.5,
            },
            bandwidth_trace=trace_spec,
            overrides=overrides,
        ),
    )
    grid = SweepGrid(
        experiments=("figure3_latency",),
        scenarios=scenarios,
        seeds=(0, 1, 2, 3, 4, 5),
    )
    report = SweepRunner(results_dir=results_dir, processes=processes, use_cache=False).run(grid)
    if report.failed_cells:
        # Fault isolation turns runner crashes into instant error records; a
        # sweep of failures would finish *faster* than a healthy one and make
        # the speedup gate pass vacuously.  A failed gate must mean a
        # regression, so a crashing benchmark sweep must abort the harness.
        raise RuntimeError(
            f"benchmark sweep had {len(report.failed_cells)} failed cells: "
            f"{report.failed_cells[0].error}"
        )
    return len(report.cells)


def _run_fec_codec(frames: int, digest_every: int = 0) -> tuple[int, int, int]:
    """XOR-FEC encode/decode over payload-carrying packets at scale.

    Every frame drops one data packet, so each frame exercises parity
    coding *and* payload reconstruction.  Returns (parity packets,
    recovered packets, payload checksum) — the checksum folds the parity
    and recovered bytes of every ``digest_every``-th frame (all frames when
    1), which the equivalence gate uses to prove the per-byte scalar XOR
    and the vectorized uint8 XOR produce identical bytes.
    """
    packetizer = Packetizer()
    encoder = FecEncoder(FecConfig(group_size=5))
    decoder = FecDecoder(FecConfig(group_size=5))
    assembler = FrameAssembler()
    payload_pool = bytes(range(256)) * 120  # > frame size; sliced per packet
    parity_count = 0
    checksum = 0
    now = 0.0
    for frame_id in range(frames):
        now = frame_id / 30.0
        packets = packetizer.packetize(frame_id, 28_000, now)
        position = 0
        for packet in packets:
            packet.payload = payload_pool[position : position + packet.size_bytes]
            position += packet.size_bytes
        parity = encoder.protect(packets, packetizer)
        parity_count += len(parity)
        digest = digest_every and frame_id % digest_every == 0
        for packet in packets:
            # Deterministically drop one packet per frame so every frame
            # exercises the recovery path.
            if packet.index_in_frame == 3:
                continue
            decoder.on_data_packet(packet, assembler)
            assembler.on_packet(packet, now)
        for fec_packet in parity:
            if digest:
                checksum = (checksum * 1000003 + hash(fec_packet.payload)) & 0xFFFFFFFF
            for recovered in decoder.on_fec_packet(fec_packet, assembler):
                if digest:
                    checksum = (checksum * 1000003 + hash(recovered.payload)) & 0xFFFFFFFF
                assembler.on_packet(recovered, now)
    return parity_count, decoder.recovered_packets, checksum


# ---------------------------------------------------------------------------
# Equivalence checks
# ---------------------------------------------------------------------------


def _scalar_drop_sequence(model: LossModel, seed: int, n: int) -> list[bool]:
    rng = np.random.default_rng(seed)
    return [model.should_drop(rng) for _ in range(n)]


def _block_drop_sequence(model: LossModel, seed: int, n: int, block: int) -> list[bool]:
    rng = np.random.default_rng(seed)
    out: list[bool] = []
    while len(out) < n:
        out.extend(bool(x) for x in model.sample_drops(rng, min(block, n - len(out))))
    return out[:n]


def equivalence_report(session_duration_s: float = 2.0) -> dict[str, bool]:
    """Prove the scalar and vectorized paths compute the same thing.

    Returns a dict of named boolean checks; ``run_benchmarks`` refuses to
    report timings unless every check passes.
    """
    checks: dict[str, bool] = {}

    checks["bernoulli_block_equals_scalar"] = all(
        _scalar_drop_sequence(BernoulliLoss(rate), seed, 700)
        == _block_drop_sequence(BernoulliLoss(rate), seed, 700, block)
        for rate in (0.0, 0.02, 0.3)
        for seed in (0, 7)
        for block in (1, 64, 1024)
    )

    def ge() -> GilbertElliottLoss:
        return GilbertElliottLoss(
            p_good_to_bad=0.05, p_bad_to_good=0.25, loss_in_bad=0.6, loss_in_good=0.01
        )

    checks["gilbert_elliott_block_equals_scalar"] = all(
        _scalar_drop_sequence(ge(), seed, 700) == _block_drop_sequence(ge(), seed, 700, block)
        for seed in (0, 11)
        for block in (1, 64, 1024)
    )

    rng = np.random.default_rng(0)
    rate_at_ok = True
    for _ in range(20):
        count = int(rng.integers(1, 40))
        times = np.sort(rng.uniform(0.0, 10.0, size=count)).tolist()
        rates = rng.uniform(1e5, 1e7, size=count).tolist()
        with fastpath_mode(True):
            trace = BandwidthTrace(times=times, rates_bps=rates)
        queries = rng.uniform(-1.0, 12.0, size=200).tolist() + times
        rate_at_ok &= all(trace.rate_at(t) == trace.rate_at_scan(t) for t in queries)
    checks["rate_at_equals_linear_scan"] = bool(rate_at_ok)

    trace = dense_trace(session_duration_s)
    spec = (trace.times, trace.rates_bps)
    session_ok = True
    for name, model in _session_loss_models().items():
        with fastpath_mode(False):
            scalar = _run_session(
                session_duration_s,
                _clone_model(model),
                BandwidthTrace(times=spec[0], rates_bps=spec[1]),
            )
        with fastpath_mode(True):
            fast = _run_session(
                session_duration_s,
                _clone_model(model),
                BandwidthTrace(times=spec[0], rates_bps=spec[1]),
            )
        session_ok &= scalar == fast
    checks["session_stats_identical"] = bool(session_ok)

    # The batched block-delivery path must survive its hardest shapes:
    # jitter (reordered arrivals, transient gaps, burst-granular delivery)
    # and single-packet frames (every loss wipes a whole frame, so recovery
    # rides entirely on the sequence-NACK window).
    variants = {
        "jittered": dict(jitter_std_s=0.002),
        "single_packet_frames": dict(bitrate_bps=250_000),
    }
    for label, kwargs in variants.items():
        model = GilbertElliottLoss(p_good_to_bad=0.04, p_bad_to_good=0.3, loss_in_bad=0.5)
        with fastpath_mode(False):
            scalar = _run_session(session_duration_s, _clone_model(model), None, **kwargs)
        with fastpath_mode(True):
            fast = _run_session(session_duration_s, _clone_model(model), None, **kwargs)
        checks[f"session_stats_identical_{label}"] = scalar == fast

    # XOR parity coding: per-byte reference bytes == vectorized uint8 bytes
    # (parity payloads and recovered payloads both folded into the digest).
    with fastpath_mode(False):
        fec_scalar = _run_fec_codec(40, digest_every=1)
    with fastpath_mode(True):
        fec_fast = _run_fec_codec(40, digest_every=1)
    checks["fec_payload_bytes_identical"] = fec_scalar == fec_fast

    # FEC sessions ride the batched send_block path (per-packet delivery
    # events); their stats must match the scalar reference bit-for-bit —
    # latency summary, recovery/spurious counters, per-frame completion
    # instants — including under jitter and with single-packet frames.
    fec_session_variants = {
        "fec_session_stats_identical": dict(),
        "fec_session_stats_identical_jittered": dict(jitter_std_s=0.002),
        "fec_session_stats_identical_single_packet": dict(bitrate_bps=250_000),
    }
    for label, kwargs in fec_session_variants.items():
        with fastpath_mode(False):
            scalar = _run_fec_session(session_duration_s, **kwargs)
        with fastpath_mode(True):
            fast = _run_fec_session(session_duration_s, **kwargs)
        checks[label] = scalar == fast

    # Closed-loop sessions: receiver reports ride the feedback path, a GCC +
    # ABR controller retunes the sender per report, and (optionally) FEC
    # redundancy adapts mid-session.  The *entire* control trajectory —
    # report count, every action, every completion instant — must be
    # bit-identical between the scalar per-packet path and the batched fast
    # path, including when the feedback channel itself is lossy or jittery.
    closed_loop_variants = {
        "closed_loop_stats_identical": dict(),
        "closed_loop_stats_identical_jittered": dict(jitter_std_s=0.002),
        "closed_loop_stats_identical_lossy_feedback": dict(
            feedback_loss_rate=0.05, feedback_jitter_std_s=0.002
        ),
        "closed_loop_stats_identical_fec": dict(fec=True),
    }
    for label, kwargs in closed_loop_variants.items():
        with fastpath_mode(False):
            scalar = _run_closed_loop_session(session_duration_s, **kwargs)
        with fastpath_mode(True):
            fast = _run_closed_loop_session(session_duration_s, **kwargs)
        checks[label] = scalar == fast

    # Telemetry stream equivalence: the obs counter/span export is an
    # observable like any other.  The scalar and batched paths must
    # serialize it bit-identically, and a repeated seeded fast-path run
    # must reproduce it exactly (no wall-clock or RNG leakage into the
    # sim-time stream).
    telemetry_variants = {
        "telemetry_stream_identical": dict(),
        "telemetry_stream_identical_fec": dict(fec=True),
        "telemetry_stream_identical_closed_loop": dict(closed_loop=True),
    }
    for label, kwargs in telemetry_variants.items():
        with fastpath_mode(False):
            scalar = _run_telemetry_stream(session_duration_s, **kwargs)
        with fastpath_mode(True):
            fast = _run_telemetry_stream(session_duration_s, **kwargs)
            repeat = _run_telemetry_stream(session_duration_s, **kwargs)
        checks[label] = scalar == fast == repeat
    return checks


def _clone_model(model: Optional[LossModel]) -> Optional[LossModel]:
    import copy

    return copy.deepcopy(model)


# ---------------------------------------------------------------------------
# Timing
# ---------------------------------------------------------------------------


@dataclass
class BenchTiming:
    """Before/after timing of one canonical workload.

    ``before_s``/``after_s`` are the medians over the repeat samples (kept
    in ``detail`` for debuggability); the median filters the scheduler
    spikes a 1-CPU host produces, so a failed gate means a regression, not
    noise.  ``units`` is a size-independent work measure (simulated
    seconds, frames, cells) letting CI compare throughput across smoke and
    full runs.
    """

    name: str
    before_s: float
    after_s: float
    units: float = 0.0
    detail: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.after_s <= 0.0:
            return float("inf")
        return self.before_s / self.after_s

    @property
    def throughput(self) -> float:
        """Workload units processed per wall second on the fast path."""
        if self.after_s <= 0.0 or self.units <= 0.0:
            return 0.0
        return self.units / self.after_s

    def to_jsonable(self) -> dict:
        return {
            "name": self.name,
            "before_s": round(self.before_s, 6),
            "after_s": round(self.after_s, 6),
            "speedup": round(self.speedup, 3),
            "units": self.units,
            "throughput": round(self.throughput, 3),
            "detail": self.detail,
        }


def _time_workload(fn: Callable[[], Any], repeats: int) -> tuple[float, list[float]]:
    """Median-of-``repeats`` wall time, plus the raw samples."""
    samples: list[float] = []
    for _ in range(max(1, repeats)):
        started = wallclock.perf_counter()
        fn()
        samples.append(wallclock.perf_counter() - started)
    ordered = sorted(samples)
    return ordered[len(ordered) // 2], samples


def canonical_workloads(
    smoke: bool = False,
    processes: Optional[int] = None,
    results_dir: Optional[str | Path] = None,
) -> list[dict]:
    """The harness's canonical workloads, shared by timing and profiling.

    Returns entries of ``{name, workload, units, detail}``; anything added
    here is picked up by both :func:`run_benchmarks` and
    :func:`profile_workloads`.
    """
    import tempfile

    session_s = 2.0 if smoke else 10.0
    sweep_session_s = 1.0 if smoke else 10.0
    fec_frames = 300 if smoke else 2000

    entries: list[dict] = []
    for name, model in _session_loss_models().items():
        entries.append(
            {
                "name": f"single_session_{name}",
                "workload": lambda model=model: _run_session(
                    session_s, _clone_model(model), None
                ),
                "units": session_s,
                "detail": {"duration_s": session_s, "loss_model": name},
            }
        )
    entries.append(
        {
            "name": "single_session_dense_trace",
            "workload": lambda: _run_session(
                session_s,
                GilbertElliottLoss(p_good_to_bad=0.02, p_bad_to_good=0.3, loss_in_bad=0.5),
                dense_trace(session_s),
            ),
            "units": session_s,
            "detail": {
                "duration_s": session_s,
                "trace_breakpoints": max(2, int(round(session_s / 0.001))),
                "loss_model": "gilbert_elliott",
            },
        }
    )
    entries.append(
        {
            "name": "single_session_fec",
            "workload": lambda: _run_fec_session(session_s),
            "units": session_s,
            "detail": {
                "duration_s": session_s,
                "loss_model": "gilbert_elliott",
                "note": "FEC session through the batched send path (per-packet delivery)",
            },
        }
    )
    entries.append(
        {
            "name": "closed_loop_session",
            "workload": lambda: _run_closed_loop_session(session_s),
            "units": session_s,
            "detail": {
                "duration_s": session_s,
                "loss_model": "gilbert_elliott",
                "note": (
                    "feedback-driven session (receiver reports + GCC/ABR "
                    "controller); gated on bit-identical control trajectories, "
                    "not speedup"
                ),
            },
        }
    )
    entries.append(
        {
            "name": "fec_codec",
            "workload": lambda: _run_fec_codec(fec_frames),
            "units": float(fec_frames),
            "detail": {"frames": fec_frames, "note": "payload XOR: per-byte vs numpy uint8"},
        }
    )

    def sweep_workload() -> None:
        if results_dir is not None:
            _run_smoke_sweep(Path(results_dir), sweep_session_s, processes)
            return
        with tempfile.TemporaryDirectory(prefix="perfbench-sweep-") as tmp:
            _run_smoke_sweep(Path(tmp), sweep_session_s, processes)

    entries.append(
        {
            "name": "smoke_sweep",
            "workload": sweep_workload,
            "units": 18 * sweep_session_s,
            "detail": {"cells": 18, "duration_s": sweep_session_s},
        }
    )
    return entries


def run_benchmarks(
    smoke: bool = False,
    repeats: Optional[int] = None,
    results_dir: Optional[str | Path] = None,
    processes: Optional[int] = None,
) -> dict:
    """Run the full harness and return the ``BENCH_sweep.json`` payload.

    ``smoke`` shrinks every workload (2 s sessions, 1 s sweep cells) so CI
    can run the harness end-to-end in a few minutes; the committed snapshot
    comes from a full run.  Raises ``RuntimeError`` if any scalar-vs-
    vectorized equivalence check fails — timings of non-equivalent paths
    are not comparable and must never be reported.
    """
    # Best-of-3 medians for *every* workload (including the sweep): on a
    # 1-CPU host single-shot timings swing with scheduler noise, and the
    # gates must mean regressions.
    repeats = repeats if repeats is not None else 3
    session_s = 2.0 if smoke else 10.0

    checks = equivalence_report(session_duration_s=min(session_s, 2.0))
    if not all(checks.values()):
        failed = sorted(name for name, ok in checks.items() if not ok)
        raise RuntimeError(f"scalar/vectorized equivalence failed: {failed}")

    timings = [
        _before_after(
            entry["name"],
            entry["workload"],
            repeats,
            units=entry["units"],
            detail=entry["detail"],
        )
        for entry in canonical_workloads(smoke=smoke, processes=processes, results_dir=results_dir)
    ]

    targets_met = {
        name: next(t.speedup for t in timings if t.name == name) >= target
        for name, target in SPEEDUP_TARGETS.items()
    }
    return {
        "schema": BENCH_SCHEMA,
        "mode": "smoke" if smoke else "full",
        "generated_unix": wallclock.unix_time(),
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "numpy": np.__version__,
        },
        "equivalence": checks,
        "benchmarks": [t.to_jsonable() for t in timings],
        "targets": SPEEDUP_TARGETS,
        "targets_met": targets_met,
    }


def _before_after(
    name: str,
    workload: Callable[[], Any],
    repeats: int,
    units: float = 0.0,
    detail: Optional[dict] = None,
) -> BenchTiming:
    with fastpath_mode(False):
        before, before_samples = _time_workload(workload, repeats)
    with fastpath_mode(True):
        after, after_samples = _time_workload(workload, repeats)
    detail = dict(detail or {})
    detail["before_samples_s"] = [round(s, 6) for s in before_samples]
    detail["after_samples_s"] = [round(s, 6) for s in after_samples]
    return BenchTiming(name=name, before_s=before, after_s=after, units=units, detail=detail)


def profile_workloads(
    smoke: bool = False,
    processes: Optional[int] = None,
    top: int = 20,
    stream: Any = None,
) -> None:
    """cProfile every canonical workload on the fast path.

    Prints the top ``top`` functions by cumulative time per workload so the
    next optimisation pass starts from data rather than guesses.  The sweep
    profile mostly shows multiprocessing pool wait — its per-cell hot path
    is what the ``single_session_*`` profiles break down.
    """
    import cProfile
    import pstats
    import sys

    out = stream if stream is not None else sys.stdout
    workloads = [
        (entry["name"], entry["workload"])
        for entry in canonical_workloads(smoke=smoke, processes=processes)
    ]

    with fastpath_mode(True):
        for name, workload in workloads:
            profiler = cProfile.Profile()
            profiler.enable()
            workload()
            profiler.disable()
            print(f"\n=== {name}: top {top} functions by cumulative time ===", file=out)
            pstats.Stats(profiler, stream=out).sort_stats("cumulative").print_stats(top)


def write_bench_json(payload: dict, path: str | Path = DEFAULT_BENCH_PATH) -> Path:
    """Write the payload atomically and return the destination path."""
    destination = Path(path)
    tmp = destination.with_suffix(destination.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    tmp.replace(destination)
    return destination


def render_table(payload: dict) -> str:
    """Human-readable summary of a harness payload."""
    lines = [
        f"perfbench ({payload['mode']} mode) — speedup = scalar / vectorized",
        f"{'workload':<30} {'before':>10} {'after':>10} {'speedup':>9}",
    ]
    for entry in payload["benchmarks"]:
        lines.append(
            f"{entry['name']:<30} {entry['before_s']:>9.3f}s {entry['after_s']:>9.3f}s "
            f"{entry['speedup']:>8.2f}x"
        )
    for name, met in payload.get("targets_met", {}).items():
        target = payload["targets"][name]
        status = "met" if met else "NOT MET"
        lines.append(f"target {name}: >= {target:.1f}x — {status}")
    equivalence = payload.get("equivalence", {})
    status = "all passed" if all(equivalence.values()) else "FAILED"
    lines.append(f"equivalence checks: {status} ({len(equivalence)})")
    return "\n".join(lines)
