"""One runner per table / figure of the paper.

Every experiment in the evaluation (and every quantitative claim in the
motivation) has a function here that regenerates it on the simulated stack.
The benchmark harness under ``benchmarks/`` calls these runners and prints
the same rows/series the paper reports; EXPERIMENTS.md records the outcomes
next to the paper's numbers.
"""

from __future__ import annotations

import copy
import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..core.context_aware import ContextAwareStreamer, StreamingConfig, UniformStreamer
from ..core.pipeline import AIVideoChatSession, ChatSessionConfig
from ..core.proactive import HybridProactivePolicy, SaliencyProactivePolicy
from ..core.qp_map import QpMapConfig, correlation_to_qp, qp_map_statistics
from ..core.semantic_layers import SemanticLayeredEncoder
from ..core.token_pruning import ContextAwareTokenPruner, PruningConfig
from ..devibench.dataset import DeViBench
from ..devibench.evaluate import BenchmarkEvaluator, coarse_qa_breakage_rate
from ..devibench.pipeline import PipelineReport, build_benchmark
from ..devibench.videos import VideoCollection
from ..mllm.clip import MobileClip
from ..mllm.model import MODE_FREE_RESPONSE, MODE_MULTIPLE_CHOICE, SimulatedMLLM
from ..mllm.sampler import ReceiverSampler, SamplerConfig, perceived_throughput_bps, sender_throughput_bps
from ..mllm.tokenizer import (
    DiscreteTokenizer,
    TokenizerConfig,
    compare_token_stream_bitrates,
    drop_and_recover_tokens,
)
from ..net.emulator import (
    BandwidthTrace,
    BernoulliLoss,
    LossModel,
    PathConfig,
    expected_loss_rate,
)
from ..net.control import (
    controller_from_spec,
    controller_to_spec,
    preset_controller_spec,
)
from ..net.fec import FecConfig
from ..net.jitter_buffer import JitterBuffer, PassthroughBuffer, frames_in_capture_order
from ..net.transport import (
    FixedBitrateWorkload,
    TransportConfig,
    VideoTransportSession,
    drive_closed_loop,
    run_fixed_bitrate_session,
)
from ..video.codec import BlockCodec
from ..video.frames import VideoFrame
from ..video.quality import region_quality
from ..video.scene import Scene, make_park_scene, make_sports_scene
from .latency import BudgetScenario, budget_for_scenario, default_budget_scenarios, headline_subtraction
from .registry import experiment


# ---------------------------------------------------------------------------
# Figure 2 — sender vs MLLM-perceived throughput (redundancy)
# ---------------------------------------------------------------------------


@experiment(
    "figure2_redundancy",
    description="Sender vs MLLM-perceived throughput (capture redundancy)",
    default_scenario={"loss_model": {"kind": "bernoulli", "loss_rate": 0.0}},
)
def run_figure2_redundancy(
    capture_fps: float = 60.0,
    duration_s: float = 2.0,
    height: int = 360,
    width: int = 640,
    seed: int = 0,
    loss_model: Optional[LossModel] = None,
) -> dict[str, float]:
    """How much of the captured stream the MLLM actually perceives.

    With a ``loss_model``, captured frames are dropped on the (emulated)
    uplink before the receiver-side sampler sees them, so bursty links show
    up as reduced perceived throughput rather than a fixed redundancy ratio.
    """
    scene = make_sports_scene(seed, height=height, width=width)
    scene.fps = capture_fps
    scene.duration_s = duration_s
    source = scene.to_source()
    frames = [source.frame_at(index) for index in range(source.frame_count())]
    captured_count = len(frames)
    sampler = ReceiverSampler(SamplerConfig())
    if loss_model is not None:
        model = copy.deepcopy(loss_model)
        rng = np.random.default_rng(seed)
        frames = [frame for frame in frames if not model.should_drop(rng)]
        if not frames:
            # A dead link delivers nothing: report it as such instead of
            # silently falling back to the lossless stream.
            return {
                "capture_fps": capture_fps,
                "mllm_fps": sampler.config.max_fps,
                "sender_throughput_bps": 0.0,
                "perceived_throughput_bps": 0.0,
                "frame_redundancy": 0.0,
                "pixel_redundancy": 0.0,
                "delivered_frame_fraction": 0.0,
            }
    _, report = sampler.prepare(frames)
    return {
        "capture_fps": capture_fps,
        "mllm_fps": sampler.config.max_fps,
        "sender_throughput_bps": sender_throughput_bps(report, duration_s),
        "perceived_throughput_bps": perceived_throughput_bps(report, duration_s),
        "frame_redundancy": report.frame_redundancy,
        "pixel_redundancy": report.pixel_redundancy,
        "delivered_frame_fraction": len(frames) / max(captured_count, 1),
    }


# ---------------------------------------------------------------------------
# Figure 3 — transmission latency vs bitrate and loss
# ---------------------------------------------------------------------------


@dataclass
class Figure3Row:
    """One point of the Figure 3 latency surface."""

    bitrate_bps: float
    loss_rate: float
    mean_latency_ms: float
    p95_latency_ms: float
    delivery_ratio: float


@experiment(
    "figure3_latency",
    description="Frame transmission latency vs bitrate and loss",
    default_scenario={"loss_model": {"kind": "bernoulli", "loss_rate": 0.01}},
)
def run_figure3_latency(
    bitrates_bps: Sequence[float] = (200_000, 1_000_000, 4_000_000, 8_000_000, 12_000_000),
    loss_rates: Sequence[float] = (0.0, 0.01, 0.05),
    duration_s: float = 20.0,
    fps: float = 30.0,
    bandwidth_bps: float = 10_000_000.0,
    one_way_delay_s: float = 0.030,
    seed: int = 1,
    loss_model: Optional[LossModel] = None,
    bandwidth_trace: Optional[BandwidthTrace] = None,
) -> list[Figure3Row]:
    """Measured frame transmission latency over the emulated 10 Mbps / 30 ms path.

    A ``loss_model`` replaces the Bernoulli sweep over ``loss_rates`` (rows
    are labelled with the model's long-run loss rate); a ``bandwidth_trace``
    makes the bottleneck time-varying.
    """
    if loss_model is not None:
        loss_rates = (expected_loss_rate(loss_model),)
    rows: list[Figure3Row] = []
    for loss in loss_rates:
        for bitrate in bitrates_bps:
            # Stateful models (Gilbert-Elliott) are copied so each session
            # starts from the same chain state.
            model = copy.deepcopy(loss_model) if loss_model is not None else BernoulliLoss(loss)
            stats = run_fixed_bitrate_session(
                bitrate_bps=bitrate,
                duration_s=duration_s,
                fps=fps,
                uplink_config=PathConfig(
                    bandwidth_bps=bandwidth_bps,
                    propagation_delay_s=one_way_delay_s,
                    loss_model=model,
                    bandwidth_trace=bandwidth_trace,
                    seed=seed,
                ),
            )
            summary = stats.summary()
            rows.append(
                Figure3Row(
                    bitrate_bps=float(bitrate),
                    loss_rate=float(loss),
                    mean_latency_ms=summary.mean_ms,
                    p95_latency_ms=summary.p95_ms,
                    delivery_ratio=summary.delivery_ratio,
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 4 — context dependence of quality sensitivity
# ---------------------------------------------------------------------------


@experiment("figure4_context_dependence", description="Coarse vs detail question survival across bitrates")
def run_figure4_context_dependence(
    high_bitrate_bps: float = 4_000_000.0,
    low_bitrate_bps: float = 200_000.0,
    rate_fps: float = 2.0,
    seed: int = 0,
    height: int = 360,
    width: int = 640,
) -> dict[str, dict[str, bool]]:
    """Coarse question survives 200 Kbps; detail question does not (Figure 4)."""
    scene = make_sports_scene(seed, height=height, width=width)
    frame = scene.to_source().frame_at(0)
    baseline = UniformStreamer()
    mllm = SimulatedMLLM(seed=seed)
    coarse_fact = next(fact for fact in scene.facts if fact.key == "action")
    detail_fact = next(fact for fact in scene.facts if fact.key == "logo")

    results: dict[str, dict[str, bool]] = {}
    for label, bitrate in (("high_bitrate", high_bitrate_bps), ("low_bitrate", low_bitrate_bps)):
        outcome = baseline.encode_frame(frame, target_bitrate_bps=bitrate, fps=rate_fps)
        decoded = [VideoFrame(frame.frame_id, frame.timestamp, outcome.decoded)]
        originals = [frame]
        results[label] = {
            "coarse_question_correct": mllm.answer_question(
                coarse_fact, scene, decoded * 2, originals * 2, apply_frame_sampling=False
            ).correct,
            "detail_question_correct": mllm.answer_question(
                detail_fact, scene, decoded, originals, apply_frame_sampling=False
            ).correct,
        }
    return results


# ---------------------------------------------------------------------------
# Figure 5 — CLIP correlation maps point at chat-relevant regions
# ---------------------------------------------------------------------------


@dataclass
class Figure5Case:
    """One dialogue of Figure 5: the query and per-region correlations."""

    question: str
    target_object: str
    target_correlation: float
    best_other_correlation: float
    region_correlations: dict[str, float]

    @property
    def target_is_most_relevant(self) -> bool:
        return self.target_correlation >= self.best_other_correlation


@experiment("figure5_correlation_maps", description="CLIP correlation maps point at chat-relevant regions")
def run_figure5_correlation_maps(seed: int = 0, height: int = 360, width: int = 640) -> list[Figure5Case]:
    """The three Figure 5 style dialogues, including the indirect season→grass case."""
    clip = MobileClip()
    cases: list[tuple[Scene, str, str]] = []
    park = make_park_scene(seed, height=height, width=width)
    sports = make_sports_scene(seed, height=height, width=width)
    cases.append((park, "Is the dog in the video erect-eared or floppy-eared?", "dog_head"))
    cases.append((sports, "Could you tell me the present score of the game?", "scoreboard"))
    cases.append((park, "Infer what season it might be in the video", "grass"))

    results = []
    for scene, question, target in cases:
        frame = scene.render(0)
        correlation = clip.correlation_map(scene, question, frame_pixels=frame, original_pixels=frame)
        region_correlations = {}
        for obj in scene.objects:
            region = obj.pixel_region(scene.height, scene.width)
            region_correlations[obj.name] = correlation.region_mean(region)
        target_corr = region_correlations[target]
        other = max(value for name, value in region_correlations.items() if name != target)
        results.append(
            Figure5Case(
                question=question,
                target_object=target,
                target_correlation=target_corr,
                best_other_correlation=other,
                region_correlations=region_correlations,
            )
        )
    return results


# ---------------------------------------------------------------------------
# Section 2.3 text — only ~8 % of coarse QA break at 200 Kbps
# ---------------------------------------------------------------------------


@experiment("section23_coarse_qa", description="Fraction of coarse QA broken at 200 Kbps")
def run_section23_coarse_qa(video_count: int = 6, seed: int = 0) -> dict[str, float]:
    collection = VideoCollection.synthetic(video_count=video_count, seed=seed)
    return coarse_qa_breakage_rate(collection)


# ---------------------------------------------------------------------------
# Table 1 / Figure 6 / Figure 8 — the DeViBench pipeline
# ---------------------------------------------------------------------------


@experiment("table1_pipeline", description="DeViBench construction pipeline report")
def run_table1_pipeline(video_count: int = 8, seed: int = 0) -> PipelineReport:
    return build_benchmark(video_count=video_count, seed=seed)


# ---------------------------------------------------------------------------
# Figure 9 — accuracy vs bitrate, baseline vs context-aware
# ---------------------------------------------------------------------------


@dataclass
class Figure9Point:
    method: str
    target_bitrate_bps: float
    achieved_bitrate_bps: float
    accuracy: float


@experiment(
    "figure9_accuracy",
    description="MLLM accuracy vs bitrate, baseline vs context-aware",
    default_scenario={"loss_model": {"kind": "bernoulli", "loss_rate": 0.0}},
)
def run_figure9_accuracy(
    benchmark: Optional[DeViBench] = None,
    bitrates_bps: Sequence[float] = (850_000.0, 430_000.0, 200_000.0),
    mode: str = MODE_MULTIPLE_CHOICE,
    video_count: int = 8,
    seed: int = 0,
    max_samples: Optional[int] = None,
    loss_model: Optional[LossModel] = None,
    bandwidth_trace: Optional[BandwidthTrace] = None,
) -> list[Figure9Point]:
    """Accuracy/bitrate points for the uniform baseline and context-aware streaming.

    Scenario hooks: a ``loss_model`` scales each target bitrate by the link's
    long-run delivery ratio (lost bytes contribute no decodable quality) and
    a ``bandwidth_trace`` caps the target at the trace's mean rate, so bursty
    and time-varying links shift every operating point into scarcer regimes.
    """
    if benchmark is None:
        benchmark = build_benchmark(video_count=video_count, seed=seed).benchmark
    evaluator = BenchmarkEvaluator(benchmark, mode=mode)
    delivery_ratio = 1.0
    if loss_model is not None:
        delivery_ratio = max(0.0, 1.0 - expected_loss_rate(loss_model))
    rate_cap = float("inf")
    if bandwidth_trace is not None:
        rate_cap = bandwidth_trace.mean_rate_bps
    points: list[Figure9Point] = []
    for context_aware in (False, True):
        for bitrate in bitrates_bps:
            effective = max(1_000.0, min(float(bitrate), rate_cap) * delivery_ratio)
            result = evaluator.evaluate(effective, context_aware=context_aware, max_samples=max_samples)
            points.append(
                Figure9Point(
                    method="context-aware" if context_aware else "baseline",
                    target_bitrate_bps=float(bitrate),
                    achieved_bitrate_bps=result.mean_achieved_bitrate_bps,
                    accuracy=result.accuracy,
                )
            )
    return points


# ---------------------------------------------------------------------------
# Figure 10 — bit allocation at matched bitrate
# ---------------------------------------------------------------------------


@experiment("figure10_qp_allocation", description="Per-region bit allocation at matched bitrate")
def run_figure10_qp_allocation(
    target_bitrate_bps: float = 430_000.0,
    rate_fps: float = 2.0,
    seed: int = 2,
    height: int = 360,
    width: int = 640,
) -> dict[str, dict[str, float]]:
    """Per-region bits and quality for matched-bitrate baseline vs context-aware encodes."""
    scene = make_sports_scene(seed, height=height, width=width)
    frame = scene.to_source().frame_at(0)
    fact = next(f for f in scene.facts if f.key == "score")
    streamer = ContextAwareStreamer()
    baseline = UniformStreamer()

    ours = streamer.encode_frame(
        scene, frame, fact.question, target_bitrate_bps=target_bitrate_bps, fps=rate_fps
    )
    base = baseline.encode_frame(frame, target_bitrate_bps=target_bitrate_bps, fps=rate_fps)

    important_region = scene.object_by_name(fact.object_name).pixel_region(height, width)
    irrelevant_region = scene.object_by_name("court").pixel_region(height, width)

    def describe(outcome) -> dict[str, float]:
        return {
            "bitrate_bps": outcome.encoded.bitrate_bps(rate_fps),
            "important_region_bits": outcome.encoded.bits_in_region(*important_region),
            "irrelevant_region_bits": outcome.encoded.bits_in_region(*irrelevant_region),
            "important_region_quality": region_quality(
                frame.pixels, outcome.decoded, important_region
            ).readable_score,
            "irrelevant_region_quality": region_quality(
                frame.pixels, outcome.decoded, irrelevant_region
            ).readable_score,
            **{f"qp_{k}": v for k, v in qp_map_statistics(outcome.qp_map).items()},
        }

    return {"baseline": describe(base), "context_aware": describe(ours)}


# ---------------------------------------------------------------------------
# Section 2.1 — the four differences between AI video chat and traditional RTC
# ---------------------------------------------------------------------------


@experiment("section21_jitter_invariance", description="Jitter buffer latency vs MLLM input invariance")
def run_section21_jitter_invariance(seed: int = 0, frame_count: int = 30) -> dict[str, float]:
    """Jitter changes human-buffer latency but not the MLLM's input order."""
    rng = np.random.default_rng(seed)
    captures = [index / 30.0 for index in range(frame_count)]
    smooth_arrivals = [capture + 0.035 for capture in captures]
    jittered_arrivals = [capture + 0.035 + float(rng.uniform(0, 0.08)) for capture in captures]

    human_buffer = JitterBuffer()
    ai_buffer = PassthroughBuffer()
    smooth_passthrough = PassthroughBuffer()
    for index, capture in enumerate(captures):
        human_buffer.push(index, capture, jittered_arrivals[index])
        ai_buffer.push(index, capture, jittered_arrivals[index])
        smooth_passthrough.push(index, capture, smooth_arrivals[index])
    human_buffer.pop_ready(now=1e9)

    jittered_order = [f.frame_id for f in frames_in_capture_order(ai_buffer.released)]
    smooth_order = [f.frame_id for f in frames_in_capture_order(smooth_passthrough.released)]
    return {
        "jitter_buffer_added_latency_ms": human_buffer.added_latency() * 1000.0,
        "passthrough_added_latency_ms": ai_buffer.added_latency() * 1000.0,
        "mllm_input_identical": float(jittered_order == smooth_order),
    }


@experiment("section21_throughput_asymmetry", description="Uplink/downlink throughput asymmetry")
def run_section21_throughput_asymmetry(seed: int = 0) -> dict[str, float]:
    """Receiver (MLLM) throughput ≪ sender throughput; downlink ≪ uplink."""
    redundancy = run_figure2_redundancy(seed=seed)
    reply_tokens = 40
    bits_per_token = 16 * 8  # a text/audio token is a few bytes
    downlink_bps = reply_tokens * bits_per_token / 1.0
    return {
        "sender_throughput_bps": redundancy["sender_throughput_bps"],
        "receiver_perceived_bps": redundancy["perceived_throughput_bps"],
        "downlink_reply_bps": downlink_bps,
        "uplink_to_downlink_ratio": redundancy["sender_throughput_bps"] / downlink_bps,
    }


# ---------------------------------------------------------------------------
# Section 1 — the response-latency budget
# ---------------------------------------------------------------------------


@experiment("section1_latency_budget", description="Response-latency budget breakdown")
def run_section1_latency_budget() -> dict[str, dict[str, float]]:
    results = {"headline": headline_subtraction()}
    for scenario in default_budget_scenarios():
        results[scenario.name] = budget_for_scenario(scenario).breakdown()
    return results


# ---------------------------------------------------------------------------
# Section 4 ablations and feasibility analyses
# ---------------------------------------------------------------------------


@experiment("ablation_gamma", description="Regional quality as the temperature gamma varies")
def run_ablation_gamma(
    gammas: Sequence[float] = (1.0, 3.0, 6.0),
    target_bitrate_bps: float = 300_000.0,
    seed: int = 3,
    height: int = 360,
    width: int = 640,
) -> dict[float, float]:
    """Accuracy-relevant regional quality as the temperature γ varies."""
    scene = make_sports_scene(seed, height=height, width=width)
    frame = scene.to_source().frame_at(0)
    fact = next(f for f in scene.facts if f.key == "score")
    region = scene.object_by_name(fact.object_name).pixel_region(height, width)
    results = {}
    for gamma in gammas:
        streamer = ContextAwareStreamer(StreamingConfig(gamma=gamma))
        outcome = streamer.encode_frame(
            scene, frame, fact.question, target_bitrate_bps=target_bitrate_bps, fps=2.0
        )
        results[float(gamma)] = region_quality(frame.pixels, outcome.decoded, region).readable_score
    return results


@experiment("ablation_patch_size", description="Client CLIP compute cost vs patch size")
def run_ablation_patch_size(
    patch_sizes: Sequence[int] = (16, 32, 64),
    seed: int = 3,
    height: int = 360,
    width: int = 640,
) -> dict[int, float]:
    """Client-side CLIP compute cost versus patch size (Section 4 discussion)."""
    scene = make_park_scene(seed, height=height, width=width)
    frame = scene.render(0)
    results = {}
    for patch in patch_sizes:
        streamer = ContextAwareStreamer(StreamingConfig(patch_size=patch))
        correlation = streamer.correlation_for(scene, "Is the dog erect-eared?", frame)
        results[int(patch)] = correlation.compute_latency_ms
    return results


@experiment("ablation_proactive", description="Proactive vs reactive importance maps")
def run_ablation_proactive(seed: int = 4, height: int = 360, width: int = 640) -> dict[str, float]:
    """Proactive importance maps versus the reactive (user-word) map."""
    scene = make_park_scene(seed, height=height, width=width)
    frame = scene.to_source().frame_at(0)
    fact = next(f for f in scene.facts if f.key == "ear_type")
    region = scene.object_by_name(fact.object_name).pixel_region(height, width)

    streamer = ContextAwareStreamer()
    reactive = streamer.correlation_for(scene, fact.question, frame)
    saliency = SaliencyProactivePolicy(patch_size=streamer.config.patch_size).importance_map(frame)
    hybrid_policy = HybridProactivePolicy(patch_size=streamer.config.patch_size)
    hybrid_policy.observe(reactive)
    hybrid = hybrid_policy.importance_map(frame)

    def rank_of_region(correlation) -> float:
        return correlation.region_mean(region) - float(np.median(correlation.values))

    return {
        "reactive_margin": rank_of_region(reactive),
        "saliency_margin": rank_of_region(saliency),
        "hybrid_margin": rank_of_region(hybrid),
    }


@experiment("ablation_token_pruning", description="Latency saving and retention under token pruning")
def run_ablation_token_pruning(
    keep_ratios: Sequence[float] = (1.0, 0.5, 0.3, 0.1),
    seed: int = 5,
    height: int = 360,
    width: int = 640,
) -> dict[float, dict[str, float]]:
    """Latency saving and important-region retention under token pruning."""
    scene = make_sports_scene(seed, height=height, width=width)
    frame = scene.to_source().frame_at(0)
    fact = next(f for f in scene.facts if f.key == "score")
    region = scene.object_by_name(fact.object_name).pixel_region(height, width)
    streamer = ContextAwareStreamer()
    correlation = streamer.correlation_for(scene, fact.question, frame)

    results = {}
    for ratio in keep_ratios:
        pruner = ContextAwareTokenPruner(PruningConfig(keep_ratio=ratio))
        pruning = pruner.prune(frame, correlation)
        results[float(ratio)] = {
            "kept_ratio": pruning.kept_ratio,
            "latency_saving_ms": pruning.latency_saving_ms,
            "important_region_kept": pruning.region_kept_fraction(
                region, pruner.config.token_patch_size
            ),
        }
    return results


@experiment("ablation_semantic_layers", description="Base-layer-only vs full reconstruction")
def run_ablation_semantic_layers(seed: int = 6, height: int = 360, width: int = 640) -> dict[str, float]:
    """Base-layer-only versus full reconstruction quality and bitrate split."""
    scene = make_sports_scene(seed, height=height, width=width)
    frame = scene.to_source().frame_at(0)
    fact = next(f for f in scene.facts if f.key == "score")
    region = scene.object_by_name(fact.object_name).pixel_region(height, width)
    streamer = ContextAwareStreamer()
    correlation = streamer.correlation_for(scene, fact.question, frame)

    encoder = SemanticLayeredEncoder()
    layered = encoder.encode(frame.pixels, correlation)
    base_only = encoder.reconstruct(layered, received_layers=[0])
    everything = encoder.reconstruct(layered, received_layers=list(range(len(layered.layers))))
    bitrates = encoder.layer_bitrates_bps(layered, fps=2.0)
    return {
        "base_layer_bps": bitrates["base"],
        "total_bps": sum(bitrates.values()),
        "base_only_important_quality": region_quality(frame.pixels, base_only, region).readable_score,
        "full_important_quality": region_quality(frame.pixels, everything, region).readable_score,
        "base_fraction_of_total": bitrates["base"] / max(sum(bitrates.values()), 1e-9),
    }


@experiment("token_streaming_feasibility", description="Token bitrates and loss resilience")
def run_token_streaming_feasibility(
    loss_fractions: Sequence[float] = (0.0, 0.5, 0.828),
    seed: int = 7,
    height: int = 360,
    width: int = 640,
) -> dict[str, object]:
    """Section 4 feasibility: token bitrates and loss resilience of discrete tokens."""
    scene = make_sports_scene(seed, height=height, width=width)
    frame = scene.render(0)
    fact = next(f for f in scene.facts if f.key == "action")
    coarse_region = scene.object_by_name(fact.object_name).pixel_region(height, width)

    config = TokenizerConfig()
    bitrates = compare_token_stream_bitrates(frame, fps=2.0, config=config)
    tokenizer = DiscreteTokenizer(config)
    tokenized = tokenizer.tokenize(frame)

    recovery_quality = {}
    for loss in loss_fractions:
        result = drop_and_recover_tokens(tokenized, loss, seed=seed)
        recovered = tokenizer.reconstruct(
            type(tokenized)(
                tokens=result.recovered_tokens,
                grid_shape=tokenized.grid_shape,
                frame_shape=tokenized.frame_shape,
                discrete=True,
                total_bits=tokenized.total_bits,
            )
        )
        trimmed = frame[: recovered.shape[0], : recovered.shape[1]]
        coarse = (
            min(coarse_region[1], recovered.shape[0]),
            min(coarse_region[3], recovered.shape[1]),
        )
        region = (coarse_region[0], coarse[0], coarse_region[2], coarse[1])
        recovery_quality[float(loss)] = region_quality(trimmed, recovered, region).readable_score
    return {"bitrates": bitrates, "recovery_quality": recovery_quality}


# ---------------------------------------------------------------------------
# Closed-loop sessions — receiver reports driving congestion control + ABR
# ---------------------------------------------------------------------------


@experiment(
    "closed_loop_session",
    description="Feedback-driven session: receiver reports, congestion control, ABR, FEC",
    default_scenario={
        "loss_model": {"kind": "bernoulli", "loss_rate": 0.01},
        "controller": {
            "kind": "closed_loop",
            "estimator": {"kind": "gcc"},
            "abr": {"kind": "throughput"},
        },
    },
)
def run_closed_loop_session(
    controller: Optional[dict] = None,
    duration_s: float = 10.0,
    fps: float = 30.0,
    bandwidth_bps: float = 10_000_000.0,
    one_way_delay_s: float = 0.030,
    report_interval_s: float = 0.2,
    initial_bitrate_bps: float = 1_000_000.0,
    fec_group_size: int = 0,
    seed: int = 1,
    loss_model: Optional[LossModel] = None,
    bandwidth_trace: Optional[BandwidthTrace] = None,
) -> dict[str, object]:
    """One feedback-driven transport session over the emulated path.

    ``controller`` is a JSON-able spec (see
    :func:`repro.net.control.controller_from_spec`) so sweep cells carrying
    it stay content-hash cacheable; it defaults to the GCC × throughput-ABR
    composition.  ``fec_group_size`` > 0 enables FEC, whose redundancy the
    controller may then retune per report.  The ``action_digest`` field
    fingerprints the full ``(time, target, fec_overhead)`` action sequence —
    two runs (or the two delivery modes) agree on it iff the controller
    behaved bit-identically.
    """
    spec = controller if controller is not None else preset_controller_spec("gcc")
    sender_controller = controller_from_spec(spec)
    model = copy.deepcopy(loss_model) if loss_model is not None else BernoulliLoss(0.01)
    session = VideoTransportSession(
        uplink_config=PathConfig(
            bandwidth_bps=bandwidth_bps,
            propagation_delay_s=one_way_delay_s,
            loss_model=model,
            bandwidth_trace=bandwidth_trace,
            seed=seed,
        ),
        transport_config=TransportConfig(
            report_interval_s=report_interval_s,
            fec=FecConfig(group_size=fec_group_size) if fec_group_size else None,
        ),
        controller=sender_controller,
    )
    drive_closed_loop(
        session, FixedBitrateWorkload(bitrate_bps=initial_bitrate_bps, fps=fps), duration_s
    )
    summary = session.stats.summary()
    actions = [
        [time, action.target_bitrate_bps, action.fec_overhead_ratio]
        for time, action in session.control_log
    ]
    targets = [row[1] for row in actions]
    delivered_bits = 8.0 * sum(event.size_bytes for event in session.receiver.delivered_frames)
    return {
        "controller": controller_to_spec(sender_controller),
        "frames_sent": summary.count,
        "frames_delivered": summary.delivered,
        "delivery_ratio": summary.delivery_ratio,
        "mean_latency_ms": summary.mean_ms,
        "p95_latency_ms": summary.p95_ms,
        "mean_retransmissions": summary.mean_retransmissions,
        "reports_received": session.reports_received,
        "actions_applied": len(actions),
        "mean_target_bitrate_bps": float(np.mean(targets)) if targets else float(initial_bitrate_bps),
        "final_target_bitrate_bps": float(targets[-1]) if targets else float(initial_bitrate_bps),
        "offered_rate_bps": 8.0 * session.sender.bytes_sent / duration_s,
        "delivered_rate_bps": delivered_bits / duration_s,
        "action_digest": hashlib.sha256(json.dumps(actions).encode()).hexdigest(),
    }


#: Controller presets spanning the closed-loop study: GCC vs AIMD estimators
#: crossed with throughput / buffer / AI-oriented ABR, plus the open-loop
#: fixed-bitrate baseline.
CLOSED_LOOP_CONTROLLERS: tuple[str, ...] = (
    "gcc",
    "aimd",
    "fixed",
    "gcc-buffer",
    "aimd-buffer",
    "gcc-ai",
    "aimd-ai",
)


def closed_loop_grid(
    seed: int = 0,
    families: Optional[Sequence[str]] = None,
    controllers: Sequence[str] = CLOSED_LOOP_CONTROLLERS,
    seeds: Sequence[int] = (0, 1),
    duration_s: float = 8.0,
):
    """The GCC-vs-AIMD-vs-fixed × ABR closed-loop grid over the corpus.

    Every scenario of the nine-family corpus (or a ``families`` subset) is
    crossed with each named controller preset; the controller spec rides in
    ``Scenario.overrides`` so it reaches the runner as a plain keyword
    argument and is covered by the content-hash cell cache key.  Results
    aggregate through the existing report tables like any other sweep.
    """
    from ..net.traces import corpus
    from .sweeps import Scenario, SweepGrid

    scenarios = []
    for scenario in corpus(seed=seed, families=families):
        for name in controllers:
            scenarios.append(
                Scenario(
                    name=f"{scenario.name}+{name}",
                    loss_model=scenario.loss_model,
                    bandwidth_trace=scenario.bandwidth_trace,
                    overrides={
                        **scenario.overrides,
                        "controller": preset_controller_spec(name),
                        "duration_s": duration_s,
                    },
                )
            )
    return SweepGrid(
        experiments=("closed_loop_session",),
        scenarios=tuple(scenarios),
        seeds=tuple(seeds),
    )


# ---------------------------------------------------------------------------
# End-to-end dialogue turns (Figure 1 narrative / Section 2.1 uplink argument)
# ---------------------------------------------------------------------------


@experiment("end_to_end_turn", description="One full dialogue turn with latency budget", default_scenario={"loss_model": {"kind": "bernoulli", "loss_rate": 0.02}})
def run_end_to_end_turn(
    context_aware: bool = True,
    target_bitrate_bps: float = 400_000.0,
    loss_rate: float = 0.02,
    use_jitter_buffer: bool = False,
    seed: int = 0,
    height: int = 240,
    width: int = 432,
    loss_model: Optional[LossModel] = None,
    bandwidth_trace: Optional[BandwidthTrace] = None,
) -> dict[str, float]:
    """One full client→cloud dialogue turn with the measured latency budget.

    ``loss_model`` overrides the Bernoulli ``loss_rate`` shorthand and
    ``bandwidth_trace`` makes the uplink time-varying.
    """
    scene = make_sports_scene(seed, height=height, width=width)
    fact = next(f for f in scene.facts if f.key == "score")
    model = copy.deepcopy(loss_model) if loss_model is not None else BernoulliLoss(loss_rate)
    session = AIVideoChatSession(
        scene,
        session_config=ChatSessionConfig(
            target_bitrate_bps=target_bitrate_bps,
            context_aware=context_aware,
            use_jitter_buffer=use_jitter_buffer,
        ),
        uplink_config=PathConfig(loss_model=model, bandwidth_trace=bandwidth_trace, seed=seed),
    )
    result = session.run_turn(fact)
    breakdown = result.latency_budget.breakdown()
    return {
        "correct": float(result.correct),
        "achieved_bitrate_bps": result.achieved_bitrate_bps,
        "response_latency_ms": result.response_latency_ms,
        "transmission_ms": breakdown["transmission_ms"],
        "inference_ms": breakdown["inference_ms"],
        "jitter_buffer_ms": breakdown["jitter_buffer_ms"],
        "meets_300ms_target": float(result.meets_300ms_target),
    }
