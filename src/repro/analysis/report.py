"""Sweep reporting: persisted cells -> cross-scenario comparison tables.

The sweep engine (:mod:`repro.analysis.sweeps`) persists one JSON record per
(experiment × scenario × seed) cell but nothing reads those records back.
This module closes the loop: it loads a results directory (or an in-memory
:class:`~repro.analysis.sweeps.SweepReport`), aggregates each (experiment,
scenario) group **across seeds** — mean, sample std, and a Student-t 95%
confidence interval for every numeric field, recursively through nested
result structures — and renders cross-scenario comparison tables as plain
text and Markdown plus a machine-readable ``report.json``.

Run it directly over any results directory::

    PYTHONPATH=src python -m repro.analysis results/

or ask ``examples/sweep_scenarios.py`` for ``--report`` to aggregate the
sweep it just ran.
"""

from __future__ import annotations

import argparse
import json
import math
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional, Sequence, TYPE_CHECKING

from ..obs import FAULT_AXES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .sweeps import SweepReport

__all__ = [
    "FailedCell",
    "MetricAggregate",
    "ScenarioAggregate",
    "ExperimentDigest",
    "SweepDigest",
    "flatten_numeric",
    "load_records",
    "build_digest",
    "digest_results_dir",
    "digest_sweep_report",
    "write_report",
    "main",
]

#: Two-sided 95% Student-t critical values by degrees of freedom.  Seeds per
#: cell group are small (2-8), where the normal 1.96 badly understates the
#: interval; beyond the table the normal approximation is within ~4%.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    25: 2.060, 30: 2.042,
}


def t_critical_95(df: int) -> float:
    """Two-sided 95% Student-t critical value for ``df`` degrees of freedom."""
    if df <= 0:
        return float("nan")
    if df > 30:
        return 1.960
    if df in _T95:
        return _T95[df]
    # Between tabulated points the next-smaller df's value is an upper
    # bound: intervals round conservatively wide.
    return _T95[max(entry for entry in _T95 if entry < df)]


# ---------------------------------------------------------------------------
# Flattening nested results into (dotted-path -> float) metrics
# ---------------------------------------------------------------------------


def flatten_numeric(value: Any, prefix: str = "") -> dict[str, float]:
    """Every numeric leaf of a nested dict/list structure, by dotted path.

    Dict keys join with ``.``; list/tuple elements index as ``[i]``.  Bools
    are skipped (they are categorical, not measurements); ints and floats —
    including non-finite floats, which propagate as ``nan`` — are kept.
    """
    flat: dict[str, float] = {}
    if isinstance(value, Mapping):
        for key, item in value.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten_numeric(item, path))
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            flat.update(flatten_numeric(item, f"{prefix}[{index}]"))
    elif isinstance(value, bool):
        pass
    elif isinstance(value, (int, float)):
        flat[prefix or "value"] = float(value)
    return flat


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MetricAggregate:
    """Across-seed statistics of one numeric metric in one (experiment, scenario)."""

    metric: str
    count: int
    mean: float
    std: float
    ci95: float
    minimum: float
    maximum: float

    @classmethod
    def from_values(cls, metric: str, values: Sequence[float]) -> "MetricAggregate":
        n = len(values)
        mean = math.fsum(values) / n
        if n > 1:
            variance = math.fsum((v - mean) ** 2 for v in values) / (n - 1)
            std = math.sqrt(variance)
            ci95 = t_critical_95(n - 1) * std / math.sqrt(n)
        else:
            std = 0.0
            ci95 = 0.0
        return cls(
            metric=metric,
            count=n,
            mean=mean,
            std=std,
            ci95=ci95,
            minimum=min(values),
            maximum=max(values),
        )

    def format(self) -> str:
        """Human-readable ``mean ± ci95`` cell."""
        if self.count > 1:
            return f"{self.mean:.4g} ± {self.ci95:.3g}"
        return f"{self.mean:.4g}"

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "ci95": self.ci95,
            "min": self.minimum,
            "max": self.maximum,
        }


@dataclass
class ScenarioAggregate:
    """One scenario's across-seed aggregates within one experiment."""

    scenario: str
    seeds: tuple[int, ...]
    metrics: dict[str, MetricAggregate]

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "seeds": list(self.seeds),
            "metrics": {name: agg.to_jsonable() for name, agg in self.metrics.items()},
        }


@dataclass
class ExperimentDigest:
    """All scenarios of one experiment, side by side."""

    experiment: str
    scenarios: list[ScenarioAggregate]

    @property
    def metric_names(self) -> list[str]:
        """Union of metric paths, in first-appearance order across scenarios."""
        names: dict[str, None] = {}
        for scenario in self.scenarios:
            for name in scenario.metrics:
                names.setdefault(name)
        return list(names)

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "experiment": self.experiment,
            "scenarios": [scenario.to_jsonable() for scenario in self.scenarios],
        }


@dataclass(frozen=True)
class FailedCell:
    """One cell that produced an error record instead of a result.

    ``worker`` is the distributed worker the failure is attributed to
    (currently set by the coordinator on ``WorkerLost`` records); local
    failures carry ``None``.  Only *error* records ever name a worker —
    successful records stay worker-agnostic so a distributed sweep remains
    byte-identical to a local one.
    """

    experiment: str
    scenario: str
    seed: int
    error_type: str
    message: str
    worker: Optional[str] = None

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "FailedCell":
        error = record.get("error") or {}
        worker = error.get("worker")
        return cls(
            experiment=str(record["experiment"]),
            scenario=str(record["scenario"]["name"]),
            seed=int(record["seed"]),
            error_type=str(error.get("type", "Error")),
            message=str(error.get("message", "")),
            worker=str(worker) if worker is not None else None,
        )

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "experiment": self.experiment,
            "scenario": self.scenario,
            "seed": self.seed,
            "error_type": self.error_type,
            "message": self.message,
            "worker": self.worker,
        }

    def describe(self) -> str:
        message = self.message if len(self.message) <= 120 else self.message[:117] + "..."
        suffix = f" [worker {self.worker}]" if self.worker else ""
        return (
            f"{self.experiment} / {self.scenario} / seed {self.seed}: "
            f"{self.error_type}: {message}{suffix}"
        )


#: (key in :meth:`SweepDigest.failure_hotspots`, human-readable axis title).
#: One vocabulary with the live telemetry: these are
#: :data:`repro.obs.metrics.FAULT_AXES`, so the post-hoc hotspot tables and
#: the coordinator's streamed ``fault_classes`` rank the same dimensions
#: under the same names.
_HOTSPOT_AXES = FAULT_AXES


@dataclass
class SweepDigest:
    """The aggregated form of a whole results directory / sweep run.

    ``failed_cells`` lists cells whose record carries an error instead of a
    result; they are *flagged*, never aggregated — averaging a traceback
    into a latency table would silently corrupt every statistic sharing its
    group.
    """

    experiments: list[ExperimentDigest]
    cell_count: int
    failed_cells: list[FailedCell] = field(default_factory=list)

    @property
    def group_count(self) -> int:
        return sum(len(digest.scenarios) for digest in self.experiments)

    def failure_hotspots(self) -> dict[str, list[tuple[str, int]]]:
        """Where the failures concentrate, along three operational axes.

        Returns ``{"error_type": [...], "cell": [...], "worker": [...]}``,
        each a list of ``(label, count)`` sorted by descending count (ties
        by label) — the O&M-style localization view: is a fault class, a
        particular (experiment, scenario) group, or one worker eating the
        sweep?  Cells without worker attribution (local failures) count
        under the ``"(local)"`` worker label.
        """
        by_error: Counter[str] = Counter()
        by_cell: Counter[str] = Counter()
        by_worker: Counter[str] = Counter()
        for failed in self.failed_cells:
            by_error[failed.error_type] += 1
            by_cell[f"{failed.experiment} / {failed.scenario}"] += 1
            by_worker[failed.worker or "(local)"] += 1

        def ranked(counter: Counter) -> list[tuple[str, int]]:
            return sorted(counter.items(), key=lambda item: (-item[1], item[0]))

        return {
            "error_type": ranked(by_error),
            "cell": ranked(by_cell),
            "worker": ranked(by_worker),
        }

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "cells": self.cell_count,
            "groups": self.group_count,
            "failed": len(self.failed_cells),
            "failed_cells": [cell.to_jsonable() for cell in self.failed_cells],
            "failure_hotspots": {
                axis: [{"label": label, "count": count} for label, count in ranking]
                for axis, ranking in self.failure_hotspots().items()
            },
            "experiments": [digest.to_jsonable() for digest in self.experiments],
        }

    # -- rendering ---------------------------------------------------------

    def render_markdown(self) -> str:
        """Cross-scenario comparison tables, one per experiment (GFM)."""

        def cell(text: str) -> str:
            # Scenario names and result-dict keys are unconstrained input; a
            # literal "|" would add a phantom column and shear the table.
            return text.replace("|", "\\|")

        lines = ["# Sweep report", ""]
        lines.append(
            f"{self.cell_count} cells aggregated into {self.group_count} "
            "(experiment, scenario) groups; cells are mean ± 95% CI "
            "(Student-t) across seeds."
        )
        for digest in self.experiments:
            lines += ["", f"## {cell(digest.experiment)}", ""]
            header = ["metric"] + [
                cell(f"{s.scenario} (n={len(s.seeds)})") for s in digest.scenarios
            ]
            lines.append("| " + " | ".join(header) + " |")
            lines.append("| " + " | ".join(["---"] * len(header)) + " |")
            for metric in digest.metric_names:
                row = [f"`{cell(metric)}`"]
                for scenario in digest.scenarios:
                    agg = scenario.metrics.get(metric)
                    row.append(agg.format() if agg is not None else "—")
                lines.append("| " + " | ".join(row) + " |")
        if self.failed_cells:
            lines += ["", "## ⚠ Failed cells", ""]
            lines.append(
                f"{len(self.failed_cells)} cell(s) produced an error record and are "
                "excluded from every aggregate above:"
            )
            lines.append("")
            for failed in self.failed_cells:
                lines.append(f"- {cell(failed.describe())}")
            hotspots = self.failure_hotspots()
            lines += ["", "### Failure hotspots", ""]
            lines.append("| axis | hotspot | failures |")
            lines.append("| --- | --- | --- |")
            for axis, title in _HOTSPOT_AXES:
                for label, count in hotspots[axis]:
                    lines.append(f"| {title} | {cell(label)} | {count} |")
        lines.append("")
        return "\n".join(lines)

    def render_text(self) -> str:
        """The same comparison as fixed-width terminal tables."""
        blocks: list[str] = [
            f"sweep report — {self.cell_count} cells, {self.group_count} groups "
            "(mean ± 95% CI across seeds)"
        ]
        for digest in self.experiments:
            header = ["metric"] + [
                f"{s.scenario} (n={len(s.seeds)})" for s in digest.scenarios
            ]
            rows = [header]
            for metric in digest.metric_names:
                row = [metric]
                for scenario in digest.scenarios:
                    agg = scenario.metrics.get(metric)
                    row.append(agg.format() if agg is not None else "-")
                rows.append(row)
            widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
            formatted = [
                "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
                for row in rows
            ]
            formatted.insert(1, "  ".join("-" * width for width in widths))
            blocks.append(f"\n{digest.experiment}\n" + "\n".join(formatted))
        if self.failed_cells:
            listing = "\n".join(f"  ! {failed.describe()}" for failed in self.failed_cells)
            blocks.append(
                f"\nFAILED CELLS ({len(self.failed_cells)}; excluded from all "
                f"aggregates):\n{listing}"
            )
            hotspots = self.failure_hotspots()
            rows = [
                f"  {title}: " + ", ".join(f"{label} ({count})" for label, count in hotspots[axis])
                for axis, title in _HOTSPOT_AXES
                if hotspots[axis]
            ]
            blocks.append("failure hotspots:\n" + "\n".join(rows))
        return "\n".join(blocks)


# ---------------------------------------------------------------------------
# Loading and grouping records
# ---------------------------------------------------------------------------


def _record_key(record: Mapping[str, Any]) -> tuple[str, str, int]:
    return (
        str(record["experiment"]),
        str(record["scenario"]["name"]),
        int(record["seed"]),
    )


def load_records(results_dir: str | Path) -> list[dict]:
    """Load every persisted cell record under ``results_dir``.

    Cells live at ``<results_dir>/<experiment>/<slug>-seed<k>-<hash>.json``.
    Files that are not valid cell records (corrupt JSON, the report files
    this module writes, stray artifacts) are skipped.  When several files
    describe the same (experiment, scenario, seed) — stale cells from
    before a code edit changed the cache hash — the newest file wins.
    """
    results_dir = Path(results_dir)
    candidates: list[tuple[float, dict]] = []
    for path in sorted(results_dir.glob("*/*.json")):
        try:
            with path.open("r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(record, dict):
            continue
        if not {"experiment", "scenario", "seed", "result"} <= record.keys():
            continue
        if not isinstance(record["scenario"], dict) or "name" not in record["scenario"]:
            continue
        candidates.append((path.stat().st_mtime, record))
    newest: dict[tuple[str, str, int], tuple[float, dict]] = {}
    for mtime, record in candidates:
        key = _record_key(record)
        if key not in newest or mtime >= newest[key][0]:
            newest[key] = (mtime, record)
    return [record for _, (_, record) in sorted(newest.items())]


def build_digest(records: Iterable[Mapping[str, Any]]) -> SweepDigest:
    """Aggregate cell records into a :class:`SweepDigest`.

    Records group by (experiment, scenario name); within each group every
    numeric leaf of ``result`` aggregates across the group's seeds.  A
    metric missing from some seeds (heterogeneous results) aggregates over
    the seeds that do report it.  Error records (cells whose runner raised,
    or whose distributed worker was lost for good) are split out into
    ``failed_cells`` and never aggregated.
    """
    groups: dict[str, dict[str, list[Mapping[str, Any]]]] = {}
    failed: list[FailedCell] = []
    for record in records:
        if record.get("error") is not None:
            failed.append(FailedCell.from_record(record))
            continue
        experiment = str(record["experiment"])
        scenario = str(record["scenario"]["name"])
        groups.setdefault(experiment, {}).setdefault(scenario, []).append(record)

    experiments: list[ExperimentDigest] = []
    cell_count = 0
    for experiment in sorted(groups):
        scenarios: list[ScenarioAggregate] = []
        for scenario in sorted(groups[experiment]):
            group = groups[experiment][scenario]
            cell_count += len(group)
            values: dict[str, list[float]] = {}
            for record in group:
                for metric, value in flatten_numeric(record["result"]).items():
                    values.setdefault(metric, []).append(value)
            metrics = {
                metric: MetricAggregate.from_values(metric, series)
                for metric, series in values.items()
            }
            seeds = tuple(sorted(int(record["seed"]) for record in group))
            scenarios.append(
                ScenarioAggregate(scenario=scenario, seeds=seeds, metrics=metrics)
            )
        experiments.append(ExperimentDigest(experiment=experiment, scenarios=scenarios))
    failed.sort(key=lambda cell: (cell.experiment, cell.scenario, cell.seed))
    return SweepDigest(
        experiments=experiments,
        cell_count=cell_count + len(failed),
        failed_cells=failed,
    )


def digest_results_dir(results_dir: str | Path) -> SweepDigest:
    """Load + aggregate everything persisted under ``results_dir``."""
    return build_digest(load_records(results_dir))


def digest_sweep_report(report: "SweepReport") -> SweepDigest:
    """Aggregate an in-memory sweep run without touching the filesystem.

    Cached and fresh cells look identical (both carry the JSON-able result),
    so this digests exactly the grid that ran — nothing more, even when the
    results directory holds older sweeps.
    """
    records = [
        {
            "experiment": cell.experiment,
            "scenario": cell.scenario.to_jsonable(),
            "seed": cell.seed,
            "result": cell.result,
            "error": cell.error,
        }
        for cell in report.cells
    ]
    return build_digest(records)


def write_report(digest: SweepDigest, out_dir: str | Path) -> dict[str, Path]:
    """Write ``report.json`` and ``report.md`` under ``out_dir``.

    Returns the written paths.  ``report.json`` is the machine-readable
    aggregate (``digest.to_jsonable()``); ``report.md`` is the Markdown
    comparison table, paste-ready for an experiments writeup.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    json_path = out_dir / "report.json"
    md_path = out_dir / "report.md"
    with json_path.open("w", encoding="utf-8") as handle:
        json.dump(digest.to_jsonable(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    md_path.write_text(digest.render_markdown(), encoding="utf-8")
    return {"json": json_path, "markdown": md_path}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Aggregate persisted sweep cells into a cross-scenario report."
    )
    parser.add_argument("results_dir", help="results directory written by SweepRunner")
    parser.add_argument(
        "--out",
        default=None,
        help="directory for report.json / report.md (default: the results directory)",
    )
    args = parser.parse_args(argv)

    digest = digest_results_dir(args.results_dir)
    if digest.cell_count == 0:
        print(f"no sweep cells found under {args.results_dir}")
        return 1
    print(digest.render_text())
    paths = write_report(digest, args.out or args.results_dir)
    print(f"\nwrote {paths['markdown']} and {paths['json']}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    raise SystemExit(main())
