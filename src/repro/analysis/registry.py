"""Experiment registry: one named entry per paper table / figure runner.

Historically every consumer (benchmarks, examples, ad-hoc scripts) imported
the ``run_*`` functions from :mod:`repro.analysis.experiments` directly.
The registry gives them a single name→callable API instead, which is what
lets the scenario sweep engine (:mod:`repro.analysis.sweeps`) fan any
experiment out across a process pool: workers receive only the experiment
*name* plus a JSON scenario and rebuild everything locally.

Runners register themselves with the :func:`experiment` decorator.  A spec
records the callable, a short description, and the default scenario the
experiment was originally reported at, so sweeps can diff a cell's scenario
against the paper's operating point.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment runner.

    ``default_scenario`` documents the operating point the paper reports
    (loss model spec, seed, ...); it is informational and merged under any
    sweep-provided scenario.  ``accepted_kwargs`` is derived from the
    runner's signature and used to filter scenario-derived kwargs so that a
    scenario carrying e.g. a bandwidth trace can still drive an experiment
    that has no use for one.
    """

    name: str
    fn: Callable[..., Any]
    description: str = ""
    default_scenario: dict = field(default_factory=dict)
    accepted_kwargs: frozenset[str] = frozenset()

    def supported(self, kwargs: dict[str, Any]) -> dict[str, Any]:
        """The subset of ``kwargs`` this runner's signature accepts."""
        return {k: v for k, v in kwargs.items() if k in self.accepted_kwargs}

    def run(self, **kwargs: Any) -> Any:
        return self.fn(**self.supported(kwargs))


_REGISTRY: dict[str, ExperimentSpec] = {}


def experiment(
    name: str,
    description: str = "",
    default_scenario: Optional[dict] = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator registering a runner under ``name``.

    The wrapped function is returned unchanged, so direct imports keep
    working exactly as before the registry existed.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        if name in _REGISTRY:
            raise ValueError(f"experiment {name!r} registered twice")
        params = inspect.signature(fn).parameters
        accepted = frozenset(
            p.name
            for p in params.values()
            if p.kind in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)
        )
        doc_lines = (fn.__doc__ or "").strip().splitlines()
        _REGISTRY[name] = ExperimentSpec(
            name=name,
            fn=fn,
            description=description or (doc_lines[0] if doc_lines else ""),
            default_scenario=dict(default_scenario or {}),
            accepted_kwargs=accepted,
        )
        return fn

    return decorate


def get_experiment(name: str) -> ExperimentSpec:
    """Look up a registered experiment; raises ``KeyError`` with suggestions."""
    _ensure_registered()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {name!r}; registered: {known}") from None


def list_experiments() -> list[str]:
    _ensure_registered()
    return sorted(_REGISTRY)


def run_experiment(name: str, **kwargs: Any) -> Any:
    """Run a registered experiment with signature-filtered kwargs."""
    return get_experiment(name).run(**kwargs)


def _ensure_registered() -> None:
    """Import the runner module so its decorators have executed.

    Worker processes import this module fresh; touching
    ``repro.analysis.experiments`` populates the registry as a side effect.
    """
    from . import experiments  # noqa: F401
