"""``python -m repro.analysis <results_dir>`` — the sweep report CLI.

Thin delegation to :func:`repro.analysis.report.main`; a dedicated entry
module keeps ``-m`` execution from re-importing ``report`` under two names.
"""

from .report import main

if __name__ == "__main__":
    raise SystemExit(main())
