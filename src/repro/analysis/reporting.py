"""Text rendering of experiment results.

The benchmarks print these tables so that a run of ``pytest benchmarks/``
produces the same rows and series the paper reports, ready to paste into
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .experiments import Figure3Row, Figure5Case, Figure9Point


def format_figure3(rows: Sequence[Figure3Row]) -> str:
    """Figure 3 as a text table: latency vs bitrate for each loss rate."""
    lines = [f"{'loss':>6} {'bitrate (Mbps)':>15} {'mean (ms)':>11} {'p95 (ms)':>10} {'delivered':>10}"]
    for row in sorted(rows, key=lambda r: (r.loss_rate, r.bitrate_bps)):
        lines.append(
            f"{row.loss_rate:>6.2f} {row.bitrate_bps / 1e6:>15.2f} {row.mean_latency_ms:>11.1f} "
            f"{row.p95_latency_ms:>10.1f} {row.delivery_ratio:>10.2f}"
        )
    return "\n".join(lines)


def format_figure5(cases: Sequence[Figure5Case]) -> str:
    """Figure 5 as text: the most-correlated region per dialogue."""
    lines = []
    for case in cases:
        ranked = sorted(case.region_correlations.items(), key=lambda kv: kv[1], reverse=True)
        top = ", ".join(f"{name}={value:+.2f}" for name, value in ranked[:3])
        marker = "✓" if case.target_is_most_relevant else "✗"
        lines.append(f"[{marker}] {case.question!r} → expected {case.target_object}; top: {top}")
    return "\n".join(lines)


def format_figure9(points: Sequence[Figure9Point]) -> str:
    """Figure 9 as text: accuracy/bitrate pairs per method."""
    lines = [f"{'method':>15} {'target (kbps)':>14} {'achieved (kbps)':>16} {'accuracy':>9}"]
    for point in sorted(points, key=lambda p: (p.method, -p.target_bitrate_bps)):
        lines.append(
            f"{point.method:>15} {point.target_bitrate_bps / 1000:>14.0f} "
            f"{point.achieved_bitrate_bps / 1000:>16.0f} {point.accuracy:>9.2f}"
        )
    return "\n".join(lines)


def format_mapping(title: str, mapping: Mapping[str, object], indent: int = 2) -> str:
    """Generic key/value rendering used by the smaller experiments."""
    pad = " " * indent
    lines = [title]
    for key, value in mapping.items():
        if isinstance(value, Mapping):
            lines.append(f"{pad}{key}:")
            for inner_key, inner_value in value.items():
                lines.append(f"{pad}{pad}{inner_key}: {_fmt(inner_value)}")
        else:
            lines.append(f"{pad}{key}: {_fmt(value)}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
