"""Multi-scenario sweep engine over the experiment registry.

The paper's evaluation (like most) reports each figure at a single operating
point — one loss process, one seed.  The sweep engine turns every registered
experiment into a grid job: (experiment × scenario × seed) cells are fanned
out through a pluggable :class:`CellBackend` — a local ``multiprocessing``
pool by default, or :class:`repro.distrib.DistributedBackend` to serve cells
to worker agents on other machines — each cell gets a deterministic seed
derived from its coordinates, results are persisted as JSON under a results
directory, and a content-hash cache makes re-running an unchanged
(runner, scenario, seed) cell free.

A :class:`Scenario` describes the network conditions as plain JSON-able
specs (loss model kind + parameters, optional bandwidth trace, plus
arbitrary runner keyword overrides); workers rebuild the live
:class:`~repro.net.emulator.LossModel` / ``BandwidthTrace`` objects locally
via the factories in :mod:`repro.net.emulator`.  Runners that do not accept
a given scenario ingredient simply don't receive it (the registry filters
kwargs against each runner's signature).
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import json
import multiprocessing
import os
import re
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Optional, Sequence

import numpy as np

from ..core import wallclock
from ..net.emulator import bandwidth_trace_from_spec, loss_model_from_spec
from ..obs import NULL_TELEMETRY, Telemetry
from .registry import ExperimentSpec, get_experiment

DEFAULT_RESULTS_DIR = "results"


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One operating point of the grid, described entirely by plain data.

    ``loss_model`` / ``bandwidth_trace`` are spec dicts (see
    :func:`repro.net.emulator.loss_model_from_spec`); ``overrides`` are extra
    keyword arguments forwarded to the runner (resolution, duration, ...).
    """

    name: str
    loss_model: Optional[dict] = None
    bandwidth_trace: Optional[dict] = None
    overrides: dict = field(default_factory=dict)

    def to_jsonable(self) -> dict:
        return {
            "name": self.name,
            "loss_model": self.loss_model,
            "bandwidth_trace": self.bandwidth_trace,
            "overrides": dict(self.overrides),
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "Scenario":
        return cls(
            name=data["name"],
            loss_model=data.get("loss_model"),
            bandwidth_trace=data.get("bandwidth_trace"),
            overrides=dict(data.get("overrides") or {}),
        )

    def runner_kwargs(self, seed: int) -> dict[str, Any]:
        """Live objects + overrides a runner may accept for this scenario."""
        kwargs: dict[str, Any] = dict(self.overrides)
        if self.loss_model is not None:
            kwargs["loss_model"] = loss_model_from_spec(self.loss_model)
        if self.bandwidth_trace is not None:
            kwargs["bandwidth_trace"] = bandwidth_trace_from_spec(self.bandwidth_trace)
        # A seed pinned explicitly in the overrides wins over the derived
        # per-cell seed (so a scenario can reproduce one specific run).
        kwargs.setdefault("seed", seed)
        return kwargs


def bernoulli_scenario(loss_rate: float, name: Optional[str] = None, **overrides: Any) -> Scenario:
    """I.i.d. loss at ``loss_rate``."""
    return Scenario(
        name=name or f"bernoulli-{loss_rate:g}",
        loss_model={"kind": "bernoulli", "loss_rate": loss_rate},
        overrides=overrides,
    )


def gilbert_elliott_scenario(
    p_good_to_bad: float = 0.01,
    p_bad_to_good: float = 0.3,
    loss_in_bad: float = 0.5,
    loss_in_good: float = 0.0,
    name: Optional[str] = None,
    **overrides: Any,
) -> Scenario:
    """Bursty two-state loss (the Gilbert-Elliott chain of the emulator)."""
    return Scenario(
        name=name or f"gilbert-elliott-{p_good_to_bad:g}-{loss_in_bad:g}",
        loss_model={
            "kind": "gilbert_elliott",
            "p_good_to_bad": p_good_to_bad,
            "p_bad_to_good": p_bad_to_good,
            "loss_in_bad": loss_in_bad,
            "loss_in_good": loss_in_good,
        },
        overrides=overrides,
    )


def trace_scenario(
    times: Sequence[float],
    rates_bps: Sequence[float],
    loss_rate: float = 0.0,
    name: Optional[str] = None,
    **overrides: Any,
) -> Scenario:
    """A time-varying link following a piecewise-constant bandwidth trace."""
    return Scenario(
        name=name or f"trace-{len(times)}steps",
        loss_model={"kind": "bernoulli", "loss_rate": loss_rate},
        bandwidth_trace={"times": list(times), "rates_bps": list(rates_bps)},
        overrides=overrides,
    )


def default_scenarios() -> list[Scenario]:
    """A small representative grid: i.i.d., bursty, and time-varying links."""
    return [
        bernoulli_scenario(0.02),
        gilbert_elliott_scenario(p_good_to_bad=0.02, p_bad_to_good=0.25, loss_in_bad=0.5),
        trace_scenario(
            times=[0.0, 5.0, 10.0, 15.0],
            rates_bps=[10e6, 2e6, 6e6, 10e6],
            loss_rate=0.01,
            name="trace-droop",
        ),
    ]


def corpus_scenarios(
    seed: int = 0,
    families: Optional[Sequence[str]] = None,
    **overrides: Any,
) -> list[Scenario]:
    """The named scenario corpus from :mod:`repro.net.traces`.

    ``families=None`` takes every registered family (LTE drive traces, Wi-Fi
    step drops, congestion sawtooths, Gilbert-Elliott grids, loss ladders,
    handover outages, contention links, steady baselines, degrading ramps);
    ``overrides`` merge into every scenario so one call can scale the corpus
    to smoke-test cost.  Deterministic under ``seed``.
    """
    from ..net.traces import corpus

    return corpus(seed=seed, families=families, overrides=overrides or None)


# ---------------------------------------------------------------------------
# Grid and cells
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepGrid:
    """The cross product (experiments × scenarios × seeds)."""

    experiments: tuple[str, ...]
    scenarios: tuple[Scenario, ...]
    seeds: tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        if not self.experiments or not self.scenarios or not self.seeds:
            raise ValueError("grid must have at least one experiment, scenario and seed")

    @property
    def cell_count(self) -> int:
        return len(self.experiments) * len(self.scenarios) * len(self.seeds)

    def cells(self) -> Iterable[tuple[str, Scenario, int]]:
        for experiment in self.experiments:
            for scenario in self.scenarios:
                for seed in self.seeds:
                    yield experiment, scenario, seed


def derive_cell_seed(experiment: str, scenario_name: str, seed: int) -> int:
    """Deterministic per-cell seed, stable across runs and processes."""
    digest = hashlib.sha256(f"{experiment}|{scenario_name}|{seed}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


_SLUG_UNSAFE = re.compile(r"[^A-Za-z0-9._-]+")


def scenario_slug(name: str) -> str:
    """Filesystem-safe form of a scenario name for result file paths.

    ``Scenario.name`` is unconstrained user input; anything outside
    ``[A-Za-z0-9._-]`` (path separators especially) is collapsed to ``-``,
    leading/trailing dots and dashes are stripped so names like ``"../x"``
    cannot write outside the results directory, and the result is truncated
    to stay within filesystem name limits.  Names that slug identically stay
    distinct on disk through the cache-key suffix, which hashes the real name.
    """
    slug = _SLUG_UNSAFE.sub("-", name).strip(".-")[:100]
    return slug or "scenario"


def _package_source_files() -> list[Path]:
    package_root = Path(__file__).resolve().parent.parent
    return sorted(package_root.rglob("*.py"))


def _compute_package_fingerprint() -> str:
    """Content hash of the entire ``repro`` source tree.

    A runner's result depends on far more than its own source — the
    transport, emulator, codec and every other module it calls — so the
    cache key folds in a fingerprint of the whole package: editing shared
    simulator code invalidates cached cells instead of silently serving
    stale results.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in _package_source_files():
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


#: Env var overriding where the fingerprint memo lives (useful for tests and
#: read-only home directories).  An empty value disables the memo.
FINGERPRINT_MEMO_ENV = "REPRO_FINGERPRINT_CACHE"


def _fingerprint_memo_path() -> Optional[Path]:
    configured = os.environ.get(FINGERPRINT_MEMO_ENV)
    if configured is not None:
        return Path(configured) if configured else None
    # One memo per checkout: distinct working copies share ~/.cache, and a
    # single file keyed only by relative paths would make them overwrite
    # each other's memo on every alternating run.
    package_root = str(Path(__file__).resolve().parent.parent)
    root_tag = hashlib.sha256(package_root.encode()).hexdigest()[:12]
    return Path.home() / ".cache" / "repro" / f"fingerprint-{root_tag}.json"


def _tree_state_key() -> str:
    """Cheap stat-based key over the source tree: (path, mtime_ns, size).

    Reading metadata for ~100 files is orders of magnitude cheaper than
    hashing their contents; if no file was touched since the memo was
    written, the memoised content fingerprint is still valid.
    """
    digest = hashlib.sha256()
    package_root = Path(__file__).resolve().parent.parent
    for path in _package_source_files():
        stat = path.stat()
        digest.update(
            f"{path.relative_to(package_root)}|{stat.st_mtime_ns}|{stat.st_size}\0".encode()
        )
    return digest.hexdigest()


_package_fingerprint_cache: Optional[str] = None


def _package_fingerprint() -> str:
    """The tree fingerprint, computed on first use and frozen thereafter.

    Lazy, so merely importing the package does not pay for hashing the
    tree; frozen, so every sweep of a long-lived process keys its results
    to one snapshot rather than re-reading files a stale loaded module no
    longer matches.  (An edit landing between import and the first sweep
    of a process can still skew the snapshot — restart the process after
    editing source, as with any Python code change.)

    Across processes an mtime-keyed on-disk memo avoids re-hashing the
    whole tree: when no source file's (mtime, size) changed since the memo
    was written, the stored content fingerprint is reused.
    """
    global _package_fingerprint_cache
    if _package_fingerprint_cache is None:
        _package_fingerprint_cache = _load_or_compute_fingerprint()
    return _package_fingerprint_cache


def _set_package_fingerprint(value: Optional[str]) -> None:
    """Pin the in-process fingerprint (pool initializer / tests)."""
    global _package_fingerprint_cache
    _package_fingerprint_cache = value


def _load_or_compute_fingerprint() -> str:
    memo_path = _fingerprint_memo_path()
    state: Optional[str] = None
    if memo_path is not None:
        try:
            state = _tree_state_key()
            memo = json.loads(memo_path.read_text(encoding="utf-8"))
            if memo.get("state") == state and isinstance(memo.get("fingerprint"), str):
                return memo["fingerprint"]
        except (OSError, ValueError):
            pass
    fingerprint = _compute_package_fingerprint()
    if memo_path is not None and state is not None:
        try:
            memo_path.parent.mkdir(parents=True, exist_ok=True)
            tmp = memo_path.with_suffix(".json.tmp")
            tmp.write_text(
                json.dumps({"state": state, "fingerprint": fingerprint}), encoding="utf-8"
            )
            tmp.replace(memo_path)
        except OSError:
            pass  # memo is an optimisation; never fail a sweep over it
    return fingerprint


def cell_cache_key(spec: ExperimentSpec, scenario: Scenario, seed: int) -> str:
    """Content hash of (runner source, package source tree, scenario, seed).

    Editing the runner, any module of the ``repro`` package, the scenario,
    or the seed invalidates the cell; an unchanged cell re-loads its
    persisted JSON instead of re-running.
    """
    try:
        source = inspect.getsource(spec.fn)
    except (OSError, TypeError):  # builtins / interactively-defined runners
        source = f"{spec.fn.__module__}.{spec.fn.__qualname__}"
    payload = json.dumps(
        {
            "experiment": spec.name,
            "source": source,
            "package": _package_fingerprint(),
            "scenario": scenario.to_jsonable(),
            "seed": seed,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class SweepCell:
    """Outcome of one (experiment, scenario, seed) cell.

    ``result`` is always the JSON-able form (dataclasses flattened, numpy
    unwrapped) so that fresh and cache-loaded cells look identical.  A cell
    whose runner raised (or whose distributed worker was lost for good)
    carries the failure under ``error`` (``{"type", "message", "traceback"}``)
    with ``result=None``.
    """

    experiment: str
    scenario: Scenario
    seed: int
    cell_seed: int
    result: Any
    from_cache: bool
    elapsed_s: float
    path: Path
    cache_key: str
    error: Optional[dict] = None

    @property
    def failed(self) -> bool:
        return self.error is not None


@dataclass
class SweepReport:
    """Everything one :meth:`SweepRunner.run` produced."""

    cells: list[SweepCell]
    elapsed_s: float

    @property
    def executed(self) -> int:
        return sum(1 for cell in self.cells if not cell.from_cache)

    @property
    def cached(self) -> int:
        return sum(1 for cell in self.cells if cell.from_cache)

    @property
    def failed_cells(self) -> list[SweepCell]:
        """Cells that produced an error record instead of a result."""
        return [cell for cell in self.cells if cell.failed]

    def for_experiment(self, experiment: str) -> list[SweepCell]:
        return [cell for cell in self.cells if cell.experiment == experiment]

    def summary(self) -> dict[str, Any]:
        return {
            "cells": len(self.cells),
            "executed": self.executed,
            "cached": self.cached,
            "failed": len(self.failed_cells),
            "elapsed_s": self.elapsed_s,
            "experiments": sorted({cell.experiment for cell in self.cells}),
            "scenarios": sorted({cell.scenario.name for cell in self.cells}),
        }


# ---------------------------------------------------------------------------
# JSON conversion
# ---------------------------------------------------------------------------


def to_jsonable(value: Any) -> Any:
    """Recursively convert runner results to JSON-compatible structures.

    Handles dataclasses, numpy scalars/arrays, tuples, and dict keys that are
    not strings (several runners key results by float bitrate or ratio).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: to_jsonable(getattr(value, f.name)) for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


# ---------------------------------------------------------------------------
# Worker (must be importable at module top level for multiprocessing)
# ---------------------------------------------------------------------------


def _execute_cell(payload: dict) -> dict:
    """Run one cell inside a worker process and return a JSON-able record."""
    spec = get_experiment(payload["experiment"])
    scenario = Scenario.from_jsonable(payload["scenario"])
    started = wallclock.perf_counter()
    result = spec.run(**scenario.runner_kwargs(payload["cell_seed"]))
    return {
        "experiment": payload["experiment"],
        "scenario": payload["scenario"],
        "seed": payload["seed"],
        "cell_seed": payload["cell_seed"],
        "cache_key": payload["cache_key"],
        "elapsed_s": wallclock.perf_counter() - started,
        "result": to_jsonable(result),
    }


def error_record(payload: dict, error: dict, elapsed_s: float = 0.0) -> dict:
    """A cell record describing a failure instead of a result.

    Shares the persisted-record shape with :func:`_execute_cell` so failed
    cells flow through the same persistence/reporting pipeline; the cache
    loader refuses them, so a re-run retries the cell instead of serving the
    failure from disk.
    """
    return {
        "experiment": payload["experiment"],
        "scenario": payload["scenario"],
        "seed": payload["seed"],
        "cell_seed": payload["cell_seed"],
        "cache_key": payload["cache_key"],
        "elapsed_s": elapsed_s,
        "result": None,
        "error": dict(error),
    }


def execute_cell_record(payload: dict) -> dict:
    """Fault-isolating cell executor: a raising runner yields an error record.

    One crashing cell must not take down the whole pool (or a remote
    worker): the exception is captured as ``{"type", "message",
    "traceback"}`` and the sweep carries on; completed cells persist as
    usual and the failure surfaces through ``SweepReport.failed_cells`` and
    the report tooling.
    """
    started = wallclock.perf_counter()
    try:
        return _execute_cell(payload)
    except Exception as exc:  # noqa: BLE001 - the whole point is isolation
        return error_record(
            payload,
            {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            },
            elapsed_s=wallclock.perf_counter() - started,
        )


def _execute_cell_indexed(item: tuple[int, dict]) -> tuple[int, dict]:
    """imap_unordered wrapper: carry the grid position alongside the record."""
    position, payload = item
    return position, execute_cell_record(payload)


def _worker_init(fingerprint: Optional[str]) -> None:
    """Pool initializer: inherit the parent's package fingerprint.

    Workers never need to re-derive cache keys for the payloads they are
    handed, but anything in a runner that touches the fingerprint (or a
    nested sweep) would otherwise re-hash the whole source tree once per
    worker process; shipping the parent's value makes it free.
    """
    _set_package_fingerprint(fingerprint)


# ---------------------------------------------------------------------------
# Execution backends
# ---------------------------------------------------------------------------


class CellBackend:
    """Pluggable execution engine for sweep cells.

    A backend receives the *non-cached* cells of a grid as ``(position,
    payload)`` pairs (cached cells are resolved by :class:`SweepRunner`
    before any backend sees them — they are never dispatched) and yields
    ``(position, record)`` pairs as cells finish, in any order.  Records are
    the JSON-able shape produced by :func:`execute_cell_record`: either a
    result record or an error record for a cell that could not run.
    """

    def execute(self, items: list[tuple[int, dict]]) -> Iterable[tuple[int, dict]]:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources.

        :meth:`SweepRunner.run` calls this when the run ends *for any
        reason* — including an exception before ``execute`` was ever
        consumed.  Stateful backends (the distributed coordinator binds a
        port and may hold connected workers from construction time) must
        make this idempotent; the default is a no-op.
        """

    def describe(self) -> str:
        return type(self).__name__


class LocalPoolBackend(CellBackend):
    """Today's execution path: a local ``multiprocessing`` pool.

    ``processes=None`` sizes the pool to ``min(cells, cpu_count)``;
    ``processes<=1`` runs cells inline (useful under pytest and for
    debugging).  Cells are submitted through ``imap_unordered`` with a
    chunk size sized to roughly four chunks per worker: large enough to
    amortise task dispatch, small enough to keep the pool balanced when
    cell runtimes differ.  The pool initializer ships the parent's package
    fingerprint so no worker re-hashes the source tree.
    """

    def __init__(self, processes: Optional[int] = None) -> None:
        self.processes = processes

    def describe(self) -> str:
        return f"local pool (processes={self.processes or 'auto'})"

    def execute(self, items: list[tuple[int, dict]]) -> Iterable[tuple[int, dict]]:
        if not items:
            return
        processes = self.processes
        if processes is None:
            processes = min(len(items), os.cpu_count() or 1)
        if processes <= 1 or len(items) == 1:
            for item in items:
                yield _execute_cell_indexed(item)
            return
        chunksize = max(1, len(items) // (processes * 4))
        fingerprint = _package_fingerprint()
        with multiprocessing.Pool(
            processes=processes, initializer=_worker_init, initargs=(fingerprint,)
        ) as pool:
            yield from pool.imap_unordered(_execute_cell_indexed, items, chunksize=chunksize)


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


class SweepRunner:
    """Executes a :class:`SweepGrid` through a :class:`CellBackend` with caching.

    The default backend is a :class:`LocalPoolBackend` over ``processes``
    workers; pass ``backend=`` (for example
    :class:`repro.distrib.DistributedBackend`, which serves cells to worker
    agents on other machines) to execute cells elsewhere.  Each cell's JSON
    lands at ``<results_dir>/<experiment>/<scenario-slug>-seed<k>-<hash12>.json``
    regardless of where it ran.

    The cache key covers the runner's source, a fingerprint of the whole
    ``repro`` package, the scenario, and the seed, so editing shared
    simulator code (transport, emulator, codec, ...) invalidates cached
    cells automatically.  Pass ``use_cache=False`` (or delete the results
    directory) to force fresh runs regardless; results are still persisted
    either way.  Error records (failed cells) are persisted but never
    cache-loaded, so re-running a sweep retries its failures.
    """

    def __init__(
        self,
        results_dir: str | Path = DEFAULT_RESULTS_DIR,
        processes: Optional[int] = None,
        use_cache: bool = True,
        backend: Optional[CellBackend] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.results_dir = Path(results_dir)
        self.processes = processes
        self.use_cache = use_cache
        self.backend = backend
        # Runner-side telemetry only: cell spans and counters are recorded
        # here, never written into the persisted cell records, which must
        # stay byte-identical across local/distributed/chaos runs.
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY

    # -- cache ----------------------------------------------------------------

    def cell_path(self, experiment: str, scenario: Scenario, seed: int, key: str) -> Path:
        slug = scenario_slug(scenario.name)
        return self.results_dir / experiment / f"{slug}-seed{seed}-{key[:12]}.json"

    def _load_cached(self, path: Path, key: str) -> Optional[dict]:
        if not self.use_cache or not path.exists():
            return None
        try:
            with path.open("r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if record.get("cache_key") != key:
            return None
        if record.get("error") is not None:
            # A persisted failure documents what happened, but is never
            # served from cache: re-running the sweep retries the cell.
            return None
        return record

    # -- execution ------------------------------------------------------------

    def run(self, grid: SweepGrid) -> SweepReport:
        try:
            return self._run(grid)
        finally:
            if self.backend is not None:
                # Whatever happened above — even an exception while
                # resolving the cache, before the backend saw a single
                # cell — the backend must get its shutdown call (a
                # distributed coordinator may already hold connected
                # workers that would otherwise poll a zombie forever).
                self.backend.close()

    def _run(self, grid: SweepGrid) -> SweepReport:
        started = wallclock.perf_counter()
        trace = self.telemetry.trace
        metrics = self.telemetry.metrics
        cached_cells = metrics.counter("sweep.cells.cached")
        executed_cells = metrics.counter("sweep.cells.executed")
        failed_cells = metrics.counter("sweep.cells.failed")
        run_span = trace.start(
            "sweep.run", started, clock="wall", cells=grid.cell_count
        )
        try:
            cells, pending = self._resolve_cache(grid, cached_cells, trace)

            paths = {position: path for position, _, path in pending}
            # Everything after this instant is dispatch + queue + execute:
            # a cell's queue wait is the gap between this mark and the start
            # of its (worker-measured) execution interval.
            dispatch_started = wallclock.perf_counter()
            for position, record in self._execute_stream(
                [(position, payload) for position, payload, _ in pending]
            ):
                # Each cell's JSON is streamed to disk as soon as its record
                # arrives, so a long sweep's finished cells survive interruption
                # instead of being persisted only after every cell completes.
                path = paths[position]
                self._persist(path, record)
                scenario = Scenario.from_jsonable(record["scenario"])
                failed = record.get("error") is not None
                (failed_cells if failed else executed_cells).inc()
                if trace.enabled:
                    arrival = wallclock.perf_counter()
                    execute_s = float(record["elapsed_s"])
                    trace.record(
                        "sweep.cell",
                        max(dispatch_started, arrival - execute_s),
                        arrival,
                        clock="wall",
                        experiment=record["experiment"],
                        scenario=scenario.name,
                        seed=record["seed"],
                        disposition="failed" if failed else "executed",
                        queue_wait_s=max(0.0, arrival - dispatch_started - execute_s),
                        execute_s=execute_s,
                        worker=(record.get("error") or {}).get("worker"),
                    )
                cells[position] = SweepCell(
                    experiment=record["experiment"],
                    scenario=scenario,
                    seed=record["seed"],
                    cell_seed=record["cell_seed"],
                    result=record["result"],
                    from_cache=False,
                    elapsed_s=record["elapsed_s"],
                    path=path,
                    cache_key=record["cache_key"],
                    error=record.get("error"),
                )
        finally:
            trace.finish(run_span, wallclock.perf_counter())

        ordered = [cells[position] for position in sorted(cells)]
        return SweepReport(cells=ordered, elapsed_s=wallclock.perf_counter() - started)

    def _resolve_cache(
        self, grid: SweepGrid, cached_cells, trace
    ) -> tuple[dict[int, SweepCell], list[tuple[int, dict, Path]]]:
        """Split the grid into cache-resolved cells and pending payloads."""
        cells: dict[int, SweepCell] = {}
        pending: list[tuple[int, dict, Path]] = []
        for position, (experiment, scenario, seed) in enumerate(grid.cells()):
            spec = get_experiment(experiment)
            key = cell_cache_key(spec, scenario, seed)
            path = self.cell_path(experiment, scenario, seed, key)
            cached = self._load_cached(path, key)
            if cached is not None:
                cached_cells.inc()
                if trace.enabled:
                    resolved = wallclock.perf_counter()
                    trace.record(
                        "sweep.cell",
                        resolved,
                        resolved,
                        clock="wall",
                        experiment=experiment,
                        scenario=scenario.name,
                        seed=seed,
                        disposition="cached",
                        queue_wait_s=0.0,
                        execute_s=0.0,
                        worker=None,
                    )
                cells[position] = SweepCell(
                    experiment=experiment,
                    scenario=scenario,
                    seed=seed,
                    cell_seed=cached["cell_seed"],
                    result=cached["result"],
                    from_cache=True,
                    elapsed_s=0.0,
                    path=path,
                    cache_key=key,
                )
                continue
            payload = {
                "experiment": experiment,
                "scenario": scenario.to_jsonable(),
                "seed": seed,
                "cell_seed": derive_cell_seed(experiment, scenario.name, seed),
                "cache_key": key,
            }
            pending.append((position, payload, path))
        return cells, pending

    def _execute_stream(
        self, items: list[tuple[int, dict]]
    ) -> Iterable[tuple[int, dict]]:
        """Yield (position, record) pairs as cells finish (order not guaranteed).

        Delegates to the configured :class:`CellBackend`; the default is a
        :class:`LocalPoolBackend` sized by ``processes``.  The backend is
        invoked even for an empty item list (a fully cached grid): stateful
        backends (the distributed coordinator, which may already hold
        connected workers) need the call to shut down and release them.
        """
        backend = self.backend if self.backend is not None else LocalPoolBackend(self.processes)
        yield from backend.execute(items)

    def _persist(self, path: Path, record: dict) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".json.tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
        tmp.replace(path)


def run_sweep(
    experiments: Sequence[str],
    scenarios: Optional[Sequence[Scenario]] = None,
    seeds: Sequence[int] = (0, 1, 2, 3),
    results_dir: str | Path = DEFAULT_RESULTS_DIR,
    processes: Optional[int] = None,
    use_cache: bool = True,
    backend: Optional[CellBackend] = None,
) -> SweepReport:
    """Convenience wrapper: build the grid and run it in one call.

    ``backend`` selects where cells execute (local pool by default; a
    :class:`repro.distrib.DistributedBackend` fans them out to worker
    agents over the network).
    """
    grid = SweepGrid(
        experiments=tuple(experiments),
        scenarios=tuple(scenarios if scenarios is not None else default_scenarios()),
        seeds=tuple(seeds),
    )
    return SweepRunner(
        results_dir=results_dir, processes=processes, use_cache=use_cache, backend=backend
    ).run(grid)
