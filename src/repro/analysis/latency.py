"""End-to-end response-latency analysis (Section 1 and Section 2.2).

Builds the latency decomposition the paper opens with: a 300 ms response
target, a ≥232 ms autoregressive-inference floor, and whatever is left for
the RTC pipeline.  The transport side of the budget is fed either by the
analytic model (:func:`repro.net.abr.expected_frame_latency`) or by measured
transmission latencies from the event simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..mllm.inference import (
    DEFAULT_AUDIO_ONLY_FLOOR_MS,
    DEFAULT_RESPONSE_BUDGET_MS,
    InferenceConfig,
    LatencyBudget,
    default_inference_config,
)
from ..net.abr import expected_frame_latency


@dataclass
class BudgetScenario:
    """One operating point for the latency-budget analysis."""

    name: str
    bitrate_bps: float
    loss_rate: float
    bandwidth_bps: float = 10_000_000.0
    one_way_delay_s: float = 0.030
    fps: float = 2.0
    visual_tokens: int = 600
    encode_ms: float = 8.0
    decode_ms: float = 4.0
    jitter_buffer_ms: float = 0.0


def budget_for_scenario(
    scenario: BudgetScenario,
    inference_config: Optional[InferenceConfig] = None,
) -> LatencyBudget:
    """Assemble the latency budget of one scenario."""
    inference_config = inference_config or default_inference_config()
    transmission_s = expected_frame_latency(
        scenario.bitrate_bps,
        fps=scenario.fps,
        bandwidth_bps=scenario.bandwidth_bps,
        loss_rate=scenario.loss_rate,
        rtt_s=2 * scenario.one_way_delay_s,
        propagation_delay_s=scenario.one_way_delay_s,
    )
    inference_ms = inference_config.first_response_latency_ms(scenario.visual_tokens)
    return LatencyBudget(
        response_target_ms=DEFAULT_RESPONSE_BUDGET_MS,
        capture_ms=1000.0 / 60.0,
        encode_ms=scenario.encode_ms,
        transmission_ms=transmission_s * 1000.0,
        decode_ms=scenario.decode_ms,
        jitter_buffer_ms=scenario.jitter_buffer_ms,
        inference_ms=inference_ms,
        downlink_ms=scenario.one_way_delay_s * 1000.0,
    )


def default_budget_scenarios() -> list[BudgetScenario]:
    """Scenarios contrasting traditional-RTC and AI-oriented operating points."""
    return [
        BudgetScenario(
            name="traditional-abr-4mbps",
            bitrate_bps=4_000_000.0,
            loss_rate=0.02,
            jitter_buffer_ms=50.0,
            visual_tokens=900,
        ),
        BudgetScenario(
            name="traditional-abr-8mbps-lossy",
            bitrate_bps=8_000_000.0,
            loss_rate=0.05,
            jitter_buffer_ms=50.0,
            visual_tokens=900,
        ),
        BudgetScenario(
            name="ai-oriented-400kbps",
            bitrate_bps=400_000.0,
            loss_rate=0.02,
            jitter_buffer_ms=0.0,
            visual_tokens=600,
        ),
        BudgetScenario(
            name="ai-oriented-context-aware-200kbps",
            bitrate_bps=200_000.0,
            loss_rate=0.05,
            jitter_buffer_ms=0.0,
            visual_tokens=300,
        ),
    ]


def headline_subtraction() -> dict[str, float]:
    """The paper's Section 1 arithmetic: 300 − 232 ⇒ at most ~68 ms for RTC."""
    remaining = DEFAULT_RESPONSE_BUDGET_MS - DEFAULT_AUDIO_ONLY_FLOOR_MS
    return {
        "response_target_ms": DEFAULT_RESPONSE_BUDGET_MS,
        "inference_floor_ms": DEFAULT_AUDIO_ONLY_FLOOR_MS,
        "transmission_budget_ms": remaining,
    }


def transmission_latency_table(
    bitrates_bps: Sequence[float],
    loss_rates: Sequence[float],
    bandwidth_bps: float = 10_000_000.0,
    fps: float = 30.0,
    one_way_delay_s: float = 0.030,
) -> dict[tuple[float, float], float]:
    """Analytic latency (seconds) for every (bitrate, loss) pair — Figure 3's model."""
    table = {}
    for bitrate in bitrates_bps:
        for loss in loss_rates:
            table[(float(bitrate), float(loss))] = expected_frame_latency(
                bitrate,
                fps=fps,
                bandwidth_bps=bandwidth_bps,
                loss_rate=loss,
                rtt_s=2 * one_way_delay_s,
                propagation_delay_s=one_way_delay_s,
            )
    return table
