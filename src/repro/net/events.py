"""Discrete-event simulation engine used by the RTC transport substrate.

The paper's prototype (Section 2.2, Figure 3) measures how frame transmission
latency responds to bitrate and packet loss over an emulated network.  We
reproduce that prototype with a small but complete discrete-event simulator:
events are scheduled at absolute simulated times and executed in time order,
ties broken by insertion order so the simulation is fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


class SimulationError(RuntimeError):
    """Raised when the simulation is driven in an inconsistent way."""


@dataclass(order=True)
class _ScheduledEvent:
    """Internal heap entry: ordering is (time, sequence number)."""

    time: float
    order: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`EventLoop.schedule` allowing cancellation."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event.  Cancelling an already-run event is a no-op."""
        self._event.cancelled = True


class EventLoop:
    """A deterministic discrete-event loop.

    Time is measured in seconds as a float.  Events scheduled for the same
    instant run in the order they were scheduled.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[_ScheduledEvent] = []
        self._counter = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return sum(1 for event in self._heap if not event.cancelled)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Negative delays are rejected: the simulator never travels backwards.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at an absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f}, current time is {self._now:.6f}"
            )
        event = _ScheduledEvent(time=float(time), order=next(self._counter), callback=callback)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def step(self) -> bool:
        """Run the next pending event.  Returns False when nothing is queued."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self._processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.

        ``until`` is an absolute simulated time; events scheduled exactly at
        ``until`` still run.  When the loop stops because of ``until``, the
        clock is advanced to ``until`` so subsequent scheduling is relative to
        the requested horizon.
        """
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                return
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and event.time > until:
                self._now = max(self._now, until)
                return
            heapq.heappop(self._heap)
            self._now = event.time
            event.callback()
            self._processed += 1
            executed += 1
        if until is not None:
            self._now = max(self._now, until)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain; guard against runaway simulations."""
        executed = 0
        while self.step():
            executed += 1
            if executed >= max_events:
                raise SimulationError(f"simulation did not converge within {max_events} events")
