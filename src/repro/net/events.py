"""Discrete-event simulation engine used by the RTC transport substrate.

The paper's prototype (Section 2.2, Figure 3) measures how frame transmission
latency responds to bitrate and packet loss over an emulated network.  We
reproduce that prototype with a small but complete discrete-event simulator:
events are scheduled at absolute simulated times and executed in time order,
ties broken by insertion order so the simulation is fully deterministic.

The heap holds plain ``[time, order, callback, cancelled]`` lists rather than
objects: list comparison short-circuits on the ``(time, order)`` prefix (the
order counter is unique, so callbacks are never compared), and the scheduler
avoids a per-event object allocation plus the ``__lt__`` dispatch cost that
dominated heap maintenance in profiles.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

# Heap-entry field indices.
_TIME, _ORDER, _CALLBACK, _CANCELLED = range(4)


class SimulationError(RuntimeError):
    """Raised when the simulation is driven in an inconsistent way."""


class EventHandle:
    """Handle returned by :meth:`EventLoop.schedule` allowing cancellation."""

    __slots__ = ("_entry",)

    def __init__(self, entry: list) -> None:
        self._entry = entry

    @property
    def time(self) -> float:
        return self._entry[_TIME]

    @property
    def cancelled(self) -> bool:
        return self._entry[_CANCELLED]

    def cancel(self) -> None:
        """Cancel the event.  Cancelling an already-run event is a no-op."""
        self._entry[_CANCELLED] = True


class DeadlineScheduler:
    """Coalesce many timer deadlines into one outstanding loop event.

    The per-packet transport used to schedule one closure per NACK timer
    (one per incomplete frame per retry round).  This scheduler keeps its
    own min-heap of ``(time, order, callback)`` deadlines and arms a single
    :class:`EventLoop` event at the earliest one; when it fires, every
    deadline due at that instant runs (in insertion order), and the loop
    event is re-armed for the next.  Deadlines therefore fire at exactly
    the times they were scheduled for — coalescing changes the number of
    heap entries in the *event loop*, never the simulated timing.
    """

    __slots__ = ("_loop", "_heap", "_counter", "_handle", "_armed_at")

    def __init__(self, loop: "EventLoop") -> None:
        self._loop = loop
        self._heap: list[list] = []
        self._counter = itertools.count()
        self._handle: Optional[EventHandle] = None
        self._armed_at = float("inf")

    @property
    def pending(self) -> int:
        """Deadlines not yet fired."""
        return len(self._heap)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        tie_time: Optional[float] = None,
        priority: int = 0,
    ) -> None:
        """Register ``callback`` to run at absolute simulated ``time``.

        Same-instant deadlines run ordered by ``(tie_time, priority,
        registration order)``; ``tie_time`` defaults to the registration
        instant.  Per-event timers break such ties by when their
        ``schedule`` call happened; batched callers register deadlines
        *early* (at a run's first arrival), so they pass the instant the
        per-event path would have scheduled at — the triggering packet's
        arrival — and ``priority`` orders deadlines that one packet
        triggers together, so collisions resolve identically in both modes.
        """
        tie = self._loop.now if tie_time is None else float(tie_time)
        heapq.heappush(
            self._heap, [float(time), tie, priority, next(self._counter), callback]
        )
        self._arm()

    def _arm(self) -> None:
        if not self._heap:
            return
        head = self._heap[0][0]
        if self._handle is not None and not self._handle.cancelled and self._armed_at <= head:
            return  # The outstanding event already covers the earliest deadline.
        if self._handle is not None:
            self._handle.cancel()
        self._armed_at = head
        self._handle = self._loop.schedule_at(head, self._fire)

    def _fire(self) -> None:
        now = self._loop.now
        heap = self._heap
        while heap and heap[0][0] <= now:
            entry = heapq.heappop(heap)
            entry[4]()
        self._handle = None
        self._armed_at = float("inf")
        self._arm()


class EventLoop:
    """A deterministic discrete-event loop.

    Time is measured in seconds as a float.  Events scheduled for the same
    instant run in the order they were scheduled.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[list] = []
        self._counter = itertools.count()
        self._processed = 0
        self._horizon = float("inf")

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def horizon(self) -> float:
        """The ``until`` bound of the current/most recent :meth:`run` call
        (+inf when unbounded).  Batched arrival events consult it so that
        work timestamped beyond the horizon is deferred, exactly as
        per-event scheduling would leave it unexecuted."""
        return self._horizon

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return sum(1 for entry in self._heap if not entry[_CANCELLED])

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Negative delays are rejected: the simulator never travels backwards.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at an absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f}, current time is {self._now:.6f}"
            )
        entry = [float(time), next(self._counter), callback, False]
        heapq.heappush(self._heap, entry)
        return EventHandle(entry)

    def step(self) -> bool:
        """Run the next pending event.  Returns False when nothing is queued."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry[_CANCELLED]:
                continue
            self._now = entry[_TIME]
            entry[_CALLBACK]()
            self._processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.

        ``until`` is an absolute simulated time; events scheduled exactly at
        ``until`` still run.  When the loop stops because of ``until``, the
        clock is advanced to ``until`` so subsequent scheduling is relative to
        the requested horizon.
        """
        self._horizon = float(until) if until is not None else float("inf")
        executed = 0
        heap = self._heap
        while heap:
            if max_events is not None and executed >= max_events:
                return
            entry = heap[0]
            if entry[_CANCELLED]:
                heapq.heappop(heap)
                continue
            if until is not None and entry[_TIME] > until:
                self._now = max(self._now, until)
                return
            heapq.heappop(heap)
            self._now = entry[_TIME]
            entry[_CALLBACK]()
            self._processed += 1
            executed += 1
        if until is not None:
            self._now = max(self._now, until)

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain; guard against runaway simulations."""
        self._horizon = float("inf")
        executed = 0
        while self.step():
            executed += 1
            if executed >= max_events:
                raise SimulationError(f"simulation did not converge within {max_events} events")
