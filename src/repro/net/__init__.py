"""RTC transport substrate: event simulation, emulated paths, video transport.

This subpackage reproduces the paper's measurement prototype (Section 2.2,
Figure 3): a WebRTC-style unidirectional video transport running over an
emulated network with configurable bandwidth, delay and loss, with
NACK-based retransmission, optional FEC, congestion control, ABR policies
and an (optional) jitter buffer.
"""

from .abr import (
    AbrDecision,
    AbrPolicy,
    AiOrientedAbr,
    BufferBasedAbr,
    ThroughputAbr,
    expected_frame_latency,
)
from .congestion import (
    AimdConfig,
    AimdController,
    FeedbackAggregator,
    GccConfig,
    GoogleCongestionControl,
    RateSample,
)
from .emulator import (
    BandwidthTrace,
    BernoulliLoss,
    EmulatedPath,
    GilbertElliottLoss,
    LossModel,
    PathConfig,
    PathStats,
    SymmetricPathPair,
    bandwidth_trace_from_spec,
    bandwidth_trace_to_spec,
    expected_loss_rate,
    loss_model_from_spec,
    loss_model_to_spec,
)
from .events import DeadlineScheduler, EventHandle, EventLoop, SimulationError
from .fec import FecConfig, FecDecoder, FecEncoder, fec_recovery_probability
from .jitter_buffer import (
    BufferedFrame,
    JitterBuffer,
    JitterBufferConfig,
    PassthroughBuffer,
    frames_in_capture_order,
)
from .packet import (
    DEFAULT_MTU_BYTES,
    DEFAULT_SEQUENCE_WINDOW,
    FrameAssembler,
    FrameTable,
    NackRequest,
    Packet,
    Packetizer,
    PacketType,
    SequenceNackRequest,
    SequenceWindow,
)
from .stats import FrameRecord, LatencySummary, TransportStats, summarize_latencies
from .traces import corpus, family_scenarios, list_families, scenario_family
from .transport import (
    BurstContext,
    FixedBitrateWorkload,
    FrameDeliveryEvent,
    TransportConfig,
    VideoReceiver,
    VideoSender,
    VideoTransportSession,
    run_fixed_bitrate_session,
)

__all__ = [
    "AbrDecision",
    "AbrPolicy",
    "AiOrientedAbr",
    "AimdConfig",
    "AimdController",
    "BandwidthTrace",
    "BernoulliLoss",
    "BufferBasedAbr",
    "BufferedFrame",
    "BurstContext",
    "DEFAULT_MTU_BYTES",
    "DEFAULT_SEQUENCE_WINDOW",
    "DeadlineScheduler",
    "EmulatedPath",
    "EventHandle",
    "EventLoop",
    "FecConfig",
    "FecDecoder",
    "FecEncoder",
    "FeedbackAggregator",
    "FixedBitrateWorkload",
    "FrameAssembler",
    "FrameDeliveryEvent",
    "FrameRecord",
    "FrameTable",
    "GccConfig",
    "GilbertElliottLoss",
    "GoogleCongestionControl",
    "JitterBuffer",
    "JitterBufferConfig",
    "LatencySummary",
    "LossModel",
    "NackRequest",
    "Packet",
    "PacketType",
    "Packetizer",
    "PassthroughBuffer",
    "PathConfig",
    "PathStats",
    "RateSample",
    "SequenceNackRequest",
    "SequenceWindow",
    "SimulationError",
    "SymmetricPathPair",
    "ThroughputAbr",
    "TransportConfig",
    "TransportStats",
    "VideoReceiver",
    "VideoSender",
    "VideoTransportSession",
    "bandwidth_trace_from_spec",
    "bandwidth_trace_to_spec",
    "corpus",
    "expected_frame_latency",
    "expected_loss_rate",
    "family_scenarios",
    "fec_recovery_probability",
    "frames_in_capture_order",
    "list_families",
    "loss_model_from_spec",
    "loss_model_to_spec",
    "scenario_family",
    "summarize_latencies",
]
