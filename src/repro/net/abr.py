"""Adaptive bitrate (ABR) policies.

The paper contrasts two operating regions for bitrate selection (Figure 3):

* the **grey region** used by traditional RTC, where ABR pushes the bitrate
  as close as possible to (but below) the estimated bandwidth to maximise
  human-perceived quality; and
* the **yellow region** available to AI Video Chat, where bitrate can be
  pushed far below the bandwidth because MLLM accuracy — not perceptual
  quality — is the objective, and a lower bitrate means fewer packets per
  frame and therefore lower transmission latency under loss.

This module implements both families: classic throughput/buffer-based ABR
policies and the AI-oriented policy that selects the minimum bitrate meeting
an accuracy constraint supplied by the context-aware streaming layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np


@dataclass(slots=True)
class AbrDecision:
    """The outcome of one ABR decision."""

    bitrate_bps: float
    reason: str
    headroom_ratio: float


class AbrPolicy:
    """Interface for bitrate selection policies."""

    def decide(self, bandwidth_estimate_bps: float, **observations: float) -> AbrDecision:
        raise NotImplementedError  # pragma: no cover - interface


@dataclass(slots=True)
class ThroughputAbr(AbrPolicy):
    """Traditional throughput-based ABR: track the bandwidth estimate.

    Selects the largest ladder rung below ``safety_factor`` times the
    estimate — the grey region of Figure 3.
    """

    ladder_bps: Sequence[float] = (
        300_000.0,
        600_000.0,
        1_000_000.0,
        2_000_000.0,
        4_000_000.0,
        6_000_000.0,
        8_000_000.0,
        10_000_000.0,
    )
    safety_factor: float = 0.95

    def decide(self, bandwidth_estimate_bps: float, **observations: float) -> AbrDecision:
        budget = bandwidth_estimate_bps * self.safety_factor
        eligible = [rate for rate in self.ladder_bps if rate <= budget]
        chosen = max(eligible) if eligible else min(self.ladder_bps)
        headroom = chosen / bandwidth_estimate_bps if bandwidth_estimate_bps > 0 else float("inf")
        return AbrDecision(bitrate_bps=chosen, reason="throughput", headroom_ratio=headroom)


@dataclass(slots=True)
class BufferBasedAbr(AbrPolicy):
    """Buffer-based ABR in the spirit of BBA (Huang et al., SIGCOMM 2014).

    The receiver-side buffer occupancy (seconds of video queued for playback)
    drives the rate: below ``reservoir_s`` pick the lowest rate, above
    ``cushion_s`` pick the highest, and interpolate linearly in between.
    Included as the second traditional baseline the paper alludes to.
    """

    ladder_bps: Sequence[float] = (
        300_000.0,
        600_000.0,
        1_000_000.0,
        2_000_000.0,
        4_000_000.0,
        8_000_000.0,
    )
    reservoir_s: float = 0.05
    cushion_s: float = 0.5

    def decide(self, bandwidth_estimate_bps: float, **observations: float) -> AbrDecision:
        buffer_s = float(observations.get("buffer_s", 0.0))
        rates = sorted(self.ladder_bps)
        if buffer_s <= self.reservoir_s:
            chosen = rates[0]
        elif buffer_s >= self.cushion_s:
            chosen = rates[-1]
        else:
            fraction = (buffer_s - self.reservoir_s) / (self.cushion_s - self.reservoir_s)
            index = int(round(fraction * (len(rates) - 1)))
            chosen = rates[index]
        # Never exceed the bandwidth estimate, mirroring hybrid deployments.
        eligible = [rate for rate in rates if rate <= bandwidth_estimate_bps]
        if eligible:
            chosen = min(chosen, max(eligible))
        headroom = chosen / bandwidth_estimate_bps if bandwidth_estimate_bps > 0 else float("inf")
        return AbrDecision(bitrate_bps=chosen, reason="buffer", headroom_ratio=headroom)


@dataclass(slots=True)
class AiOrientedAbr(AbrPolicy):
    """AI-oriented bitrate selection: the yellow region of Figure 3.

    Rather than maximising quality subject to bandwidth, this policy selects
    the *minimum* bitrate whose predicted MLLM accuracy meets a target.  The
    accuracy predictor is supplied by the context-aware streaming layer
    (:mod:`repro.core`): given a candidate bitrate it returns the expected
    response accuracy for the current chat context.  A latency predictor (the
    analytical model behind Figure 3) can additionally cap the candidate set
    to those meeting the transmission-latency budget.
    """

    candidate_bitrates_bps: Sequence[float] = (
        100_000.0,
        200_000.0,
        400_000.0,
        600_000.0,
        800_000.0,
        1_200_000.0,
        2_000_000.0,
        4_000_000.0,
    )
    accuracy_target: float = 0.85
    latency_budget_s: Optional[float] = None
    accuracy_predictor: Optional[Callable[[float], float]] = None
    latency_predictor: Optional[Callable[[float], float]] = None

    def decide(self, bandwidth_estimate_bps: float, **observations: float) -> AbrDecision:
        candidates = sorted(rate for rate in self.candidate_bitrates_bps if rate <= bandwidth_estimate_bps)
        if not candidates:
            candidates = [min(self.candidate_bitrates_bps)]

        if self.latency_budget_s is not None and self.latency_predictor is not None:
            within_budget = [
                rate for rate in candidates if self.latency_predictor(rate) <= self.latency_budget_s
            ]
            if within_budget:
                candidates = within_budget

        if self.accuracy_predictor is None:
            chosen = candidates[0]
            reason = "min-bitrate"
        else:
            chosen = None
            for rate in candidates:
                if self.accuracy_predictor(rate) >= self.accuracy_target:
                    chosen = rate
                    break
            if chosen is None:
                chosen = candidates[-1]
                reason = "accuracy-unreachable"
            else:
                reason = "accuracy-constrained"
        headroom = chosen / bandwidth_estimate_bps if bandwidth_estimate_bps > 0 else float("inf")
        return AbrDecision(bitrate_bps=float(chosen), reason=reason, headroom_ratio=headroom)


def expected_frame_latency(
    bitrate_bps: float,
    fps: float,
    bandwidth_bps: float,
    loss_rate: float,
    rtt_s: float,
    mtu_bytes: int = 1400,
    propagation_delay_s: float = 0.030,
    max_rounds: int = 8,
) -> float:
    """Analytic expected frame transmission latency.

    This is the closed-form counterpart of the Figure 3 measurement and is
    used by :class:`AiOrientedAbr` as a latency predictor.  A frame of
    ``bitrate / fps`` bits is split into ``n`` MTU packets; the chance that
    all arrive in one attempt is ``(1-p)^n``; each additional NACK round costs
    roughly one RTT.  Above the bandwidth the queueing term grows without
    bound, reproducing the latency blow-up in the grey-to-overload region.
    """
    if bitrate_bps <= 0 or fps <= 0 or bandwidth_bps <= 0:
        raise ValueError("bitrate_bps, fps and bandwidth_bps must be positive")
    frame_bits = bitrate_bps / fps
    packets = max(1, int(np.ceil(frame_bits / (mtu_bytes * 8))))
    serialization = frame_bits / bandwidth_bps

    # Expected number of NACK rounds: each round the remaining packets are
    # independently lost with probability p.
    expected_rounds = 0.0
    p_any_missing = 1.0 - (1.0 - loss_rate) ** packets
    survivors = packets * loss_rate
    probability = p_any_missing
    for _ in range(max_rounds):
        if probability < 1e-9 or survivors < 1e-9:
            break
        expected_rounds += probability
        probability *= 1.0 - (1.0 - loss_rate) ** max(survivors, 1e-9)
        survivors *= loss_rate

    # Queueing delay: when the offered load exceeds the bandwidth, the queue
    # grows by (load - bandwidth) per second; approximate the average backlog
    # over a one-second horizon.
    overload = max(0.0, bitrate_bps - bandwidth_bps)
    queueing = 0.0 if overload <= 0 else 0.5 * overload / bandwidth_bps

    return propagation_delay_s + serialization + expected_rounds * rtt_s + queueing
