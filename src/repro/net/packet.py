"""Packets and frame packetisation.

The paper observes (Section 2.2) that each packet carries roughly 1400 bytes
of payload, so higher bitrates mean more packets per frame, and with packet
loss the probability that a frame arrives complete in one attempt falls as
the packet count grows.  This module models exactly that: encoded frames are
split into MTU-sized packets with RTP-like sequencing metadata.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional

import numpy as np

#: Default payload size used by the paper's prototype ("around 1400 bytes").
DEFAULT_MTU_BYTES = 1400

#: Sequence slots tracked by :class:`SequenceWindow`.  At the default the
#: window spans several seconds of traffic even at high packet rates, far
#: beyond the NACK machinery's give-up horizon (``max_nack_rounds ×
#: nack_retry_interval_s`` ≈ 1.3 s), so eviction only ever discards
#: sequences whose retransmission rounds are already exhausted.
DEFAULT_SEQUENCE_WINDOW = 4096


class PacketType(Enum):
    """Kinds of packets exchanged by the unidirectional video transport."""

    VIDEO = "video"
    RETRANSMISSION = "retransmission"
    FEC = "fec"
    NACK = "nack"
    ACK = "ack"
    REPLY = "reply"  # downlink audio/text tokens from the MLLM


@dataclass(slots=True)
class Packet:
    """A single transport packet.

    Attributes mirror what a WebRTC video RTP packet would carry: a global
    sequence number, the frame it belongs to, its index within the frame, and
    the capture timestamp (used by the MLLM positional encoding, which is why
    jitter does not matter for the receiver — Section 2.1).
    """

    sequence: int
    frame_id: int
    index_in_frame: int
    packets_in_frame: int
    size_bytes: int
    capture_time: float
    send_time: float = 0.0
    packet_type: PacketType = PacketType.VIDEO
    payload: Optional[bytes] = None
    metadata: dict = field(default_factory=dict)

    @property
    def is_last_in_frame(self) -> bool:
        return self.index_in_frame == self.packets_in_frame - 1

    @property
    def size_bits(self) -> int:
        return self.size_bytes * 8


@dataclass(slots=True)
class NackRequest:
    """A receiver-to-sender request to retransmit specific packets of a frame."""

    frame_id: int
    missing_indices: tuple[int, ...]
    request_time: float
    size_bytes: int = 64


@dataclass(slots=True)
class SequenceNackRequest:
    """A retransmission request addressed by global sequence numbers.

    This is how WebRTC's transport-wide NACK works: the receiver detects gaps
    in the sequence-number space (which also catches frames whose packets were
    *all* lost, as soon as a later packet arrives) and asks the sender to
    resend those sequences.
    """

    missing_sequences: tuple[int, ...]
    request_time: float
    size_bytes: int = 64


class Packetizer:
    """Split encoded frames into MTU-sized packets with monotone sequencing."""

    def __init__(self, mtu_bytes: int = DEFAULT_MTU_BYTES) -> None:
        if mtu_bytes <= 0:
            raise ValueError(f"mtu_bytes must be positive, got {mtu_bytes}")
        self.mtu_bytes = int(mtu_bytes)
        self._next_sequence = 0
        self._sizes_memo_bytes = -1
        self._sizes_memo: Optional[np.ndarray] = None

    def packet_count_for(self, frame_bytes: int) -> int:
        """Number of packets needed to carry ``frame_bytes`` of payload."""
        if frame_bytes <= 0:
            return 1
        return max(1, math.ceil(frame_bytes / self.mtu_bytes))

    def packetize(
        self,
        frame_id: int,
        frame_bytes: int,
        capture_time: float,
        packet_type: PacketType = PacketType.VIDEO,
    ) -> list[Packet]:
        """Build the packet sequence for one encoded frame.

        The final packet carries the remainder so total bytes are preserved.
        """
        frame_bytes = max(1, int(frame_bytes))
        count = self.packet_count_for(frame_bytes)
        packets: list[Packet] = []
        remaining = frame_bytes
        for index in range(count):
            size = min(self.mtu_bytes, remaining)
            remaining -= size
            packets.append(
                Packet(
                    sequence=self._next_sequence,
                    frame_id=frame_id,
                    index_in_frame=index,
                    packets_in_frame=count,
                    size_bytes=size,
                    capture_time=capture_time,
                    packet_type=packet_type,
                )
            )
            self._next_sequence += 1
        return packets

    def packet_sizes(self, frame_bytes: int) -> np.ndarray:
        """Per-packet payload sizes for one frame, without building packets.

        Matches :meth:`packetize` exactly: every packet carries the MTU
        except the last, which carries the remainder.  Fixed-bitrate
        workloads ask for the same split every frame, so the last answer is
        memoised; treat the returned array as read-only.
        """
        frame_bytes = max(1, int(frame_bytes))
        if frame_bytes == self._sizes_memo_bytes:
            return self._sizes_memo
        count = self.packet_count_for(frame_bytes)
        sizes = np.full(count, self.mtu_bytes, dtype=np.int64)
        sizes[-1] = frame_bytes - (count - 1) * self.mtu_bytes
        self._sizes_memo_bytes = frame_bytes
        self._sizes_memo = sizes
        return sizes

    def allocate_sequences(self, count: int) -> int:
        """Reserve ``count`` consecutive sequence numbers; returns the first.

        The batched sender describes a frame burst as ``(first_sequence,
        count)`` instead of materialising one :class:`Packet` per sequence.
        """
        first = self._next_sequence
        self._next_sequence += int(count)
        return first

    def retransmission_copy(self, packet: Packet, request_time: float) -> Packet:
        """Create a retransmission packet for a previously sent packet.

        The copy keeps the original sequence number (RTX-style), so the
        receiver's gap accounting treats it as filling the original hole.
        """
        return Packet(
            sequence=packet.sequence,
            frame_id=packet.frame_id,
            index_in_frame=packet.index_in_frame,
            packets_in_frame=packet.packets_in_frame,
            size_bytes=packet.size_bytes,
            capture_time=packet.capture_time,
            packet_type=PacketType.RETRANSMISSION,
            metadata={"original_sequence": packet.sequence, "request_time": request_time},
        )


class FrameAssembler:
    """Receiver-side reassembly of frames from packets.

    Tracks, per frame, which packet indices have arrived and reports
    completion.  The frame transmission latency in Figure 3 is the time from
    the first packet's send time to the arrival of the last missing packet.
    """

    def __init__(self) -> None:
        self._received: dict[int, set[int]] = {}
        self._expected: dict[int, int] = {}
        self._first_send_time: dict[int, float] = {}
        self._complete_time: dict[int, float] = {}
        self._capture_time: dict[int, float] = {}
        self._bytes: dict[int, int] = {}

    def on_packet(self, packet: Packet, arrival_time: float) -> bool:
        """Register an arriving packet.  Returns True when its frame completes."""
        frame_id = packet.frame_id
        if frame_id not in self._received:
            self._received[frame_id] = set()
            self._expected[frame_id] = packet.packets_in_frame
            self._first_send_time[frame_id] = packet.send_time
            self._capture_time[frame_id] = packet.capture_time
            self._bytes[frame_id] = 0
        else:
            self._first_send_time[frame_id] = min(
                self._first_send_time[frame_id], packet.send_time
            )
        already_complete = frame_id in self._complete_time
        if packet.index_in_frame not in self._received[frame_id]:
            self._received[frame_id].add(packet.index_in_frame)
            self._bytes[frame_id] += packet.size_bytes
        if already_complete:
            return False
        if len(self._received[frame_id]) >= self._expected[frame_id]:
            self._complete_time[frame_id] = arrival_time
            return True
        return False

    def missing_indices(self, frame_id: int) -> tuple[int, ...]:
        """Indices of packets of ``frame_id`` not yet received."""
        if frame_id not in self._received:
            return ()
        expected = self._expected[frame_id]
        have = self._received[frame_id]
        return tuple(index for index in range(expected) if index not in have)

    def has_packet(self, frame_id: int, index: int) -> bool:
        """Whether packet ``index`` of ``frame_id`` has already been received."""
        return index in self._received.get(frame_id, set())

    def is_complete(self, frame_id: int) -> bool:
        return frame_id in self._complete_time

    def completion_time(self, frame_id: int) -> Optional[float]:
        return self._complete_time.get(frame_id)

    def capture_time(self, frame_id: int) -> Optional[float]:
        return self._capture_time.get(frame_id)

    def received_bytes(self, frame_id: int) -> int:
        return self._bytes.get(frame_id, 0)

    def known_frames(self) -> Iterable[int]:
        return self._received.keys()


class SequenceWindow:
    """Ring-buffer bookkeeping of the receiver's sequence-number space.

    The scalar receiver mutates a ``set`` once per packet.  This window
    records whole delivered blocks instead: earliest arrival times live in a
    fixed ring array indexed by ``sequence % capacity`` (one vectorized
    slice write per run), while gap candidates — rare, a few per loss — live
    in a small dict of ``sequence -> [discovered_at, nack_rounds]`` so NACK
    scans touch only actual losses.

    All state is timestamped so queries are exact under batched delivery,
    where packets are *recorded* at a run's first arrival but *arrive*
    (semantically) at their own, possibly later, instants.  A sequence is a
    NACK-able gap at time ``T`` iff ``discovered[s] <= T < arrival[s]`` and
    ``rounds[s] < max_rounds``.  Tail losses (no higher sequence delivered
    yet) hold a +inf discovery until later traffic resolves them.

    When the highest tracked sequence advances past ``capacity``, old slots
    are evicted; any gap still unresolved there is abandoned (counted in
    ``evicted_gaps``).  With the default capacity that can only hit gaps
    whose retransmission rounds are long exhausted, so eviction never
    changes which NACKs are sent.
    """

    def __init__(self, capacity: int = DEFAULT_SEQUENCE_WINDOW) -> None:
        if capacity < 2:
            raise ValueError("capacity must be at least 2")
        self.capacity = int(capacity)
        self._arrival = np.full(self.capacity, np.inf)
        #: sequence -> [discovered_at, nack_rounds]
        self._gaps: dict[int, list] = {}
        self._lo = 0  # lowest sequence still tracked
        self._hi = -1  # highest sequence consumed into the window
        self._max_arrival = float("-inf")  # latest arrival instant recorded
        self.evicted_gaps = 0

    @property
    def lo(self) -> int:
        return self._lo

    @property
    def hi(self) -> int:
        return self._hi

    def _span_slots(self, start: int, stop: int) -> tuple[slice, ...]:
        """Ring slots covering sequences ``[start, stop)`` (<= 2 slices)."""
        if start >= stop:
            return ()
        a, b = start % self.capacity, (stop - 1) % self.capacity
        if b >= a:
            return (slice(a, b + 1),)
        return (slice(a, self.capacity), slice(0, b + 1))

    def _advance(self, new_hi: int) -> None:
        """Move the window head, evicting slots that fall off the tail."""
        if new_hi <= self._hi:
            return
        new_lo = new_hi - self.capacity + 1
        if new_lo > self._lo:
            if self._gaps:
                for sequence in [s for s in self._gaps if s < new_lo]:
                    del self._gaps[sequence]
                    if self._arrival[sequence % self.capacity] == np.inf:
                        self.evicted_gaps += 1
            cleared = min(new_lo, self._hi + 1)
            for span in self._span_slots(self._lo, cleared):
                self._arrival[span] = np.inf
            self._lo = new_lo
        # Slots for the newly-entered span are in their cleared (+inf)
        # state by invariant: spans only ever advance.
        self._hi = new_hi

    def _write_arrivals(self, start: int, stop: int, values: np.ndarray) -> None:
        """Write arrival times for the contiguous sequences [start, stop)."""
        offset = 0
        for span in self._span_slots(start, stop):
            width = span.stop - span.start
            self._arrival[span] = values[offset : offset + width]
            offset += width

    def _discover_below(self, limit: int, instant: float) -> float:
        """Mark every live sequence below ``limit`` still unarrived at
        ``instant`` as discovered-missing no later than ``instant``.

        A sequence is missing at ``instant`` exactly when some higher
        sequence has arrived by then while it has not — under reordering
        the discovering arrival can come from a *later burst* (or a
        retransmission), and even a *delivered* packet counts as missing
        while it is overtaken in flight.  Losses always hold a gap entry,
        so lowering their discovery is a pass over the (small) gap dict;
        overtaken deliveries need a vectorized sweep of the live span,
        skipped whenever ``instant`` is at or past every recorded arrival
        (always true without jitter, where arrivals are FIFO).  Returns
        ``instant`` when it newly discovers a still-unarrived sequence (the
        NACK chain should arm), else +inf.
        """
        armed = np.inf
        arrival = self._arrival
        capacity = self.capacity
        gaps = self._gaps
        for sequence, entry in gaps.items():
            if sequence < limit and entry[0] > instant:
                entry[0] = instant
                if armed == np.inf and arrival[sequence % capacity] > instant:
                    armed = instant
        if instant < self._max_arrival:
            # Some recorded arrival lies beyond ``instant``: sweep for
            # delivered packets below ``limit`` overtaken in flight.
            lo = self._lo
            if limit > lo:
                base = lo
                for span in self._span_slots(lo, limit):
                    hits = np.flatnonzero(self._arrival[span] > instant)
                    for offset in hits.tolist():
                        sequence = base + offset
                        entry = gaps.get(sequence)
                        if entry is None:
                            gaps[sequence] = [instant, 0]
                            if armed == np.inf:
                                armed = instant
                    base += span.stop - span.start
        return armed

    def _add_gap(self, sequence: int, discovered: float) -> None:
        entry = self._gaps.get(sequence)
        if entry is None:
            self._gaps[sequence] = [discovered, 0]
        elif discovered < entry[0]:
            entry[0] = discovered

    def record(
        self,
        first_sequence: int,
        count: int,
        delivered: np.ndarray,
        arrivals: np.ndarray,
        ordered: bool = True,
    ) -> float:
        """Record one delivery unit: sequences ``[first, first+count)`` were
        offered, the ``delivered`` offsets arrive at ``arrivals`` and the
        rest were dropped.  ``ordered`` asserts contiguous offsets with
        non-decreasing arrivals (the jitter-free case).

        Returns the earliest *newly-known* gap discovery time (``inf`` when
        the unit creates no resolvable gap), so the receiver can arm its
        NACK chain exactly when the scalar path would.
        """
        if count <= 0:
            return np.inf
        last = first_sequence + count - 1
        span_min = min(first_sequence, self._hi + 1)
        if ordered and len(delivered) == count:
            # In-order full run: slice-write the arrivals; a delivered
            # packet can only become a transient "gap" under reordering, so
            # no gap bookkeeping is needed for the run itself.
            stale = first_sequence <= self._hi  # span already consumed:
            # a later unit marked it wholly lost and retransmissions may
            # have filled slots, so merge minima instead of overwriting.
            self._advance(last)
            lo = self._lo
            start = first_sequence if first_sequence >= lo else lo
            if start <= last:
                slot = start % self.capacity
                width = last - start + 1
                values = arrivals[start - first_sequence :]
                if stale:
                    for span in self._span_slots(start, last + 1):
                        span_width = span.stop - span.start
                        np.minimum(
                            self._arrival[span],
                            values[: span_width],
                            out=self._arrival[span],
                        )
                        values = values[span_width:]
                elif slot + width <= self.capacity:  # no wrap (common case)
                    self._arrival[slot : slot + width] = values
                else:
                    self._write_arrivals(start, last + 1, values)
            first_new_discovery = np.inf
            min_arrival = float(arrivals[0])
            first_new_discovery = self._discover_below(first_sequence, min_arrival)
            last_arrival = float(arrivals[-1])
            if last_arrival > self._max_arrival:
                self._max_arrival = last_arrival
            if span_min < first_sequence:
                # Sequences skipped between the previous head and this run
                # (losses between runs, or whole lost bursts) become gaps
                # discovered at this run's first arrival.
                for sequence in range(max(span_min, lo), first_sequence):
                    self._gaps[sequence] = [min_arrival, 0]
                if first_new_discovery > min_arrival:
                    first_new_discovery = min_arrival
            return first_new_discovery
        stale = first_sequence <= self._hi
        self._advance(last)
        lo = self._lo
        first_new_discovery = np.inf
        min_arrival = float(np.min(arrivals)) if len(arrivals) else np.inf
        # Anything below this unit still in flight (or lost) at its
        # earliest arrival is discovered missing by it.
        if len(arrivals):
            first_new_discovery = self._discover_below(first_sequence, min_arrival)
            top = float(np.max(arrivals))
            if top > self._max_arrival:
                self._max_arrival = top
        # Per-offset discovery: the earliest arrival among delivered packets
        # at a *higher* offset (suffix minimum), +inf for the tail.
        offsets = np.asarray(delivered, dtype=np.int64)
        arr = np.asarray(arrivals, dtype=float)
        discovery = np.full(count, np.inf)
        if len(offsets):
            suffix = np.minimum.accumulate(arr[::-1])[::-1]
            boundaries = np.zeros(count, dtype=np.int64)
            boundaries[offsets] = 1
            # Index (into ``offsets``) of the first delivered offset at or
            # after each burst offset.
            idx_of_next = len(offsets) - np.cumsum(boundaries[::-1])[::-1]
            valid = idx_of_next < len(offsets)
            discovery[valid] = suffix[idx_of_next[valid]]
            # A delivered packet's own arrival does not discover itself: its
            # discovery is the earliest *strictly later-offset* arrival.
            if len(offsets) > 1:
                discovery[offsets[:-1]] = suffix[1:]
            discovery[offsets[-1]] = np.inf
            dseqs = first_sequence + offsets
            keep = dseqs >= lo
            dslots = dseqs[keep] % self.capacity
            if stale:
                # (fancy indexing copies, so in-place minima need .at)
                np.minimum.at(self._arrival, dslots, arr[keep])
            else:
                self._arrival[dslots] = arr[keep]
        # Gaps below this unit (sequences skipped since the previous
        # highest) are discovered by this unit's earliest arrival.
        if span_min < first_sequence:
            gap_lo = max(span_min, lo)
            if len(arrivals):
                for sequence in range(gap_lo, first_sequence):
                    self._add_gap(sequence, min_arrival)
                first_new_discovery = min(first_new_discovery, min_arrival)
            else:
                for sequence in range(gap_lo, first_sequence):
                    self._add_gap(sequence, np.inf)
        # Losses inside the unit: real discovery when a higher offset was
        # delivered, pending otherwise.
        lost_offsets = np.setdiff1d(np.arange(count, dtype=np.int64), offsets, assume_unique=True)
        for off in lost_offsets.tolist():
            disc = float(discovery[off])
            self._add_gap(first_sequence + off, disc)
            if disc < first_new_discovery:
                first_new_discovery = disc
        # Reordering makes a *delivered* packet a transient gap: a higher
        # offset lands first, so the receiver briefly counts it missing
        # during [discovery, arrival).  Those discoveries arm the NACK chain
        # exactly like real losses.
        if len(offsets):
            transient = discovery[offsets] < arr
            if transient.any():
                for off in offsets[transient].tolist():
                    self._add_gap(first_sequence + off, float(discovery[off]))
                first_new_discovery = min(
                    first_new_discovery, float(np.min(discovery[offsets][transient]))
                )
        return first_new_discovery

    def record_jump(self, sequence: int, arrival_time: float) -> float:
        """Record an out-of-band jump past the window head.

        Everything skipped over becomes a gap discovered at ``arrival_time``.
        Returns that discovery instant when a gap was created, else +inf.
        """
        skipped_from = self._hi + 1
        self._advance(sequence)
        self._arrival[sequence % self.capacity] = arrival_time
        created = sequence > skipped_from
        created = (self._discover_below(skipped_from, arrival_time) != np.inf) or created
        if arrival_time > self._max_arrival:
            self._max_arrival = arrival_time
        for skipped in range(max(skipped_from, self._lo), sequence):
            self._add_gap(skipped, arrival_time)
        return arrival_time if created else np.inf

    def record_single(self, sequence: int, arrival_time: float) -> float:
        """Record one individually delivered packet (e.g. a retransmission).

        Sequences that already fell off the window (a duplicate
        retransmission arriving after the window advanced) are ignored,
        exactly as the scalar path forgets sequences it gave up on.  Returns
        the discovery instant of any gap this arrival newly resolves or
        creates (+inf otherwise), so the caller can arm its NACK chain.
        """
        if sequence < self._lo:
            return np.inf
        if sequence > self._hi:
            return self.record_jump(sequence, arrival_time)
        slot = sequence % self.capacity
        if arrival_time < self._arrival[slot]:
            self._arrival[slot] = arrival_time
        if arrival_time > self._max_arrival:
            self._max_arrival = arrival_time
        return self._discover_below(sequence, arrival_time)

    def gaps_at(self, time: float, max_rounds: int) -> list[int]:
        """Sequences that are NACK-able gaps at ``time`` (ascending).

        Prunes dead candidates as a side effect: evicted sequences, gaps
        filled at or before ``time`` (arrivals only ever move earlier, so
        they can never be gaps again) and round-exhausted gaps.
        """
        if not self._gaps:
            return []
        arrival = self._arrival
        capacity = self.capacity
        lo = self._lo
        out: list[int] = []
        dead: list[int] = []
        for sequence, entry in self._gaps.items():
            if (
                sequence < lo
                or arrival[sequence % capacity] <= time
                or entry[1] >= max_rounds
            ):
                dead.append(sequence)
            elif entry[0] <= time:
                out.append(sequence)
        for sequence in dead:
            del self._gaps[sequence]
        out.sort()
        return out

    def bump_rounds(self, sequences) -> None:
        for sequence in sequences:
            entry = self._gaps.get(sequence)
            if entry is not None:
                entry[1] += 1

    def next_discovery_after(self, time: float, max_rounds: int) -> float:
        """Earliest future gap-discovery instant, +inf when there is none.

        Batched delivery can record a gap whose discovery lies ahead of the
        current NACK-chain tick; the chain re-arms for that instant instead
        of dying, which is exactly when the scalar path would restart it.
        """
        best = np.inf
        arrival = self._arrival
        capacity = self.capacity
        lo = self._lo
        for sequence, entry in self._gaps.items():
            discovered = entry[0]
            if (
                sequence >= lo
                and entry[1] < max_rounds
                and time < discovered < best
                and arrival[sequence % capacity] > discovered
            ):
                best = discovered
        return best


class _FrameSlot:
    """Array-backed reassembly state for one frame (fast-path counterpart of
    a :class:`FrameAssembler` entry)."""

    __slots__ = (
        "expected",
        "arrivals",
        "received",
        "bytes",
        "capture_time",
        "first_send_time",
        "complete_time",
        "finalize_at",
        "nack_rounds",
        "check_armed",
    )

    def __init__(self, expected: int, capture_time: float, first_send_time: float) -> None:
        self.expected = expected
        self.arrivals = np.full(expected, np.inf)
        self.received = 0
        self.bytes = 0
        self.capture_time = capture_time
        self.first_send_time = first_send_time
        self.complete_time: Optional[float] = None
        self.finalize_at: Optional[float] = None
        self.nack_rounds = 0
        self.check_armed = False

    def completion_instant(self) -> float:
        """The instant the frame (first) became complete: every packet index
        has arrived once the last of their earliest arrivals lands."""
        return float(np.max(self.arrivals))

    def complete_at(self, time: float) -> bool:
        if self.received < self.expected:
            return False
        return bool(np.max(self.arrivals) <= time)

    def missing_at(self, time: float) -> tuple[int, ...]:
        """Packet indices not yet arrived as of ``time``."""
        return tuple(np.flatnonzero(self.arrivals > time).tolist())


class FrameTable:
    """Per-frame received-state table for the batched receiver.

    Replaces the dict-of-sets :class:`FrameAssembler` on the fast path with
    one float array of earliest arrival times per frame; membership,
    missing-index and completion queries become vectorized comparisons that
    are exact *at any simulated instant*, which is what lets a whole
    delivered run be recorded at its first arrival without changing any
    observable timing.
    """

    def __init__(self) -> None:
        self._slots: dict[int, _FrameSlot] = {}

    def get(self, frame_id: int) -> Optional[_FrameSlot]:
        return self._slots.get(frame_id)

    def ensure(self, frame_id: int, expected: int, capture_time: float, send_time: float) -> _FrameSlot:
        slot = self._slots.get(frame_id)
        if slot is None:
            slot = _FrameSlot(expected, capture_time, send_time)
            self._slots[frame_id] = slot
        return slot

    def record_single(self, slot: _FrameSlot, offset: int, arrival_time: float, size_bytes: int) -> bool:
        """Record one packet; returns True when it fills a new hole."""
        known = slot.arrivals[offset]
        if arrival_time < known:
            slot.arrivals[offset] = arrival_time
        if not np.isinf(known):
            return False  # Duplicate: bytes must not count twice.
        slot.received += 1
        slot.bytes += size_bytes
        return True
