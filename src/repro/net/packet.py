"""Packets and frame packetisation.

The paper observes (Section 2.2) that each packet carries roughly 1400 bytes
of payload, so higher bitrates mean more packets per frame, and with packet
loss the probability that a frame arrives complete in one attempt falls as
the packet count grows.  This module models exactly that: encoded frames are
split into MTU-sized packets with RTP-like sequencing metadata.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional

#: Default payload size used by the paper's prototype ("around 1400 bytes").
DEFAULT_MTU_BYTES = 1400


class PacketType(Enum):
    """Kinds of packets exchanged by the unidirectional video transport."""

    VIDEO = "video"
    RETRANSMISSION = "retransmission"
    FEC = "fec"
    NACK = "nack"
    ACK = "ack"
    REPLY = "reply"  # downlink audio/text tokens from the MLLM


@dataclass(slots=True)
class Packet:
    """A single transport packet.

    Attributes mirror what a WebRTC video RTP packet would carry: a global
    sequence number, the frame it belongs to, its index within the frame, and
    the capture timestamp (used by the MLLM positional encoding, which is why
    jitter does not matter for the receiver — Section 2.1).
    """

    sequence: int
    frame_id: int
    index_in_frame: int
    packets_in_frame: int
    size_bytes: int
    capture_time: float
    send_time: float = 0.0
    packet_type: PacketType = PacketType.VIDEO
    payload: Optional[bytes] = None
    metadata: dict = field(default_factory=dict)

    @property
    def is_last_in_frame(self) -> bool:
        return self.index_in_frame == self.packets_in_frame - 1

    @property
    def size_bits(self) -> int:
        return self.size_bytes * 8


@dataclass(slots=True)
class NackRequest:
    """A receiver-to-sender request to retransmit specific packets of a frame."""

    frame_id: int
    missing_indices: tuple[int, ...]
    request_time: float
    size_bytes: int = 64


@dataclass(slots=True)
class SequenceNackRequest:
    """A retransmission request addressed by global sequence numbers.

    This is how WebRTC's transport-wide NACK works: the receiver detects gaps
    in the sequence-number space (which also catches frames whose packets were
    *all* lost, as soon as a later packet arrives) and asks the sender to
    resend those sequences.
    """

    missing_sequences: tuple[int, ...]
    request_time: float
    size_bytes: int = 64


class Packetizer:
    """Split encoded frames into MTU-sized packets with monotone sequencing."""

    def __init__(self, mtu_bytes: int = DEFAULT_MTU_BYTES) -> None:
        if mtu_bytes <= 0:
            raise ValueError(f"mtu_bytes must be positive, got {mtu_bytes}")
        self.mtu_bytes = int(mtu_bytes)
        self._next_sequence = 0

    def packet_count_for(self, frame_bytes: int) -> int:
        """Number of packets needed to carry ``frame_bytes`` of payload."""
        if frame_bytes <= 0:
            return 1
        return max(1, math.ceil(frame_bytes / self.mtu_bytes))

    def packetize(
        self,
        frame_id: int,
        frame_bytes: int,
        capture_time: float,
        packet_type: PacketType = PacketType.VIDEO,
    ) -> list[Packet]:
        """Build the packet sequence for one encoded frame.

        The final packet carries the remainder so total bytes are preserved.
        """
        frame_bytes = max(1, int(frame_bytes))
        count = self.packet_count_for(frame_bytes)
        packets: list[Packet] = []
        remaining = frame_bytes
        for index in range(count):
            size = min(self.mtu_bytes, remaining)
            remaining -= size
            packets.append(
                Packet(
                    sequence=self._next_sequence,
                    frame_id=frame_id,
                    index_in_frame=index,
                    packets_in_frame=count,
                    size_bytes=size,
                    capture_time=capture_time,
                    packet_type=packet_type,
                )
            )
            self._next_sequence += 1
        return packets

    def retransmission_copy(self, packet: Packet, request_time: float) -> Packet:
        """Create a retransmission packet for a previously sent packet.

        The copy keeps the original sequence number (RTX-style), so the
        receiver's gap accounting treats it as filling the original hole.
        """
        return Packet(
            sequence=packet.sequence,
            frame_id=packet.frame_id,
            index_in_frame=packet.index_in_frame,
            packets_in_frame=packet.packets_in_frame,
            size_bytes=packet.size_bytes,
            capture_time=packet.capture_time,
            packet_type=PacketType.RETRANSMISSION,
            metadata={"original_sequence": packet.sequence, "request_time": request_time},
        )


class FrameAssembler:
    """Receiver-side reassembly of frames from packets.

    Tracks, per frame, which packet indices have arrived and reports
    completion.  The frame transmission latency in Figure 3 is the time from
    the first packet's send time to the arrival of the last missing packet.
    """

    def __init__(self) -> None:
        self._received: dict[int, set[int]] = {}
        self._expected: dict[int, int] = {}
        self._first_send_time: dict[int, float] = {}
        self._complete_time: dict[int, float] = {}
        self._capture_time: dict[int, float] = {}
        self._bytes: dict[int, int] = {}

    def on_packet(self, packet: Packet, arrival_time: float) -> bool:
        """Register an arriving packet.  Returns True when its frame completes."""
        frame_id = packet.frame_id
        if frame_id not in self._received:
            self._received[frame_id] = set()
            self._expected[frame_id] = packet.packets_in_frame
            self._first_send_time[frame_id] = packet.send_time
            self._capture_time[frame_id] = packet.capture_time
            self._bytes[frame_id] = 0
        else:
            self._first_send_time[frame_id] = min(
                self._first_send_time[frame_id], packet.send_time
            )
        already_complete = frame_id in self._complete_time
        if packet.index_in_frame not in self._received[frame_id]:
            self._received[frame_id].add(packet.index_in_frame)
            self._bytes[frame_id] += packet.size_bytes
        if already_complete:
            return False
        if len(self._received[frame_id]) >= self._expected[frame_id]:
            self._complete_time[frame_id] = arrival_time
            return True
        return False

    def missing_indices(self, frame_id: int) -> tuple[int, ...]:
        """Indices of packets of ``frame_id`` not yet received."""
        if frame_id not in self._received:
            return ()
        expected = self._expected[frame_id]
        have = self._received[frame_id]
        return tuple(index for index in range(expected) if index not in have)

    def has_packet(self, frame_id: int, index: int) -> bool:
        """Whether packet ``index`` of ``frame_id`` has already been received."""
        return index in self._received.get(frame_id, set())

    def is_complete(self, frame_id: int) -> bool:
        return frame_id in self._complete_time

    def completion_time(self, frame_id: int) -> Optional[float]:
        return self._complete_time.get(frame_id)

    def capture_time(self, frame_id: int) -> Optional[float]:
        return self._capture_time.get(frame_id)

    def received_bytes(self, frame_id: int) -> int:
        return self._bytes.get(frame_id, 0)

    def known_frames(self) -> Iterable[int]:
        return self._received.keys()
