"""Network path emulation.

The paper's prototype runs a WebRTC-style transport over an emulated link
with a configured bandwidth (10 Mbps), one-way propagation delay (30 ms) and
a swept packet-loss rate.  This module provides that emulated path as a
bandwidth-limited drop-tail queue with serialisation delay, propagation
delay, optional delay jitter, and pluggable loss models (Bernoulli i.i.d.
loss and a two-state Gilbert-Elliott bursty-loss model), plus a trace-driven
bandwidth schedule for time-varying links.
"""

from __future__ import annotations

import os
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import numpy as np

from .events import EventLoop
from .packet import Packet

#: Environment switch for the vectorized fast path.  ``REPRO_NET_FASTPATH=0``
#: falls back to the scalar per-packet algorithms (one RNG call per decision,
#: linear-scan trace lookups) — the reference implementation the benchmark
#: harness times against and the equivalence tests compare with.  The flag is
#: read at object construction time, so toggling it mid-process only affects
#: paths/traces built afterwards.
FASTPATH_ENV = "REPRO_NET_FASTPATH"

#: Drop decisions are drawn from the loss model in blocks of this many
#: packets; the per-packet path then consumes precomputed booleans instead of
#: paying 1-2 ``Generator.random()`` dispatches per packet.
DEFAULT_DROP_BLOCK_SIZE = 1024


def fastpath_enabled() -> bool:
    """Whether newly constructed paths/traces use the vectorized fast path."""
    return os.environ.get(FASTPATH_ENV, "1") != "0"


class LossModel:
    """Interface for packet-loss processes."""

    def should_drop(self, rng: np.random.Generator) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def sample_drops(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` consecutive drop decisions as a boolean array.

        The block consumes the RNG stream exactly as ``n`` successive
        :meth:`should_drop` calls would, so for a given seed the decision
        sequence is identical whether drawn one at a time or in blocks of any
        size.  Subclasses override this with vectorized implementations; the
        fallback simply loops.
        """
        return np.fromiter(
            (self.should_drop(rng) for _ in range(n)), dtype=bool, count=max(n, 0)
        )


@dataclass
class BernoulliLoss(LossModel):
    """Independent and identically distributed packet loss."""

    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")

    def should_drop(self, rng: np.random.Generator) -> bool:
        if self.loss_rate <= 0.0:
            return False
        return bool(rng.random() < self.loss_rate)

    def sample_drops(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if n <= 0:
            return np.zeros(0, dtype=bool)
        if self.loss_rate <= 0.0:
            # The scalar path short-circuits without consuming a draw.
            return np.zeros(n, dtype=bool)
        return rng.random(n) < self.loss_rate


@dataclass
class GilbertElliottLoss(LossModel):
    """Two-state bursty loss: a good state and a bad (lossy) state.

    ``p_good_to_bad`` and ``p_bad_to_good`` are per-packet transition
    probabilities; ``loss_in_bad`` (and optionally ``loss_in_good``) give the
    drop probability within each state.  This captures the bursty loss that
    makes per-frame retransmission rounds expensive in interactive video.
    """

    p_good_to_bad: float = 0.01
    p_bad_to_good: float = 0.3
    loss_in_bad: float = 0.5
    loss_in_good: float = 0.0
    _in_bad_state: bool = field(default=False, repr=False)

    def should_drop(self, rng: np.random.Generator) -> bool:
        if self._in_bad_state:
            if rng.random() < self.p_bad_to_good:
                self._in_bad_state = False
        else:
            if rng.random() < self.p_good_to_bad:
                self._in_bad_state = True
        loss = self.loss_in_bad if self._in_bad_state else self.loss_in_good
        return bool(rng.random() < loss)

    def sample_drops(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Vectorized state-stepping block sampler.

        Each packet consumes two uniforms — a state-transition draw and a
        loss draw — in the same order as :meth:`should_drop`, so the decision
        sequence for a given seed is bit-identical to the scalar path.  The
        transition draws for the whole block are precomputed once; the chain
        is then advanced run-by-run (one numpy slice per state run) rather
        than packet-by-packet, so the Python-level work scales with the
        number of state transitions, not the number of packets.
        """
        if n <= 0:
            return np.zeros(0, dtype=bool)
        u = rng.random(2 * n)
        trans = u[0::2]
        loss = u[1::2]
        # Candidate transition points for either current state, found once.
        to_bad = np.flatnonzero(trans < self.p_good_to_bad)
        to_good = np.flatnonzero(trans < self.p_bad_to_good)
        drops = np.empty(n, dtype=bool)
        in_bad = self._in_bad_state
        pos = 0
        while pos < n:
            candidates = to_good if in_bad else to_bad
            cursor = int(np.searchsorted(candidates, pos))
            flip_at = int(candidates[cursor]) if cursor < len(candidates) else n
            rate = self.loss_in_bad if in_bad else self.loss_in_good
            # Packets [pos, flip_at) keep the current state's loss rate.
            drops[pos:flip_at] = loss[pos:flip_at] < rate
            if flip_at >= n:
                break
            # The packet whose transition draw fires sees the *new* state's
            # loss rate, exactly as the scalar path does.
            in_bad = not in_bad
            new_rate = self.loss_in_bad if in_bad else self.loss_in_good
            drops[flip_at] = loss[flip_at] < new_rate
            pos = flip_at + 1
        self._in_bad_state = in_bad
        return drops

    @property
    def steady_state_loss(self) -> float:
        """Long-run average loss probability of the chain."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        if denom == 0:
            return self.loss_in_good
        p_bad = self.p_good_to_bad / denom
        return p_bad * self.loss_in_bad + (1 - p_bad) * self.loss_in_good


@dataclass
class BandwidthTrace:
    """A piecewise-constant bandwidth schedule.

    ``times`` are the instants (seconds) at which a new rate takes effect and
    ``rates_bps`` the corresponding link rates.  Before the first instant the
    first rate applies.
    """

    times: Sequence[float]
    rates_bps: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.rates_bps):
            raise ValueError("times and rates_bps must have equal length")
        if len(self.times) == 0:
            raise ValueError("trace must contain at least one entry")
        if any(t1 < t0 for t0, t1 in zip(self.times, list(self.times)[1:])):
            raise ValueError("trace times must be non-decreasing")
        if any(rate <= 0 for rate in self.rates_bps):
            raise ValueError("trace rates must be positive")
        # Precomputed breakpoint arrays for O(log n) lookups, plus a cached
        # active segment: consecutive lookups almost always land in the same
        # piecewise-constant segment, making the common case O(1).
        self._times_list = [float(t) for t in self.times]
        self._rates_list = [float(r) for r in self.rates_bps]
        self._seg_start = float("inf")  # empty cache until the first lookup
        self._seg_end = float("-inf")
        self._seg_rate = self._rates_list[0]
        self._fast = fastpath_enabled()

    def rate_at(self, time: float) -> float:
        if not self._fast:
            return self.rate_at_scan(time)
        if self._seg_start <= time < self._seg_end:
            return self._seg_rate
        times = self._times_list
        # Index of the last breakpoint at or before ``time`` (-1 when the
        # query precedes the trace, in which case the first rate applies).
        idx = bisect_right(times, time) - 1
        if idx < 0:
            self._seg_start = float("-inf")
            self._seg_end = times[0]
            rate = self._rates_list[0]
        else:
            self._seg_start = times[idx]
            self._seg_end = times[idx + 1] if idx + 1 < len(times) else float("inf")
            rate = self._rates_list[idx]
        self._seg_rate = rate
        return rate

    def rate_at_scan(self, time: float) -> float:
        """Reference linear-scan lookup (the pre-fast-path implementation).

        Kept for the scalar benchmark mode and the property tests asserting
        that :meth:`rate_at` agrees with it on arbitrary traces.
        """
        rate = self.rates_bps[0]
        for instant, value in zip(self.times, self.rates_bps):
            if instant <= time:
                rate = value
            else:
                break
        return float(rate)

    @property
    def mean_rate_bps(self) -> float:
        """Time-weighted mean rate over the trace's defined horizon.

        Each rate is weighted by how long it holds (the gap to the next
        breakpoint); the final rate holds forever, so it is excluded unless
        the trace has a single entry or zero total width.
        """
        times = np.asarray(self.times, dtype=float)
        rates = np.asarray(self.rates_bps, dtype=float)
        if len(times) < 2:
            return float(rates[0])
        widths = np.diff(times)
        total = float(np.sum(widths))
        low = float(np.min(rates))
        high = float(np.max(rates))
        if total <= 0.0:
            mean = float(np.mean(rates))
        else:
            mean = float(np.sum(widths * rates[:-1]) / total)
        # Accumulated rounding can land the weighted mean a few ULPs outside
        # [min, max]; the true mean is always within the rate range.
        return min(max(mean, low), high)


# ---------------------------------------------------------------------------
# JSON-friendly specs: scenario grids (see repro.analysis.sweeps) describe
# loss models and bandwidth traces as plain dicts so they can be hashed,
# persisted, and shipped across process boundaries, then rebuilt here.
# ---------------------------------------------------------------------------


def loss_model_from_spec(spec: Optional[dict]) -> LossModel:
    """Build a loss model from a plain-dict spec (``{"kind": ..., params}``)."""
    if spec is None:
        return BernoulliLoss(0.0)
    kind = spec.get("kind", "bernoulli")
    params = {k: v for k, v in spec.items() if k != "kind"}
    if kind == "bernoulli":
        return BernoulliLoss(**params)
    if kind == "gilbert_elliott":
        return GilbertElliottLoss(**params)
    raise ValueError(f"unknown loss model kind: {kind!r}")


def loss_model_to_spec(model: LossModel) -> dict:
    """Inverse of :func:`loss_model_from_spec` for the built-in models."""
    if isinstance(model, BernoulliLoss):
        return {"kind": "bernoulli", "loss_rate": model.loss_rate}
    if isinstance(model, GilbertElliottLoss):
        return {
            "kind": "gilbert_elliott",
            "p_good_to_bad": model.p_good_to_bad,
            "p_bad_to_good": model.p_bad_to_good,
            "loss_in_bad": model.loss_in_bad,
            "loss_in_good": model.loss_in_good,
        }
    raise ValueError(f"cannot build a spec for {type(model).__name__}")


def bandwidth_trace_from_spec(spec: Optional[dict]) -> Optional["BandwidthTrace"]:
    if spec is None:
        return None
    return BandwidthTrace(times=list(spec["times"]), rates_bps=list(spec["rates_bps"]))


def bandwidth_trace_to_spec(trace: Optional["BandwidthTrace"]) -> Optional[dict]:
    if trace is None:
        return None
    return {"times": list(trace.times), "rates_bps": list(trace.rates_bps)}


def expected_loss_rate(model: LossModel, samples: int = 20_000, seed: int = 0) -> float:
    """Long-run drop probability of a loss model.

    Analytic for the built-in models; an empirical estimate (on a copy, so
    stateful models are not perturbed) for anything else.
    """
    if isinstance(model, BernoulliLoss):
        return model.loss_rate
    if isinstance(model, GilbertElliottLoss):
        return model.steady_state_loss
    import copy

    probe = copy.deepcopy(model)
    rng = np.random.default_rng(seed)
    sampler = getattr(probe, "sample_drops", None)
    if sampler is not None:
        drops = int(np.count_nonzero(sampler(rng, samples)))
    else:  # duck-typed models that only implement should_drop
        drops = sum(probe.should_drop(rng) for _ in range(samples))
    return drops / max(samples, 1)


@dataclass
class PathConfig:
    """Configuration of an emulated network path.

    The defaults match the paper's measurement setup: 10 Mbps bottleneck,
    30 ms one-way propagation delay.
    """

    bandwidth_bps: float = 10_000_000.0
    propagation_delay_s: float = 0.030
    loss_model: LossModel = field(default_factory=BernoulliLoss)
    queue_capacity_bytes: int = 300_000
    jitter_std_s: float = 0.0
    bandwidth_trace: Optional[BandwidthTrace] = None
    seed: int = 0
    #: Packets per block drawn from the loss model at once.  ``None`` picks
    #: the default block size (or 1 — per-packet scalar draws — when the
    #: fast path is disabled via ``REPRO_NET_FASTPATH=0``).
    drop_block_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")
        if self.propagation_delay_s < 0:
            raise ValueError("propagation_delay_s must be non-negative")
        if self.queue_capacity_bytes <= 0:
            raise ValueError("queue_capacity_bytes must be positive")
        if self.jitter_std_s < 0:
            raise ValueError("jitter_std_s must be non-negative")
        if self.drop_block_size is not None and self.drop_block_size < 1:
            raise ValueError("drop_block_size must be at least 1")


@dataclass
class PathStats:
    """Counters exposed by the emulated path."""

    packets_offered: int = 0
    packets_delivered: int = 0
    packets_lost_random: int = 0
    packets_dropped_queue: int = 0
    bytes_delivered: int = 0
    max_queue_bytes: int = 0

    @property
    def delivery_ratio(self) -> float:
        if self.packets_offered == 0:
            return 1.0
        return self.packets_delivered / self.packets_offered

    @property
    def loss_ratio(self) -> float:
        return 1.0 - self.delivery_ratio


class EmulatedPath:
    """A one-way emulated network path driven by an :class:`EventLoop`.

    Packets entering the path are serialised through a bandwidth-limited
    queue (drop-tail when the backlog exceeds the configured capacity), then
    experience the propagation delay plus optional Gaussian jitter, then are
    delivered to the configured callback.  Random loss is applied on entry,
    modelling loss on the bottleneck.
    """

    def __init__(
        self,
        loop: EventLoop,
        config: PathConfig,
        deliver: Callable[[Packet, float], None],
        deliver_block: Optional[Callable[[Any, np.ndarray, np.ndarray, int, bool], None]] = None,
        lazy_dequeue: Optional[bool] = None,
        deliver_single: Optional[Callable[[Any, int, float], None]] = None,
    ) -> None:
        self.loop = loop
        self.config = config
        self._deliver = deliver
        #: Block-delivery callback ``(context, offsets, arrivals, bytes,
        #: ordered)`` — ``ordered`` means offsets are contiguous and
        #: arrivals non-decreasing.
        #: When set, :meth:`send_block` is available and the path defaults to
        #: event-free lazy queue draining (see :meth:`_drain_queue`);
        #: ``lazy_dequeue`` overrides that default (the transport enables it
        #: for the feedback path alongside block mode).
        self._deliver_block = deliver_block
        #: Per-packet block-delivery callback ``(context, offset, arrival)``.
        #: When set (instead of ``deliver_block``), :meth:`send_block` still
        #: batches drop decisions, admission, serialisation and jitter in
        #: numpy, but schedules one arrival event per delivered packet — in
        #: burst order at send time, exactly like per-packet :meth:`send`
        #: calls, so the event-loop insertion order (and therefore every
        #: same-instant tie-break) matches the scalar path bit-for-bit.  The
        #: FEC transport uses this: parity decode decisions are coupled to
        #: individual arrival instants in ways run-granular delivery does
        #: not reproduce.
        self._deliver_single = deliver_single
        if deliver_block is not None and deliver_single is not None:
            raise ValueError("deliver_block and deliver_single are mutually exclusive")
        self._lazy_dequeue = (
            (deliver_block is not None or deliver_single is not None)
            if lazy_dequeue is None
            else lazy_dequeue
        )
        # FIFO of [finish_times, cumulative_bytes, consumed_pos] chunks; the
        # link serialises in order, so finish times are globally monotone
        # across chunks and draining front-to-back is exact.
        self._pending_dequeue: deque[list] = deque()
        self._rng = np.random.default_rng(config.seed)
        # Jitter draws come from their own stream so that drop decisions for
        # a given seed are identical whether drawn per packet or in blocks
        # (interleaved normal draws would shift the uniform stream).
        self._jitter_rng = np.random.default_rng((config.seed, 0x6A177E12))
        block = config.drop_block_size
        if block is None:
            block = DEFAULT_DROP_BLOCK_SIZE if fastpath_enabled() else 1
        if not hasattr(config.loss_model, "sample_drops"):
            # Duck-typed models that only implement should_drop stay scalar.
            block = 1
        self._drop_block_size = int(block)
        self._drop_block_np = np.zeros(0, dtype=bool)
        if block > 1:
            # Block refill draws decisions ahead of consumption, which would
            # advance a *shared* stateful model (Gilbert-Elliott chain state)
            # past what this path actually sent.  The path therefore owns a
            # snapshot of the model taken at construction; callers that need
            # one chain threaded across several paths/sessions must use
            # ``drop_block_size=1`` (exact scalar semantics).
            import copy

            self._loss_model = copy.deepcopy(config.loss_model)
        else:
            self._loss_model = config.loss_model
        self._drop_block: list[bool] = []
        self._drop_pos = 0
        # Per-burst derived arrays memoised on the sizes array's identity:
        # fixed-bitrate senders offer the same (memoised) sizes array every
        # frame, so cumulative bytes and bit counts never change.  Two MRU
        # slots, because an FEC sender alternates two arrays per frame (the
        # data burst's sizes and the parity burst's); the held references
        # keep the arrays alive, so identity comparison stays sound.
        self._burst_memo: list[list] = []
        self._ser_scratch = np.empty(96)
        self._queue_bytes = 0
        # Time at which the transmitter finishes serialising the last queued packet.
        self._link_free_at = 0.0
        self.stats = PathStats()

    def _should_drop(self) -> bool:
        """Next drop decision, refilled from the loss model in blocks.

        With a block size of 1 this degenerates to the scalar per-packet
        path; either way the decision sequence for a given seed is identical
        because block sampling consumes the RNG stream in the same order.
        """
        if self._drop_block_size <= 1:
            return self._loss_model.should_drop(self._rng)
        pos = self._drop_pos
        if pos >= len(self._drop_block):
            self._drop_block_np = self._loss_model.sample_drops(
                self._rng, self._drop_block_size
            )
            self._drop_block = self._drop_block_np.tolist()
            pos = 0
        self._drop_pos = pos + 1
        return self._drop_block[pos]

    def _take_drops(self, n: int) -> np.ndarray:
        """Consume ``n`` consecutive drop decisions as a boolean array.

        Shares the refill buffer with :meth:`_should_drop`, so mixing block
        sends and per-packet sends (retransmissions) consumes the loss
        model's RNG stream exactly as ``n`` scalar calls would.
        """
        if self._drop_block_size <= 1:
            return np.fromiter(
                (self._loss_model.should_drop(self._rng) for _ in range(n)),
                dtype=bool,
                count=n,
            )
        pos = self._drop_pos
        block = self._drop_block_np
        if len(block) - pos >= n:
            self._drop_pos = pos + n
            return block[pos : pos + n]
        parts = [block[pos:]]
        need = n - (len(block) - pos)
        while need > 0:
            fresh = self._loss_model.sample_drops(self._rng, self._drop_block_size)
            take = min(need, len(fresh))
            parts.append(fresh[:take])
            if take < len(fresh):
                self._drop_block_np = fresh
                self._drop_pos = take
            else:
                self._drop_block_np = np.zeros(0, dtype=bool)
                self._drop_pos = 0
            need -= take
        # Keep the scalar consumer's list view in sync with the refill.
        self._drop_block = self._drop_block_np.tolist()
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    def _current_bandwidth(self, time: float) -> float:
        if self.config.bandwidth_trace is not None:
            return self.config.bandwidth_trace.rate_at(time)
        return self.config.bandwidth_bps

    def _drain_queue(self, now: float) -> None:
        """Release queued bytes whose serialisation finished by ``now``.

        The scalar path schedules one dequeue event per packet; in block
        mode the same releases happen lazily at the points where queue
        occupancy is actually read (sends and the ``queued_bytes`` property),
        which are exactly the instants whose observations matter.
        """
        pending = self._pending_dequeue
        while pending:
            entry = pending[0]
            if len(entry) == 2:  # single packet: (finish, size)
                if entry[0] > now:
                    return
                self._queue_bytes -= entry[1]
                pending.popleft()
                continue
            finishes, cum_bytes, pos = entry
            if finishes[pos] > now:
                return
            if finishes[-1] <= now:  # whole chunk expired (the common case)
                self._queue_bytes -= int(cum_bytes[-1] - cum_bytes[pos])
                pending.popleft()
                continue
            idx = int(np.searchsorted(finishes, now, side="right"))
            self._queue_bytes -= int(cum_bytes[idx] - cum_bytes[pos])
            entry[2] = idx
            return

    @property
    def queued_bytes(self) -> int:
        if self._lazy_dequeue:
            self._drain_queue(self.loop.now)
        return self._queue_bytes

    def queueing_delay(self) -> float:
        """Current queueing delay a newly arriving packet would observe."""
        return max(0.0, self._link_free_at - self.loop.now)

    def send(self, packet: Packet) -> bool:
        """Offer a packet to the path.  Returns False when the packet is lost
        or dropped before delivery (the caller only learns through missing
        acknowledgements, as on a real network)."""
        self.stats.packets_offered += 1
        now = self.loop.now

        if self._should_drop():
            self.stats.packets_lost_random += 1
            return False

        if self._lazy_dequeue:
            self._drain_queue(now)
        if self._queue_bytes + packet.size_bytes > self.config.queue_capacity_bytes:
            self.stats.packets_dropped_queue += 1
            return False

        bandwidth = self._current_bandwidth(now)
        serialization = packet.size_bits / bandwidth
        start = max(now, self._link_free_at)
        finish = start + serialization
        self._link_free_at = finish
        self._queue_bytes += packet.size_bytes
        self.stats.max_queue_bytes = max(self.stats.max_queue_bytes, self._queue_bytes)

        jitter = 0.0
        if self.config.jitter_std_s > 0:
            jitter = abs(float(self._jitter_rng.normal(0.0, self.config.jitter_std_s)))
        arrival = finish + self.config.propagation_delay_s + jitter

        def _arrive() -> None:
            self.stats.packets_delivered += 1
            self.stats.bytes_delivered += packet.size_bytes
            self._deliver(packet, self.loop.now)

        if self._lazy_dequeue:
            self._pending_dequeue.append((finish, packet.size_bytes))
        else:

            def _dequeue() -> None:
                self._queue_bytes -= packet.size_bytes

            self.loop.schedule_at(finish, _dequeue)
        self.loop.schedule_at(arrival, _arrive)
        return True

    def send_block(self, sizes: np.ndarray, context: Any) -> None:
        """Offer one frame burst to the path, batched.

        Computes drop decisions, drop-tail admission, serialisation and
        jitter for the whole burst with numpy — consuming the loss-model and
        jitter RNG streams exactly as per-packet :meth:`send` calls would —
        and schedules **one** arrival event per contiguous delivered run
        (one per burst under jitter, whose reordering can interleave runs).
        Each event hands the run to the block-delivery callback as
        ``(context, offsets, arrival_times, bytes)``; per-packet arrival
        times are exact, so receiver bookkeeping keyed on them observes the
        same timeline as per-packet delivery.
        """
        n = len(sizes)
        if n == 0:
            return
        stats = self.stats
        stats.packets_offered += n
        now = self.loop.now

        drops = self._take_drops(n)
        lost = int(np.count_nonzero(drops))
        if lost:
            stats.packets_lost_random += lost
            keep = np.flatnonzero(~drops)
        else:
            keep = np.arange(n, dtype=np.int64)
        if not len(keep):
            return

        self._drain_queue(now)
        if lost:
            kept_sizes = sizes[keep]
            cum = np.cumsum(kept_sizes)
            bits = kept_sizes * 8
            pcum = None
        else:
            kept_sizes = sizes
            memo = self._burst_memo
            for index, entry in enumerate(memo):
                if entry[0] is sizes:
                    _, cum, bits, pcum = entry
                    if index:
                        del memo[index]
                        memo.insert(0, entry)
                    break
            else:
                cum = np.cumsum(sizes)
                bits = sizes * 8
                pcum = np.concatenate((np.zeros(1, dtype=np.int64), cum))
                memo.insert(0, [sizes, cum, bits, pcum])
                del memo[2:]
        capacity = self.config.queue_capacity_bytes
        if self._queue_bytes + int(cum[-1]) > capacity:
            # Rare overflow: replicate per-packet drop-tail admission (a
            # rejected packet leaves the backlog unchanged, so later smaller
            # packets may still fit).
            admitted: list[int] = []
            backlog = self._queue_bytes
            for offset, size in zip(keep.tolist(), kept_sizes.tolist()):
                if backlog + size > capacity:
                    stats.packets_dropped_queue += 1
                else:
                    backlog += size
                    admitted.append(offset)
            if not admitted:
                return
            keep = np.array(admitted, dtype=np.int64)
            kept_sizes = sizes[keep]
            cum = np.cumsum(kept_sizes)
            bits = kept_sizes * 8
            pcum = None

        total_bytes = int(cum[-1])
        bandwidth = self._current_bandwidth(now)
        start = max(now, self._link_free_at)
        # ``sizes * 8`` stays exact in int64; the division then rounds
        # exactly like the scalar path's per-packet ``size_bits / bandwidth``
        # and the cumulative sum accumulates left-to-right exactly like its
        # sequential ``finish = finish + serialization``.
        kept_count = len(bits)
        scratch = self._ser_scratch
        if len(scratch) < kept_count + 1:
            self._ser_scratch = scratch = np.empty(2 * kept_count + 2)
        scratch[0] = start
        np.divide(bits, bandwidth, out=scratch[1 : kept_count + 1])
        finishes = scratch[: kept_count + 1].cumsum()[1:]
        self._link_free_at = float(finishes[-1])
        self._queue_bytes += total_bytes
        if self._queue_bytes > stats.max_queue_bytes:
            stats.max_queue_bytes = self._queue_bytes
        if pcum is None:
            pcum = np.concatenate((np.zeros(1, dtype=np.int64), cum))
        self._pending_dequeue.append([finishes, pcum, 0])

        arrivals = finishes + self.config.propagation_delay_s
        jittered = self.config.jitter_std_s > 0
        if jittered:
            arrivals = arrivals + np.abs(
                self._jitter_rng.normal(0.0, self.config.jitter_std_s, size=len(keep))
            )

        if self._deliver_single is not None:
            # Per-packet delivery: one event per surviving packet, inserted
            # now in burst order — the same heap insertion order per-packet
            # send() calls would produce, so same-instant ties with timers
            # resolve identically to the scalar path.
            deliver = self._deliver_single
            loop = self.loop
            for offset, arrival, size in zip(
                keep.tolist(), arrivals.tolist(), kept_sizes.tolist()
            ):

                def _arrive_one(offset: int = offset, size: int = size) -> None:
                    stats.packets_delivered += 1
                    stats.bytes_delivered += size
                    deliver(context, offset, loop.now)

                loop.schedule_at(arrival, _arrive_one)
            return

        if jittered:
            # Reordered arrivals can interleave runs, so the whole burst is
            # one delivery unit at its earliest arrival.
            self._schedule_run(context, keep, arrivals, total_bytes, False)
        elif len(keep) != n:  # random losses and/or queue drops fragment the burst
            breaks = np.flatnonzero(np.diff(keep) > 1) + 1
            bounds = np.concatenate(([0], breaks, [len(keep)]))
            for a, b in zip(bounds[:-1].tolist(), bounds[1:].tolist()):
                self._schedule_run(
                    context,
                    keep[a:b],
                    arrivals[a:b],
                    int(cum[b - 1] - (cum[a - 1] if a else 0)),
                    True,
                )
        else:
            self._schedule_run(context, keep, arrivals, total_bytes, True)

    def _schedule_run(
        self, context: Any, offsets: np.ndarray, arrivals: np.ndarray, run_bytes: int, ordered: bool
    ) -> None:
        """One loop event delivers the whole run at its earliest arrival.

        Arrivals beyond the loop's current run horizon are *not* delivered
        by that event: the run splits and the remainder waits on its own
        event at its earliest arrival, which only fires if the simulation
        is driven further — exactly the portion per-packet scheduling would
        leave unexecuted at the horizon.
        """
        event_time = float(arrivals[0]) if ordered else float(np.min(arrivals))

        def _arrive_run() -> None:
            horizon = self.loop.horizon
            tail = float(arrivals[-1]) if ordered else float(np.max(arrivals))
            if tail <= horizon:
                self.stats.packets_delivered += len(offsets)
                self.stats.bytes_delivered += run_bytes
                self._deliver_block(context, offsets, arrivals, run_bytes, ordered)
                return
            within = arrivals <= horizon
            head = int(np.count_nonzero(within)) if ordered else within
            if ordered:
                head_offsets, head_arrivals = offsets[:head], arrivals[:head]
                rest_offsets, rest_arrivals = offsets[head:], arrivals[head:]
            else:
                head_offsets, head_arrivals = offsets[within], arrivals[within]
                rest_offsets, rest_arrivals = offsets[~within], arrivals[~within]
            sizes = np.fromiter(
                (context.packet_size(int(o)) for o in head_offsets),
                dtype=np.int64,
                count=len(head_offsets),
            )
            head_bytes = int(sizes.sum())
            if len(head_offsets):
                self.stats.packets_delivered += len(head_offsets)
                self.stats.bytes_delivered += head_bytes
                self._deliver_block(context, head_offsets, head_arrivals, head_bytes, ordered)
            self._schedule_run(
                context, rest_offsets, rest_arrivals, run_bytes - head_bytes, ordered
            )

        self.loop.schedule_at(event_time, _arrive_run)


class SymmetricPathPair:
    """An uplink/downlink pair sharing an event loop.

    The paper notes that AI Video Chat is asymmetric: video flows uplink only
    while the MLLM reply (audio or text tokens) flows downlink at a much
    lower rate.  The pair lets the transport model both directions, including
    the feedback channel used for NACKs.
    """

    def __init__(
        self,
        loop: EventLoop,
        uplink_config: PathConfig,
        downlink_config: PathConfig,
        deliver_uplink: Callable[[Packet, float], None],
        deliver_downlink: Callable[[Packet, float], None],
    ) -> None:
        self.uplink = EmulatedPath(loop, uplink_config, deliver_uplink)
        self.downlink = EmulatedPath(loop, downlink_config, deliver_downlink)
