"""Network path emulation.

The paper's prototype runs a WebRTC-style transport over an emulated link
with a configured bandwidth (10 Mbps), one-way propagation delay (30 ms) and
a swept packet-loss rate.  This module provides that emulated path as a
bandwidth-limited drop-tail queue with serialisation delay, propagation
delay, optional delay jitter, and pluggable loss models (Bernoulli i.i.d.
loss and a two-state Gilbert-Elliott bursty-loss model), plus a trace-driven
bandwidth schedule for time-varying links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from .events import EventLoop
from .packet import Packet


class LossModel:
    """Interface for packet-loss processes."""

    def should_drop(self, rng: np.random.Generator) -> bool:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass
class BernoulliLoss(LossModel):
    """Independent and identically distributed packet loss."""

    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")

    def should_drop(self, rng: np.random.Generator) -> bool:
        if self.loss_rate <= 0.0:
            return False
        return bool(rng.random() < self.loss_rate)


@dataclass
class GilbertElliottLoss(LossModel):
    """Two-state bursty loss: a good state and a bad (lossy) state.

    ``p_good_to_bad`` and ``p_bad_to_good`` are per-packet transition
    probabilities; ``loss_in_bad`` (and optionally ``loss_in_good``) give the
    drop probability within each state.  This captures the bursty loss that
    makes per-frame retransmission rounds expensive in interactive video.
    """

    p_good_to_bad: float = 0.01
    p_bad_to_good: float = 0.3
    loss_in_bad: float = 0.5
    loss_in_good: float = 0.0
    _in_bad_state: bool = field(default=False, repr=False)

    def should_drop(self, rng: np.random.Generator) -> bool:
        if self._in_bad_state:
            if rng.random() < self.p_bad_to_good:
                self._in_bad_state = False
        else:
            if rng.random() < self.p_good_to_bad:
                self._in_bad_state = True
        loss = self.loss_in_bad if self._in_bad_state else self.loss_in_good
        return bool(rng.random() < loss)

    @property
    def steady_state_loss(self) -> float:
        """Long-run average loss probability of the chain."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        if denom == 0:
            return self.loss_in_good
        p_bad = self.p_good_to_bad / denom
        return p_bad * self.loss_in_bad + (1 - p_bad) * self.loss_in_good


@dataclass
class BandwidthTrace:
    """A piecewise-constant bandwidth schedule.

    ``times`` are the instants (seconds) at which a new rate takes effect and
    ``rates_bps`` the corresponding link rates.  Before the first instant the
    first rate applies.
    """

    times: Sequence[float]
    rates_bps: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.rates_bps):
            raise ValueError("times and rates_bps must have equal length")
        if len(self.times) == 0:
            raise ValueError("trace must contain at least one entry")
        if any(t1 < t0 for t0, t1 in zip(self.times, list(self.times)[1:])):
            raise ValueError("trace times must be non-decreasing")
        if any(rate <= 0 for rate in self.rates_bps):
            raise ValueError("trace rates must be positive")

    def rate_at(self, time: float) -> float:
        rate = self.rates_bps[0]
        for instant, value in zip(self.times, self.rates_bps):
            if instant <= time:
                rate = value
            else:
                break
        return float(rate)

    @property
    def mean_rate_bps(self) -> float:
        """Time-weighted mean rate over the trace's defined horizon.

        Each rate is weighted by how long it holds (the gap to the next
        breakpoint); the final rate holds forever, so it is excluded unless
        the trace has a single entry or zero total width.
        """
        times = np.asarray(self.times, dtype=float)
        rates = np.asarray(self.rates_bps, dtype=float)
        if len(times) < 2:
            return float(rates[0])
        widths = np.diff(times)
        total = float(np.sum(widths))
        low = float(np.min(rates))
        high = float(np.max(rates))
        if total <= 0.0:
            mean = float(np.mean(rates))
        else:
            mean = float(np.sum(widths * rates[:-1]) / total)
        # Accumulated rounding can land the weighted mean a few ULPs outside
        # [min, max]; the true mean is always within the rate range.
        return min(max(mean, low), high)


# ---------------------------------------------------------------------------
# JSON-friendly specs: scenario grids (see repro.analysis.sweeps) describe
# loss models and bandwidth traces as plain dicts so they can be hashed,
# persisted, and shipped across process boundaries, then rebuilt here.
# ---------------------------------------------------------------------------


def loss_model_from_spec(spec: Optional[dict]) -> LossModel:
    """Build a loss model from a plain-dict spec (``{"kind": ..., params}``)."""
    if spec is None:
        return BernoulliLoss(0.0)
    kind = spec.get("kind", "bernoulli")
    params = {k: v for k, v in spec.items() if k != "kind"}
    if kind == "bernoulli":
        return BernoulliLoss(**params)
    if kind == "gilbert_elliott":
        return GilbertElliottLoss(**params)
    raise ValueError(f"unknown loss model kind: {kind!r}")


def loss_model_to_spec(model: LossModel) -> dict:
    """Inverse of :func:`loss_model_from_spec` for the built-in models."""
    if isinstance(model, BernoulliLoss):
        return {"kind": "bernoulli", "loss_rate": model.loss_rate}
    if isinstance(model, GilbertElliottLoss):
        return {
            "kind": "gilbert_elliott",
            "p_good_to_bad": model.p_good_to_bad,
            "p_bad_to_good": model.p_bad_to_good,
            "loss_in_bad": model.loss_in_bad,
            "loss_in_good": model.loss_in_good,
        }
    raise ValueError(f"cannot build a spec for {type(model).__name__}")


def bandwidth_trace_from_spec(spec: Optional[dict]) -> Optional["BandwidthTrace"]:
    if spec is None:
        return None
    return BandwidthTrace(times=list(spec["times"]), rates_bps=list(spec["rates_bps"]))


def bandwidth_trace_to_spec(trace: Optional["BandwidthTrace"]) -> Optional[dict]:
    if trace is None:
        return None
    return {"times": list(trace.times), "rates_bps": list(trace.rates_bps)}


def expected_loss_rate(model: LossModel, samples: int = 20_000, seed: int = 0) -> float:
    """Long-run drop probability of a loss model.

    Analytic for the built-in models; an empirical estimate (on a copy, so
    stateful models are not perturbed) for anything else.
    """
    if isinstance(model, BernoulliLoss):
        return model.loss_rate
    if isinstance(model, GilbertElliottLoss):
        return model.steady_state_loss
    import copy

    probe = copy.deepcopy(model)
    rng = np.random.default_rng(seed)
    drops = sum(probe.should_drop(rng) for _ in range(samples))
    return drops / max(samples, 1)


@dataclass
class PathConfig:
    """Configuration of an emulated network path.

    The defaults match the paper's measurement setup: 10 Mbps bottleneck,
    30 ms one-way propagation delay.
    """

    bandwidth_bps: float = 10_000_000.0
    propagation_delay_s: float = 0.030
    loss_model: LossModel = field(default_factory=BernoulliLoss)
    queue_capacity_bytes: int = 300_000
    jitter_std_s: float = 0.0
    bandwidth_trace: Optional[BandwidthTrace] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be positive")
        if self.propagation_delay_s < 0:
            raise ValueError("propagation_delay_s must be non-negative")
        if self.queue_capacity_bytes <= 0:
            raise ValueError("queue_capacity_bytes must be positive")
        if self.jitter_std_s < 0:
            raise ValueError("jitter_std_s must be non-negative")


@dataclass
class PathStats:
    """Counters exposed by the emulated path."""

    packets_offered: int = 0
    packets_delivered: int = 0
    packets_lost_random: int = 0
    packets_dropped_queue: int = 0
    bytes_delivered: int = 0
    max_queue_bytes: int = 0

    @property
    def delivery_ratio(self) -> float:
        if self.packets_offered == 0:
            return 1.0
        return self.packets_delivered / self.packets_offered

    @property
    def loss_ratio(self) -> float:
        return 1.0 - self.delivery_ratio


class EmulatedPath:
    """A one-way emulated network path driven by an :class:`EventLoop`.

    Packets entering the path are serialised through a bandwidth-limited
    queue (drop-tail when the backlog exceeds the configured capacity), then
    experience the propagation delay plus optional Gaussian jitter, then are
    delivered to the configured callback.  Random loss is applied on entry,
    modelling loss on the bottleneck.
    """

    def __init__(
        self,
        loop: EventLoop,
        config: PathConfig,
        deliver: Callable[[Packet, float], None],
    ) -> None:
        self.loop = loop
        self.config = config
        self._deliver = deliver
        self._rng = np.random.default_rng(config.seed)
        self._queue_bytes = 0
        # Time at which the transmitter finishes serialising the last queued packet.
        self._link_free_at = 0.0
        self.stats = PathStats()

    def _current_bandwidth(self, time: float) -> float:
        if self.config.bandwidth_trace is not None:
            return self.config.bandwidth_trace.rate_at(time)
        return self.config.bandwidth_bps

    @property
    def queued_bytes(self) -> int:
        return self._queue_bytes

    def queueing_delay(self) -> float:
        """Current queueing delay a newly arriving packet would observe."""
        return max(0.0, self._link_free_at - self.loop.now)

    def send(self, packet: Packet) -> bool:
        """Offer a packet to the path.  Returns False when the packet is lost
        or dropped before delivery (the caller only learns through missing
        acknowledgements, as on a real network)."""
        self.stats.packets_offered += 1
        now = self.loop.now

        if self.config.loss_model.should_drop(self._rng):
            self.stats.packets_lost_random += 1
            return False

        if self._queue_bytes + packet.size_bytes > self.config.queue_capacity_bytes:
            self.stats.packets_dropped_queue += 1
            return False

        bandwidth = self._current_bandwidth(now)
        serialization = packet.size_bits / bandwidth
        start = max(now, self._link_free_at)
        finish = start + serialization
        self._link_free_at = finish
        self._queue_bytes += packet.size_bytes
        self.stats.max_queue_bytes = max(self.stats.max_queue_bytes, self._queue_bytes)

        jitter = 0.0
        if self.config.jitter_std_s > 0:
            jitter = abs(float(self._rng.normal(0.0, self.config.jitter_std_s)))
        arrival = finish + self.config.propagation_delay_s + jitter

        def _dequeue() -> None:
            self._queue_bytes -= packet.size_bytes

        def _arrive() -> None:
            self.stats.packets_delivered += 1
            self.stats.bytes_delivered += packet.size_bytes
            self._deliver(packet, self.loop.now)

        self.loop.schedule_at(finish, _dequeue)
        self.loop.schedule_at(arrival, _arrive)
        return True


class SymmetricPathPair:
    """An uplink/downlink pair sharing an event loop.

    The paper notes that AI Video Chat is asymmetric: video flows uplink only
    while the MLLM reply (audio or text tokens) flows downlink at a much
    lower rate.  The pair lets the transport model both directions, including
    the feedback channel used for NACKs.
    """

    def __init__(
        self,
        loop: EventLoop,
        uplink_config: PathConfig,
        downlink_config: PathConfig,
        deliver_uplink: Callable[[Packet, float], None],
        deliver_downlink: Callable[[Packet, float], None],
    ) -> None:
        self.uplink = EmulatedPath(loop, uplink_config, deliver_uplink)
        self.downlink = EmulatedPath(loop, downlink_config, deliver_downlink)
