"""Sender control plane: RTCP-style receiver reports and pluggable controllers.

The paper's end-to-end turn depends on the sender *adapting* to the network.
This module closes that loop.  The receiver periodically summarises what it
observed on the wire (receive rate, loss fraction, one-way delay, highest
sequence) into a :class:`ReceiverReport` that rides the same feedback
:class:`~repro.net.emulator.EmulatedPath` as NACKs.  On the sender side a
:class:`SenderController` turns each report into a :class:`ControlAction` —
a target bitrate plus an optional FEC redundancy ratio — which the transport
session applies to the :class:`~repro.net.transport.VideoSender` and its
:class:`~repro.net.fec.FecEncoder`.

Two invariants shape the implementation:

* **Mode equivalence.**  Report timing and contents must be bit-identical
  between the scalar per-packet delivery path and the batched block fastpath.
  :class:`ReportCollector` achieves this by recording raw per-packet samples
  (in whatever order the active delivery mode produces them), firing on the
  absolute ``k * interval_s`` deadline grid, including only samples that
  arrived strictly before the firing instant, and canonically ordering the
  included set before any float aggregation.
* **Determinism.**  Controllers are built from JSON-able specs (mirroring the
  ``LossModel`` / ``BandwidthTrace`` factories in ``emulator.py``) so sweep
  cells stay content-hash cacheable, and they draw no hidden randomness —
  the ``seed`` field is carried through specs for policies that will need it
  (learned controllers), keeping reprolint's rng-discipline rule trivially
  satisfied today.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Any, Optional

from .abr import AbrPolicy, AiOrientedAbr, BufferBasedAbr, ThroughputAbr
from .congestion import (
    AimdConfig,
    AimdController,
    BandwidthEstimator,
    GccConfig,
    GoogleCongestionControl,
    RateSample,
)

__all__ = [
    "REPORT_SIZE_BYTES",
    "ClosedLoopController",
    "ControlAction",
    "FixedController",
    "ReceiverReport",
    "ReportCollector",
    "SenderController",
    "abr_policy_from_spec",
    "abr_policy_to_spec",
    "controller_from_spec",
    "controller_to_spec",
    "estimator_from_spec",
    "estimator_to_spec",
    "fec_group_size_for_overhead",
    "preset_controller_spec",
]

#: Wire size charged to one receiver report on the feedback path.  Roughly an
#: RTCP RR plus a transport-wide-feedback style delay block.
REPORT_SIZE_BYTES = 64


@dataclass(slots=True)
class ReceiverReport:
    """RTCP-style receiver report summarising one feedback window."""

    #: Instant the report was generated (receiver clock == simulation clock).
    report_time: float
    #: Width of the window the rate figure averages over.
    window_s: float
    #: Received wire bytes (video + retransmission + FEC) over the window.
    receive_rate_bps: float
    #: Fraction of expected video-sequence slots not received this window.
    loss_fraction: float
    #: Mean one-way delay over the window's wire packets.
    one_way_delay_s: float
    #: Up to ``max_delay_samples`` raw one-way-delay samples, arrival order.
    delay_samples: tuple[float, ...]
    #: Cumulative highest video/retransmission sequence seen so far.
    highest_sequence: int
    #: Video-sequence-space wire packets received this window.
    received_packets: int
    #: New video-sequence slots expected this window (highest-seq delta).
    expected_packets: int


@dataclass(slots=True)
class ControlAction:
    """One sender-side control decision derived from a receiver report."""

    target_bitrate_bps: float
    #: Desired parity/data ratio; ``None`` leaves FEC sizing untouched.
    fec_overhead_ratio: Optional[float] = None
    reason: str = ""


def fec_group_size_for_overhead(ratio: float, max_group_size: int = 64) -> int:
    """Map a redundancy ratio (parity bytes per data byte) to a group size.

    ``FecConfig.group_size = g`` yields one parity packet per ``g`` data
    packets, i.e. an overhead of ``1/g``; the inverse is rounded and clamped
    to ``[1, max_group_size]``.
    """
    if ratio <= 0:
        raise ValueError("FEC overhead ratio must be positive")
    return int(min(max(round(1.0 / ratio), 1), max_group_size))


class ReportCollector:
    """Receiver-side accounting behind the RTCP-style report chain.

    Wire-packet samples are recorded as they arrive (in either delivery mode)
    and aggregated at deadline instants on the absolute ``k * interval_s``
    grid.  Only samples that arrived strictly before the firing instant enter
    a report — same-instant samples wait for the next window — and the
    included set is sorted canonically before any float aggregation, so the
    scalar and block delivery paths produce bit-identical report sequences
    even though they record samples in different orders.

    The deadline chain is demand-driven so ``EventLoop.run_until_idle`` still
    converges: :meth:`record` returns a deadline only when the chain is
    dormant (or must fire earlier than currently armed), and :meth:`collect`
    returns the next fire time only while there is (or was) something to
    report.

    Fire instants live on an *integer* tick index: every deadline is computed
    as ``tick * interval_s`` from the same integer, never by accumulating
    floats or re-dividing a grid point, so the two delivery modes can never
    disagree by a ulp about when a window closes.  A fire whose tick no
    longer matches the collector's (it was superseded by an earlier arming —
    possible when an unordered run records out of arrival order) is a no-op.
    """

    __slots__ = (
        "interval_s",
        "max_delay_samples",
        "_pending",
        "_last_report_time",
        "_highest_sequence",
        "_armed",
        "_tick",
    )

    def __init__(self, interval_s: float, max_delay_samples: int = 16) -> None:
        if interval_s <= 0:
            raise ValueError("report interval must be positive")
        self.interval_s = float(interval_s)
        self.max_delay_samples = int(max_delay_samples)
        #: Pending samples: (arrival_time, sequence, one_way_delay, size_bytes).
        #: ``sequence`` is the video-space sequence, or -1 for packets outside
        #: that space (FEC parity), which count towards rate/delay only.
        self._pending: list[tuple[float, int, float, int]] = []
        self._last_report_time = 0.0
        self._highest_sequence = -1
        self._armed = False
        self._tick = 0

    @property
    def highest_sequence(self) -> int:
        return self._highest_sequence

    def record(
        self, arrival_time: float, send_time: float, size_bytes: int, sequence: int
    ) -> Optional[tuple[int, float]]:
        """Record one wire packet; returns ``(tick, deadline)`` to arm, if any.

        The deadline is derived from the *sample's* arrival timestamp (not
        the caller's clock) so the fastpath — which records whole runs at the
        first packet's arrival — arms the exact instant the scalar path
        would.  A non-``None`` return supersedes any earlier arming.
        """
        self._pending.append(
            (arrival_time, sequence, max(0.0, arrival_time - send_time), size_bytes)
        )
        tick = int(math.floor(arrival_time / self.interval_s)) + 1
        if self._armed and tick >= self._tick:
            return None
        self._armed = True
        self._tick = tick
        return tick, tick * self.interval_s

    def collect(
        self, now: float, tick: int
    ) -> tuple[Optional[ReceiverReport], Optional[tuple[int, float]]]:
        """Aggregate at a deadline instant; returns (report, next arming).

        The report is ``None`` when no sample arrived strictly before ``now``;
        the arming is ``None`` when the chain should go dormant (no samples
        included and none pending).  A stale ``tick`` returns (None, None).
        """
        if not self._armed or tick != self._tick:
            return None, None
        included = [sample for sample in self._pending if sample[0] < now]
        if len(included) < len(self._pending):
            self._pending = [sample for sample in self._pending if not sample[0] < now]
        else:
            self._pending = []
        report = None
        if included:
            included.sort()
            window = max(now - self._last_report_time, 1e-9)
            total_bytes = 0
            delay_sum = 0.0
            highest = self._highest_sequence
            received_video = 0
            for _, sequence, delay, size_bytes in included:
                total_bytes += size_bytes
                delay_sum += delay
                if sequence >= 0:
                    received_video += 1
                    if sequence > highest:
                        highest = sequence
            expected = highest - self._highest_sequence
            loss = 0.0
            if expected > 0:
                loss = min(max(1.0 - received_video / expected, 0.0), 1.0)
            report = ReceiverReport(
                report_time=now,
                window_s=window,
                receive_rate_bps=total_bytes * 8.0 / window,
                loss_fraction=loss,
                one_way_delay_s=delay_sum / len(included),
                delay_samples=tuple(
                    sample[2] for sample in included[: self.max_delay_samples]
                ),
                highest_sequence=highest,
                received_packets=received_video,
                expected_packets=max(expected, 0),
            )
            self._highest_sequence = highest
            self._last_report_time = now
        if included or self._pending:
            self._tick += 1
            return report, (self._tick, self._tick * self.interval_s)
        self._armed = False
        return report, None


class SenderController:
    """Interface for sender-side policies driven by receiver reports."""

    def initial_action(self) -> ControlAction:  # pragma: no cover - interface
        raise NotImplementedError

    def on_report(
        self, report: ReceiverReport, now: float
    ) -> ControlAction:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass(slots=True)
class FixedController(SenderController):
    """Open-loop baseline: ignores reports and holds a constant action."""

    bitrate_bps: float = 2_000_000.0
    fec_overhead_ratio: Optional[float] = None

    def initial_action(self) -> ControlAction:
        return ControlAction(
            target_bitrate_bps=self.bitrate_bps,
            fec_overhead_ratio=self.fec_overhead_ratio,
            reason="fixed",
        )

    def on_report(self, report: ReceiverReport, now: float) -> ControlAction:
        return self.initial_action()


class ClosedLoopController(SenderController):
    """Compose a :class:`BandwidthEstimator` with an :class:`AbrPolicy`.

    Each report is converted into a :class:`RateSample` for the estimator;
    the ABR policy then picks the target bitrate from the fresh estimate.
    FEC redundancy is either held at ``fec_overhead_ratio`` or, with
    ``adapt_fec``, scaled with the reported loss fraction (clamped to
    ``[fec_min_overhead, fec_max_overhead]``).
    """

    def __init__(
        self,
        estimator: BandwidthEstimator,
        abr: AbrPolicy,
        *,
        fec_overhead_ratio: Optional[float] = None,
        adapt_fec: bool = False,
        fec_min_overhead: float = 0.05,
        fec_max_overhead: float = 0.5,
        fec_loss_multiplier: float = 2.0,
        seed: int = 0,
    ) -> None:
        self.estimator = estimator
        self.abr = abr
        self.fec_overhead_ratio = fec_overhead_ratio
        self.adapt_fec = bool(adapt_fec)
        self.fec_min_overhead = float(fec_min_overhead)
        self.fec_max_overhead = float(fec_max_overhead)
        self.fec_loss_multiplier = float(fec_loss_multiplier)
        #: Carried through specs for stochastic policies (learned controllers);
        #: the classic estimator/ABR compositions draw no randomness.
        self.seed = int(seed)

    def _fec_overhead(self, loss_fraction: float) -> Optional[float]:
        if not self.adapt_fec:
            return self.fec_overhead_ratio
        return min(
            max(loss_fraction * self.fec_loss_multiplier, self.fec_min_overhead),
            self.fec_max_overhead,
        )

    def initial_action(self) -> ControlAction:
        decision = self.abr.decide(self.estimator.estimate_bps)
        return ControlAction(
            target_bitrate_bps=decision.bitrate_bps,
            fec_overhead_ratio=self._fec_overhead(0.0),
            reason=f"init:{decision.reason}",
        )

    def on_report(self, report: ReceiverReport, now: float) -> ControlAction:
        sample = RateSample(
            timestamp=report.report_time,
            receive_rate_bps=report.receive_rate_bps,
            loss_ratio=report.loss_fraction,
            one_way_delay_s=report.one_way_delay_s,
        )
        estimate = self.estimator.update(sample)
        decision = self.abr.decide(estimate)
        return ControlAction(
            target_bitrate_bps=decision.bitrate_bps,
            fec_overhead_ratio=self._fec_overhead(report.loss_fraction),
            reason=decision.reason,
        )


# ---------------------------------------------------------------------------
# JSON-able spec factories, mirroring loss_model_from_spec / to_spec in
# emulator.py: a plain dict with a "kind" discriminator plus constructor
# parameters, safe to embed in Scenario.overrides and content-hash cache keys.
# ---------------------------------------------------------------------------


def estimator_from_spec(spec: dict[str, Any]) -> BandwidthEstimator:
    """Build a bandwidth estimator from a JSON-able spec dict."""
    params = dict(spec)
    kind = params.pop("kind", "gcc")
    if kind == "gcc":
        return GoogleCongestionControl(GccConfig(**params))
    if kind == "aimd":
        return AimdController(AimdConfig(**params))
    raise ValueError(f"unknown estimator kind: {kind!r}")


def estimator_to_spec(estimator: BandwidthEstimator) -> dict[str, Any]:
    """Serialise a bandwidth estimator back to its spec dict."""
    if isinstance(estimator, GoogleCongestionControl):
        kind = "gcc"
    elif isinstance(estimator, AimdController):
        kind = "aimd"
    else:
        raise ValueError(f"cannot serialise estimator of type {type(estimator).__name__}")
    spec: dict[str, Any] = {"kind": kind}
    for config_field in fields(estimator.config):
        spec[config_field.name] = getattr(estimator.config, config_field.name)
    return spec


_ABR_KINDS: dict[str, type] = {
    "throughput": ThroughputAbr,
    "buffer": BufferBasedAbr,
    "ai": AiOrientedAbr,
}


def abr_policy_from_spec(spec: dict[str, Any]) -> AbrPolicy:
    """Build an ABR policy from a JSON-able spec dict."""
    params = dict(spec)
    kind = params.pop("kind", "throughput")
    cls = _ABR_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown abr kind: {kind!r}")
    for key in ("ladder_bps", "candidate_bitrates_bps"):
        if key in params:
            params[key] = tuple(params[key])
    return cls(**params)


def abr_policy_to_spec(policy: AbrPolicy) -> dict[str, Any]:
    """Serialise an ABR policy back to its spec dict.

    Predictor callables (:class:`AiOrientedAbr`) cannot ride a JSON spec;
    policies carrying them must be passed as live objects instead.
    """
    for kind, cls in _ABR_KINDS.items():
        if type(policy) is cls:
            break
    else:
        raise ValueError(f"cannot serialise abr policy of type {type(policy).__name__}")
    spec: dict[str, Any] = {"kind": kind}
    for policy_field in fields(policy):
        value = getattr(policy, policy_field.name)
        if value is None:
            continue
        if callable(value):
            raise ValueError(
                f"{type(policy).__name__}.{policy_field.name} is a callable and "
                "cannot be serialised to a spec"
            )
        if isinstance(value, (tuple, list)):
            value = list(value)
        spec[policy_field.name] = value
    return spec


def controller_from_spec(spec: dict[str, Any]) -> SenderController:
    """Build a sender controller from a JSON-able spec dict.

    Kinds: ``fixed`` (constant action) and ``closed_loop`` (estimator × ABR
    composition with nested ``estimator`` / ``abr`` specs).
    """
    params = dict(spec)
    kind = params.pop("kind", "closed_loop")
    if kind == "fixed":
        return FixedController(**params)
    if kind == "closed_loop":
        estimator = estimator_from_spec(params.pop("estimator", {"kind": "gcc"}))
        abr = abr_policy_from_spec(params.pop("abr", {"kind": "throughput"}))
        return ClosedLoopController(estimator, abr, **params)
    raise ValueError(f"unknown controller kind: {kind!r}")


def controller_to_spec(controller: SenderController) -> dict[str, Any]:
    """Serialise a sender controller back to its spec dict."""
    if isinstance(controller, FixedController):
        spec: dict[str, Any] = {"kind": "fixed", "bitrate_bps": controller.bitrate_bps}
        if controller.fec_overhead_ratio is not None:
            spec["fec_overhead_ratio"] = controller.fec_overhead_ratio
        return spec
    if isinstance(controller, ClosedLoopController):
        spec = {
            "kind": "closed_loop",
            "estimator": estimator_to_spec(controller.estimator),
            "abr": abr_policy_to_spec(controller.abr),
            "seed": controller.seed,
        }
        if controller.adapt_fec:
            spec["adapt_fec"] = True
            spec["fec_min_overhead"] = controller.fec_min_overhead
            spec["fec_max_overhead"] = controller.fec_max_overhead
            spec["fec_loss_multiplier"] = controller.fec_loss_multiplier
        elif controller.fec_overhead_ratio is not None:
            spec["fec_overhead_ratio"] = controller.fec_overhead_ratio
        return spec
    raise ValueError(f"cannot serialise controller of type {type(controller).__name__}")


def preset_controller_spec(name: str) -> dict[str, Any]:
    """Named controller presets for CLIs and experiment grids."""
    presets: dict[str, dict[str, Any]] = {
        "fixed": {"kind": "fixed", "bitrate_bps": 2_000_000.0},
        "gcc": {
            "kind": "closed_loop",
            "estimator": {"kind": "gcc"},
            "abr": {"kind": "throughput"},
        },
        "aimd": {
            "kind": "closed_loop",
            "estimator": {"kind": "aimd"},
            "abr": {"kind": "throughput"},
        },
        "gcc-buffer": {
            "kind": "closed_loop",
            "estimator": {"kind": "gcc"},
            "abr": {"kind": "buffer"},
        },
        "aimd-buffer": {
            "kind": "closed_loop",
            "estimator": {"kind": "aimd"},
            "abr": {"kind": "buffer"},
        },
        "gcc-ai": {
            "kind": "closed_loop",
            "estimator": {"kind": "gcc"},
            "abr": {"kind": "ai"},
        },
        "aimd-ai": {
            "kind": "closed_loop",
            "estimator": {"kind": "aimd"},
            "abr": {"kind": "ai"},
        },
    }
    try:
        return presets[name]
    except KeyError:
        raise ValueError(
            f"unknown controller preset: {name!r} (expected one of {sorted(presets)})"
        ) from None
