"""Scenario corpus: parameterized network-condition families for sweep grids.

The paper evaluates at one operating point (10 Mbps, Bernoulli loss); the
ROADMAP asks for larger trace corpora so every experiment can be judged
across the conditions a deployed AI-video-chat uplink actually sees.  This
module provides named **generator families** — LTE-style drive traces,
Wi-Fi step drops, periodic congestion sawtooths, bursty Gilbert-Elliott
grids, lossy-uplink ladders, handover outages, contention on/off links,
clean baselines and degrading ramps — each deterministic under a seed and
each yielding plain-data :class:`~repro.analysis.sweeps.Scenario` objects
that ``SweepRunner`` accepts directly.

Randomised families derive their generator from ``(family, seed, variant)``
via SHA-256, so ``corpus(seed=k)`` is bit-identical across runs, machines
and process pools, and every variant is independent of how many variants
the other families produce.

The :class:`Scenario` import is deferred to call time: ``repro.net`` stays
importable without ``repro.analysis`` (which itself imports ``repro.net``).
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Any, Callable, Mapping, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..analysis.sweeps import Scenario

__all__ = [
    "corpus",
    "family_scenarios",
    "list_families",
    "scenario_family",
]

#: Registry of family name -> generator ``fn(seed, overrides) -> list[Scenario]``.
_FAMILIES: dict[str, Callable[..., "list[Scenario]"]] = {}


def scenario_family(name: str) -> Callable[[Callable[..., "list[Scenario]"]], Callable[..., "list[Scenario]"]]:
    """Register a generator family under ``name`` (decorator)."""

    def register(fn: Callable[..., "list[Scenario]"]) -> Callable[..., "list[Scenario]"]:
        if name in _FAMILIES:
            raise ValueError(f"scenario family {name!r} already registered")
        _FAMILIES[name] = fn
        return fn

    return register


def list_families() -> list[str]:
    """Names of all registered scenario families."""
    return sorted(_FAMILIES)


def family_scenarios(
    name: str,
    seed: int = 0,
    overrides: Optional[Mapping[str, Any]] = None,
) -> "list[Scenario]":
    """Generate one named family's scenarios for ``seed``."""
    try:
        fn = _FAMILIES[name]
    except KeyError:
        known = ", ".join(list_families())
        raise ValueError(f"unknown scenario family {name!r}; known families: {known}") from None
    return fn(seed=seed, overrides=overrides)


def corpus(
    seed: int = 0,
    families: Optional[Sequence[str]] = None,
    overrides: Optional[Mapping[str, Any]] = None,
) -> "list[Scenario]":
    """The full scenario corpus (or a subset of ``families``) for ``seed``.

    ``overrides`` (runner keyword arguments — duration, resolution, ...) are
    merged into every generated scenario, so one call can scale the whole
    corpus down to smoke-test cost.  Scenario names are unique across the
    corpus and stable across seeds; the scenario *contents* of randomised
    families change with the seed.
    """
    names = list_families() if families is None else list(families)
    scenarios: "list[Scenario]" = []
    for name in names:
        scenarios.extend(family_scenarios(name, seed=seed, overrides=overrides))
    return scenarios


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------


def _rng(family: str, seed: int, variant: int) -> np.random.Generator:
    """Deterministic generator derived from the (family, seed, variant) coordinates."""
    digest = hashlib.sha256(f"{family}|{seed}|{variant}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "big"))


def _scenario(
    name: str,
    loss_model: Optional[dict] = None,
    bandwidth_trace: Optional[dict] = None,
    overrides: Optional[Mapping[str, Any]] = None,
) -> "Scenario":
    from ..analysis.sweeps import Scenario

    return Scenario(
        name=name,
        loss_model=loss_model,
        bandwidth_trace=bandwidth_trace,
        overrides=dict(overrides or {}),
    )


def _trace(times: Sequence[float], rates_bps: Sequence[float]) -> dict:
    return {"times": [float(t) for t in times], "rates_bps": [float(r) for r in rates_bps]}


def _bernoulli(loss_rate: float) -> dict:
    return {"kind": "bernoulli", "loss_rate": float(loss_rate)}


def _gilbert_elliott(p_good_to_bad: float, p_bad_to_good: float, loss_in_bad: float) -> dict:
    return {
        "kind": "gilbert_elliott",
        "p_good_to_bad": float(p_good_to_bad),
        "p_bad_to_good": float(p_bad_to_good),
        "loss_in_bad": float(loss_in_bad),
        "loss_in_good": 0.0,
    }


# ---------------------------------------------------------------------------
# Families
# ---------------------------------------------------------------------------


@scenario_family("lte_drive")
def lte_drive(
    seed: int = 0,
    variants: int = 3,
    horizon_s: float = 20.0,
    step_s: float = 1.0,
    start_rate_bps: float = 6e6,
    min_rate_bps: float = 0.8e6,
    max_rate_bps: float = 12e6,
    loss_rate: float = 0.005,
    overrides: Optional[Mapping[str, Any]] = None,
) -> "list[Scenario]":
    """LTE-style drive traces: a bounded random walk in log-rate space.

    Mimics the rate dynamics of cellular drive-test traces (Mahimahi-style):
    the link rate multiplies by a log-normal step each second, clamped to a
    plausible LTE band.
    """
    scenarios = []
    for variant in range(variants):
        rng = _rng("lte_drive", seed, variant)
        steps = max(2, int(round(horizon_s / step_s)))
        rate = float(start_rate_bps)
        times, rates = [], []
        for index in range(steps):
            times.append(index * step_s)
            rates.append(rate)
            rate = float(np.clip(rate * 2.0 ** rng.normal(0.0, 0.35), min_rate_bps, max_rate_bps))
        scenarios.append(
            _scenario(
                f"lte-drive-{variant}",
                loss_model=_bernoulli(loss_rate),
                bandwidth_trace=_trace(times, rates),
                overrides=overrides,
            )
        )
    return scenarios


@scenario_family("wifi_step_drop")
def wifi_step_drop(
    seed: int = 0,
    variants: int = 3,
    horizon_s: float = 20.0,
    high_rate_bps: float = 20e6,
    loss_rate: float = 0.002,
    overrides: Optional[Mapping[str, Any]] = None,
) -> "list[Scenario]":
    """Wi-Fi rate-step drops: the link falls off a cliff, then recovers.

    Models an 802.11 station renegotiating its MCS after interference: a
    sharp drop to a seeded fraction of the rate at a seeded instant, holding
    for a seeded dwell before snapping back.
    """
    scenarios = []
    for variant in range(variants):
        rng = _rng("wifi_step_drop", seed, variant)
        drop_at = float(rng.uniform(0.15, 0.4)) * horizon_s
        dwell = float(rng.uniform(0.2, 0.35)) * horizon_s
        floor = high_rate_bps * float(rng.uniform(0.05, 0.25))
        scenarios.append(
            _scenario(
                f"wifi-step-{variant}",
                loss_model=_bernoulli(loss_rate),
                bandwidth_trace=_trace(
                    [0.0, drop_at, drop_at + dwell],
                    [high_rate_bps, floor, high_rate_bps],
                ),
                overrides=overrides,
            )
        )
    return scenarios


@scenario_family("congestion_sawtooth")
def congestion_sawtooth(
    seed: int = 0,
    variants: int = 2,
    horizon_s: float = 20.0,
    period_s: float = 5.0,
    ramp_steps: int = 4,
    peak_rate_bps: float = 10e6,
    loss_rate: float = 0.01,
    overrides: Optional[Mapping[str, Any]] = None,
) -> "list[Scenario]":
    """Periodic congestion sawtooths: available rate decays, then resets.

    A piecewise-constant approximation of a competing AIMD flow periodically
    eating the bottleneck: within each period the rate steps down linearly to
    a seeded trough, then the competitor backs off and the rate resets.
    """
    scenarios = []
    for variant in range(variants):
        rng = _rng("congestion_sawtooth", seed, variant)
        trough = peak_rate_bps * float(rng.uniform(0.2, 0.45))
        periods = max(1, int(round(horizon_s / period_s)))
        times, rates = [], []
        for period in range(periods):
            base = period * period_s
            for step in range(ramp_steps):
                fraction = step / max(ramp_steps - 1, 1)
                times.append(base + period_s * step / ramp_steps)
                rates.append(peak_rate_bps - fraction * (peak_rate_bps - trough))
        scenarios.append(
            _scenario(
                f"sawtooth-{variant}",
                loss_model=_bernoulli(loss_rate),
                bandwidth_trace=_trace(times, rates),
                overrides=overrides,
            )
        )
    return scenarios


@scenario_family("bursty_ge_grid")
def bursty_ge_grid(
    seed: int = 0,
    points: Sequence[tuple[float, float]] = ((0.01, 0.3), (0.03, 0.5), (0.1, 0.7)),
    p_bad_to_good: float = 0.3,
    overrides: Optional[Mapping[str, Any]] = None,
) -> "list[Scenario]":
    """A grid of Gilbert-Elliott burstiness × loss-in-bad operating points.

    Deterministic by construction (the grid is fixed); ``seed`` is accepted
    for API uniformity with the randomised families.
    """
    del seed  # fixed grid: identical for every seed
    scenarios = []
    for p_good_to_bad, loss_in_bad in points:
        scenarios.append(
            _scenario(
                f"ge-burst-p{p_good_to_bad:g}-l{loss_in_bad:g}",
                loss_model=_gilbert_elliott(p_good_to_bad, p_bad_to_good, loss_in_bad),
                overrides=overrides,
            )
        )
    return scenarios


@scenario_family("loss_ladder")
def loss_ladder(
    seed: int = 0,
    loss_rates: Sequence[float] = (0.01, 0.02, 0.05, 0.1, 0.2),
    overrides: Optional[Mapping[str, Any]] = None,
) -> "list[Scenario]":
    """A lossy-uplink ladder: i.i.d. loss swept across rungs (paper Figure 3)."""
    del seed  # fixed ladder: identical for every seed
    return [
        _scenario(
            f"loss-ladder-{rate * 100:g}pct",
            loss_model=_bernoulli(rate),
            overrides=overrides,
        )
        for rate in loss_rates
    ]


@scenario_family("handover_outage")
def handover_outage(
    seed: int = 0,
    variants: int = 2,
    horizon_s: float = 20.0,
    nominal_rate_bps: float = 8e6,
    outage_rate_bps: float = 64e3,
    overrides: Optional[Mapping[str, Any]] = None,
) -> "list[Scenario]":
    """Cellular handover: brief near-outages at seeded instants.

    The link collapses to a trickle for a seeded sub-second window (the
    make-before-break gap of an LTE/5G handover), once in the first half and
    once in the second half of the horizon.
    """
    scenarios = []
    for variant in range(variants):
        rng = _rng("handover_outage", seed, variant)
        first = float(rng.uniform(0.1, 0.4)) * horizon_s
        gap = float(rng.uniform(0.3, 0.9))
        # Keep the trace's breakpoints ordered even on short horizons: the
        # second outage must start after the first one has healed.
        second = max(float(rng.uniform(0.55, 0.85)) * horizon_s, first + gap + 0.1)
        times, rates = [0.0], [nominal_rate_bps]
        for start in (first, second):
            times.extend([start, start + gap])
            rates.extend([outage_rate_bps, nominal_rate_bps])
        scenarios.append(
            _scenario(
                f"handover-{variant}",
                loss_model=_bernoulli(0.003),
                bandwidth_trace=_trace(times, rates),
                overrides=overrides,
            )
        )
    return scenarios


@scenario_family("wifi_contention")
def wifi_contention(
    seed: int = 0,
    variants: int = 2,
    horizon_s: float = 20.0,
    free_rate_bps: float = 15e6,
    contended_rate_bps: float = 3e6,
    mean_dwell_s: float = 2.0,
    overrides: Optional[Mapping[str, Any]] = None,
) -> "list[Scenario]":
    """Wi-Fi contention on/off: the channel alternates free and contended.

    Dwell times in each state are exponential with a seeded mean, modelling a
    neighbour's bursty traffic grabbing airtime; mild bursty loss rides along
    (collisions cluster).
    """
    scenarios = []
    for variant in range(variants):
        rng = _rng("wifi_contention", seed, variant)
        times, rates = [], []
        at, contended = 0.0, False
        while at < horizon_s:
            times.append(at)
            rates.append(contended_rate_bps if contended else free_rate_bps)
            at += max(0.25, float(rng.exponential(mean_dwell_s)))
            contended = not contended
        scenarios.append(
            _scenario(
                f"wifi-contention-{variant}",
                loss_model=_gilbert_elliott(0.01, 0.4, 0.3),
                bandwidth_trace=_trace(times, rates),
                overrides=overrides,
            )
        )
    return scenarios


@scenario_family("steady_baseline")
def steady_baseline(
    seed: int = 0,
    rates_bps: Sequence[float] = (2e6, 10e6),
    overrides: Optional[Mapping[str, Any]] = None,
) -> "list[Scenario]":
    """Clean constant-rate, lossless links: the control group of the corpus."""
    del seed  # fixed baselines: identical for every seed
    return [
        _scenario(
            f"steady-{rate / 1e6:g}mbps",
            loss_model=_bernoulli(0.0),
            bandwidth_trace=_trace([0.0], [rate]),
            overrides=overrides,
        )
        for rate in rates_bps
    ]


@scenario_family("degrading_ramp")
def degrading_ramp(
    seed: int = 0,
    variants: int = 2,
    horizon_s: float = 20.0,
    start_rate_bps: float = 12e6,
    steps: int = 8,
    loss_rate: float = 0.01,
    overrides: Optional[Mapping[str, Any]] = None,
) -> "list[Scenario]":
    """Monotone degradation: the link ramps down to a seeded floor and stays.

    Stresses rate adaptation the way walking out of coverage does — there is
    no recovery within the horizon.
    """
    scenarios = []
    for variant in range(variants):
        rng = _rng("degrading_ramp", seed, variant)
        floor = start_rate_bps * float(rng.uniform(0.05, 0.2))
        times = [index * horizon_s / steps for index in range(steps)]
        fractions = np.linspace(0.0, 1.0, steps)
        rates = [start_rate_bps - f * (start_rate_bps - floor) for f in fractions]
        scenarios.append(
            _scenario(
                f"degrading-ramp-{variant}",
                loss_model=_bernoulli(loss_rate),
                bandwidth_trace=_trace(times, rates),
                overrides=overrides,
            )
        )
    return scenarios
