"""Latency and throughput statistics for the RTC transport.

Figure 3 of the paper reports frame transmission latency (time from a frame
being sent to being completely received, explicitly excluding the jitter
buffer) as a function of bitrate and loss rate.  This module collects those
per-frame records and summarises them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np


@dataclass(slots=True)
class FrameRecord:
    """Per-frame transmission accounting."""

    frame_id: int
    capture_time: float
    send_time: float
    size_bytes: int
    packet_count: int
    complete_time: Optional[float] = None
    retransmitted_packets: int = 0
    nack_rounds: int = 0

    @property
    def delivered(self) -> bool:
        return self.complete_time is not None

    @property
    def transmission_latency(self) -> Optional[float]:
        """Time from first send to complete reception (paper's definition)."""
        if self.complete_time is None:
            return None
        return self.complete_time - self.send_time

    @property
    def end_to_end_latency(self) -> Optional[float]:
        """Time from capture to complete reception."""
        if self.complete_time is None:
            return None
        return self.complete_time - self.capture_time


@dataclass
class LatencySummary:
    """Aggregate latency statistics over delivered frames."""

    count: int
    delivered: int
    mean_s: float
    median_s: float
    p90_s: float
    p95_s: float
    p99_s: float
    max_s: float
    min_s: float
    stddev_s: float
    delivery_ratio: float
    mean_retransmissions: float

    @property
    def mean_ms(self) -> float:
        return self.mean_s * 1000.0

    @property
    def p95_ms(self) -> float:
        return self.p95_s * 1000.0

    @property
    def p99_ms(self) -> float:
        return self.p99_s * 1000.0


class TransportStats:
    """Accumulates per-frame records and produces summaries."""

    def __init__(self) -> None:
        self._frames: dict[int, FrameRecord] = {}

    def register_frame(
        self,
        frame_id: int,
        capture_time: float,
        send_time: float,
        size_bytes: int,
        packet_count: int,
    ) -> FrameRecord:
        record = FrameRecord(
            frame_id=frame_id,
            capture_time=capture_time,
            send_time=send_time,
            size_bytes=size_bytes,
            packet_count=packet_count,
        )
        self._frames[frame_id] = record
        return record

    def record_completion(self, frame_id: int, complete_time: float) -> None:
        record = self._frames.get(frame_id)
        if record is not None and record.complete_time is None:
            record.complete_time = complete_time

    def record_retransmission(self, frame_id: int, packets: int) -> None:
        record = self._frames.get(frame_id)
        if record is not None:
            record.retransmitted_packets += packets
            record.nack_rounds += 1

    @property
    def frames(self) -> list[FrameRecord]:
        return [self._frames[key] for key in sorted(self._frames)]

    def transmission_latencies(self) -> np.ndarray:
        values = [
            record.transmission_latency
            for record in self._frames.values()
            if record.transmission_latency is not None
        ]
        return np.asarray(sorted(values), dtype=float)

    def summary(self) -> LatencySummary:
        return summarize_latencies(
            self.transmission_latencies(),
            total=len(self._frames),
            retransmissions=[r.retransmitted_packets for r in self._frames.values()],
        )


def summarize_latencies(
    latencies: Iterable[float],
    total: Optional[int] = None,
    retransmissions: Optional[Iterable[int]] = None,
) -> LatencySummary:
    """Summarise a collection of latencies (seconds) into a :class:`LatencySummary`."""
    values = np.asarray(list(latencies), dtype=float)
    delivered = int(values.size)
    count = int(total) if total is not None else delivered
    retrans = list(retransmissions) if retransmissions is not None else []
    mean_retrans = float(np.mean(retrans)) if retrans else 0.0
    if delivered == 0:
        return LatencySummary(
            count=count,
            delivered=0,
            mean_s=float("nan"),
            median_s=float("nan"),
            p90_s=float("nan"),
            p95_s=float("nan"),
            p99_s=float("nan"),
            max_s=float("nan"),
            min_s=float("nan"),
            stddev_s=float("nan"),
            delivery_ratio=0.0,
            mean_retransmissions=mean_retrans,
        )
    low = float(np.min(values))
    high = float(np.max(values))
    # Pairwise summation can land np.mean a few ULPs outside [min, max];
    # the true mean is always within the sample range.
    mean = min(max(float(np.mean(values)), low), high)
    # One percentile call partitions once for all three tail quantiles
    # instead of re-partitioning the sample per statistic.  (The median
    # keeps ``np.median``: its even-length midpoint rounds differently from
    # the 50th linear-interpolation percentile.)
    p90, p95, p99 = np.percentile(values, (90.0, 95.0, 99.0))
    return LatencySummary(
        count=count,
        delivered=delivered,
        mean_s=mean,
        median_s=float(np.median(values)),
        p90_s=float(p90),
        p95_s=float(p95),
        p99_s=float(p99),
        max_s=high,
        min_s=low,
        stddev_s=float(np.std(values)),
        delivery_ratio=delivered / count if count else 1.0,
        mean_retransmissions=mean_retrans,
    )
