"""Jitter buffer — and why AI Video Chat can remove it.

Traditional RTC smooths out network-induced inter-frame jitter with a jitter
buffer that holds frames for a target delay before playback, trading latency
for smoothness.  Section 2.1 of the paper argues the buffer is unnecessary
for an MLLM receiver: the model's perception of time comes from positional
encodings derived from capture timestamps, not from the wall-clock arrival
times, so jittered delivery does not change what the model sees.

We implement both behaviours so the benchmark can quantify the latency the
buffer adds and show that removing it leaves the MLLM input unchanged.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass(slots=True)
class BufferedFrame:
    """A frame waiting inside the jitter buffer."""

    frame_id: int
    capture_time: float
    arrival_time: float
    release_time: float
    payload: object = None


@dataclass
class JitterBufferConfig:
    """Configuration of the adaptive jitter buffer."""

    #: Initial playout delay added on top of the first frame's arrival.
    initial_delay_s: float = 0.050
    #: Minimum and maximum playout delay the adaptation may choose.
    min_delay_s: float = 0.010
    max_delay_s: float = 0.500
    #: How aggressively the target delay tracks observed jitter (in standard
    #: deviations of inter-arrival error), mirroring the NetEQ-style rule.
    jitter_multiplier: float = 4.0
    #: Exponential smoothing factor for the jitter estimate.
    smoothing: float = 0.1


class JitterBuffer:
    """An adaptive playout buffer for human-oriented RTC.

    Frames are released no earlier than ``capture_time + playout_delay`` on a
    reconstructed playback clock, which converts arrival jitter into added
    latency — exactly the cost the paper proposes to eliminate for MLLM
    receivers.
    """

    def __init__(self, config: Optional[JitterBufferConfig] = None) -> None:
        self.config = config or JitterBufferConfig()
        # Min-heap keyed on (release_time, insertion order): release times are
        # not monotone in arrival order under jitter, so a FIFO queue would
        # head-of-line block ready frames behind a not-yet-ready one.
        self._queue: list[tuple[float, int, BufferedFrame]] = []
        self._counter = itertools.count()
        self._playout_delay = self.config.initial_delay_s
        self._jitter_estimate = 0.0
        self._last_transit: Optional[float] = None
        self._min_transit: Optional[float] = None
        self.released: list[BufferedFrame] = []

    @property
    def playout_delay_s(self) -> float:
        return self._playout_delay

    @property
    def jitter_estimate_s(self) -> float:
        return self._jitter_estimate

    def _update_jitter(self, capture_time: float, arrival_time: float) -> None:
        transit = arrival_time - capture_time
        if self._last_transit is not None:
            deviation = abs(transit - self._last_transit)
            alpha = self.config.smoothing
            self._jitter_estimate = (1 - alpha) * self._jitter_estimate + alpha * deviation
        self._last_transit = transit
        if self._min_transit is None or transit < self._min_transit:
            self._min_transit = transit
        target = self.config.initial_delay_s + self.config.jitter_multiplier * self._jitter_estimate
        self._playout_delay = float(
            np.clip(target, self.config.min_delay_s, self.config.max_delay_s)
        )

    def push(self, frame_id: int, capture_time: float, arrival_time: float, payload: object = None) -> BufferedFrame:
        """Insert a frame; it is released when the playback clock reaches it.

        The playback clock is ``capture_time + min_transit + playout_delay``:
        the minimum observed transit estimates the network's base (jitter-free)
        delay, so an early frame (transit near the minimum) is held for the
        full playout delay while a late frame has already consumed its hold in
        flight and is released on (or soon after) arrival — never re-delayed
        by the full playout delay on top of the jitter it suffered.
        """
        self._update_jitter(capture_time, arrival_time)
        base_transit = self._min_transit if self._min_transit is not None else 0.0
        release_time = max(arrival_time, capture_time + base_transit + self._playout_delay)
        frame = BufferedFrame(
            frame_id=frame_id,
            capture_time=capture_time,
            arrival_time=arrival_time,
            release_time=release_time,
            payload=payload,
        )
        heapq.heappush(self._queue, (release_time, next(self._counter), frame))
        return frame

    def pop_ready(self, now: float) -> list[BufferedFrame]:
        """Release every queued frame whose release time has passed.

        Frames come out in release-time order (not arrival order): a ready
        frame is never head-of-line blocked behind a not-yet-ready one that
        happened to arrive earlier.
        """
        ready: list[BufferedFrame] = []
        while self._queue and self._queue[0][0] <= now:
            _, _, frame = heapq.heappop(self._queue)
            ready.append(frame)
            self.released.append(frame)
        return ready

    @property
    def depth(self) -> int:
        return len(self._queue)

    def added_latency(self) -> float:
        """Mean extra latency (release - arrival) over all released frames."""
        if not self.released:
            return 0.0
        return float(np.mean([f.release_time - f.arrival_time for f in self.released]))


class PassthroughBuffer:
    """The AI-oriented alternative: frames are handed over on arrival.

    Because the MLLM orders frames by capture timestamp (positional
    encoding), no reordering delay is needed; this buffer adds zero latency
    and simply records the delivery order for the equivalence benchmark.
    """

    def __init__(self) -> None:
        self.released: list[BufferedFrame] = []
        self._pending: list[BufferedFrame] = []

    def push(self, frame_id: int, capture_time: float, arrival_time: float, payload: object = None) -> BufferedFrame:
        frame = BufferedFrame(
            frame_id=frame_id,
            capture_time=capture_time,
            arrival_time=arrival_time,
            release_time=arrival_time,
            payload=payload,
        )
        self.released.append(frame)
        self._pending.append(frame)
        return frame

    def pop_ready(self, now: float) -> list[BufferedFrame]:
        """Drain frames released by ``now`` exactly once.

        Matches :meth:`JitterBuffer.pop_ready` semantics: each frame is
        returned by exactly one call (release time == arrival time, so a
        frame becomes ready the instant it is pushed).  ``released`` keeps
        the full delivery history for the equivalence benchmark.
        """
        ready = [f for f in self._pending if f.release_time <= now]
        self._pending = [f for f in self._pending if f.release_time > now]
        return ready

    def added_latency(self) -> float:
        return 0.0

    @property
    def depth(self) -> int:
        return 0


def frames_in_capture_order(frames: list[BufferedFrame]) -> list[BufferedFrame]:
    """Order frames the way an MLLM consumes them: by capture timestamp.

    This is the crux of the "jitter has no impact" argument — regardless of
    arrival jitter or ordering, sorting by capture time yields an identical
    model input.
    """
    return sorted(frames, key=lambda frame: (frame.capture_time, frame.frame_id))
