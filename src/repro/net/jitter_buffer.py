"""Jitter buffer — and why AI Video Chat can remove it.

Traditional RTC smooths out network-induced inter-frame jitter with a jitter
buffer that holds frames for a target delay before playback, trading latency
for smoothness.  Section 2.1 of the paper argues the buffer is unnecessary
for an MLLM receiver: the model's perception of time comes from positional
encodings derived from capture timestamps, not from the wall-clock arrival
times, so jittered delivery does not change what the model sees.

We implement both behaviours so the benchmark can quantify the latency the
buffer adds and show that removing it leaves the MLLM input unchanged.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class BufferedFrame:
    """A frame waiting inside the jitter buffer."""

    frame_id: int
    capture_time: float
    arrival_time: float
    release_time: float
    payload: object = None


@dataclass
class JitterBufferConfig:
    """Configuration of the adaptive jitter buffer."""

    #: Initial playout delay added on top of the first frame's arrival.
    initial_delay_s: float = 0.050
    #: Minimum and maximum playout delay the adaptation may choose.
    min_delay_s: float = 0.010
    max_delay_s: float = 0.500
    #: How aggressively the target delay tracks observed jitter (in standard
    #: deviations of inter-arrival error), mirroring the NetEQ-style rule.
    jitter_multiplier: float = 4.0
    #: Exponential smoothing factor for the jitter estimate.
    smoothing: float = 0.1


class JitterBuffer:
    """An adaptive playout buffer for human-oriented RTC.

    Frames are released no earlier than ``capture_time + playout_delay`` on a
    reconstructed playback clock, which converts arrival jitter into added
    latency — exactly the cost the paper proposes to eliminate for MLLM
    receivers.
    """

    def __init__(self, config: Optional[JitterBufferConfig] = None) -> None:
        self.config = config or JitterBufferConfig()
        self._queue: deque[BufferedFrame] = deque()
        self._playout_delay = self.config.initial_delay_s
        self._jitter_estimate = 0.0
        self._last_transit: Optional[float] = None
        self.released: list[BufferedFrame] = []

    @property
    def playout_delay_s(self) -> float:
        return self._playout_delay

    @property
    def jitter_estimate_s(self) -> float:
        return self._jitter_estimate

    def _update_jitter(self, capture_time: float, arrival_time: float) -> None:
        transit = arrival_time - capture_time
        if self._last_transit is not None:
            deviation = abs(transit - self._last_transit)
            alpha = self.config.smoothing
            self._jitter_estimate = (1 - alpha) * self._jitter_estimate + alpha * deviation
        self._last_transit = transit
        target = self.config.initial_delay_s + self.config.jitter_multiplier * self._jitter_estimate
        self._playout_delay = float(
            np.clip(target, self.config.min_delay_s, self.config.max_delay_s)
        )

    def push(self, frame_id: int, capture_time: float, arrival_time: float, payload: object = None) -> BufferedFrame:
        """Insert a frame; its release time is arrival plus the residual hold."""
        self._update_jitter(capture_time, arrival_time)
        # Release when the playback clock (capture + playout delay, measured
        # against the earliest observed transit) reaches this frame.
        base_transit = self._last_transit if self._last_transit is not None else 0.0
        release_time = max(arrival_time, capture_time + base_transit + self._playout_delay)
        frame = BufferedFrame(
            frame_id=frame_id,
            capture_time=capture_time,
            arrival_time=arrival_time,
            release_time=release_time,
            payload=payload,
        )
        self._queue.append(frame)
        return frame

    def pop_ready(self, now: float) -> list[BufferedFrame]:
        """Release every queued frame whose release time has passed."""
        ready: list[BufferedFrame] = []
        while self._queue and self._queue[0].release_time <= now:
            frame = self._queue.popleft()
            ready.append(frame)
            self.released.append(frame)
        return ready

    @property
    def depth(self) -> int:
        return len(self._queue)

    def added_latency(self) -> float:
        """Mean extra latency (release - arrival) over all released frames."""
        if not self.released:
            return 0.0
        return float(np.mean([f.release_time - f.arrival_time for f in self.released]))


class PassthroughBuffer:
    """The AI-oriented alternative: frames are handed over on arrival.

    Because the MLLM orders frames by capture timestamp (positional
    encoding), no reordering delay is needed; this buffer adds zero latency
    and simply records the delivery order for the equivalence benchmark.
    """

    def __init__(self) -> None:
        self.released: list[BufferedFrame] = []

    def push(self, frame_id: int, capture_time: float, arrival_time: float, payload: object = None) -> BufferedFrame:
        frame = BufferedFrame(
            frame_id=frame_id,
            capture_time=capture_time,
            arrival_time=arrival_time,
            release_time=arrival_time,
            payload=payload,
        )
        self.released.append(frame)
        return frame

    def pop_ready(self, now: float) -> list[BufferedFrame]:
        ready = [f for f in self.released if f.release_time <= now and f not in ()]
        return ready

    def added_latency(self) -> float:
        return 0.0

    @property
    def depth(self) -> int:
        return 0


def frames_in_capture_order(frames: list[BufferedFrame]) -> list[BufferedFrame]:
    """Order frames the way an MLLM consumes them: by capture timestamp.

    This is the crux of the "jitter has no impact" argument — regardless of
    arrival jitter or ordering, sorting by capture time yields an identical
    model input.
    """
    return sorted(frames, key=lambda frame: (frame.capture_time, frame.frame_id))
